//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json)
//! (see `third_party/README.md`): renders the shim `serde`'s
//! [`serde::Value`] tree as JSON text. Serialisation only — nothing in
//! this workspace parses JSON back.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};

/// Serialisation error. The shim's rendering is total, so this is never
/// actually produced; it exists so call sites can keep serde_json's
/// `Result` signatures.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the output reads as a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null"); // serde_json's behaviour for NaN/inf
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            if !items.is_empty() {
                break_line(indent, level, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(indent, level + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            }
            if !entries.is_empty() {
                break_line(indent, level, out);
            }
            out.push('}');
        }
    }
}

/// In pretty mode, starts a new line indented to `level`.
fn break_line(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn pretty_object() {
        let v = Wrapper(Value::Object(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::Int(1), Value::Null])),
            ("f".into(), Value::Float(0.5)),
        ]));
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"a\\\"b\""));
        assert!(s.contains("\"xs\": [\n    1,\n    null\n  ]"));
        assert!(s.contains("\"f\": 0.5"));
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"name\":\"a\\\"b\",\"xs\":[1,null],\"f\":0.5}"
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Wrapper(Value::Float(2.0))).unwrap(), "2.0");
    }
}
