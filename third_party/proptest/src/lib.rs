//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (see `third_party/README.md` for why these shims exist).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] test harness macro (`arg in strategy` syntax,
//!   attributes/doc comments, multiple tests per block);
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], weighted
//!   and unweighted [`prop_oneof!`], tuple strategies, and integer range
//!   strategies;
//! * [`arbitrary::any`] for the primitive types;
//! * [`collection::vec`] and [`array::uniform32`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs but is not minimised), and the RNG stream is seeded
//! deterministically from the test name so runs are reproducible. The
//! number of cases per test defaults to 64 and honours the
//! `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

/// Test-case bookkeeping: the RNG, the error type the assertion macros
/// produce, and the case-count policy.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// The deterministic RNG a strategy draws from.
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        /// An RNG seeded from the test's name, so every run of a given
        /// test sees the same case sequence by default. Set
        /// `PROPTEST_SEED` to mix a different seed in and explore new
        /// cases (real proptest draws fresh seeds every run; a stable
        /// default keeps CI deterministic).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    /// Number of accepted cases each property must pass
    /// (`PROPTEST_CASES` env var, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { strat: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by the `prop_oneof!` expansion, where the
    /// arms have distinct concrete types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strat: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strat.generate(rng))
        }
    }

    /// A weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union; every weight must be ≥ 1.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().all(|(w, _)| *w > 0), "weights must be >= 1");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut roll = rng.next_u64() % total;
            for (w, s) in &self.arms {
                if roll < u64::from(*w) {
                    return s.generate(rng);
                }
                roll -= u64::from(*w);
            }
            unreachable!("roll < sum of weights")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// `any::<T>()` for the primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`: uniform over the whole type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, uniform in [0, 1): ample for property inputs and
            // avoids NaN/inf poisoning comparisons.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`uniform32`].
    pub struct UniformArray32<S>(S);

    /// A `[T; 32]` with every element drawn from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> UniformArray32<S> {
        UniformArray32(elem)
    }

    impl<S: Strategy> Strategy for UniformArray32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test body runs until [`test_runner::cases`] accepted cases pass;
/// a failed `prop_assert*!` panics with the failing inputs attached.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let strat = ($($strat,)+);
                let wanted = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < wanted {
                    attempts += 1;
                    assert!(
                        attempts <= wanted.saturating_mul(20).max(1000),
                        "proptest: too many inputs rejected by prop_assume! \
                         ({} accepted of {} wanted)",
                        accepted,
                        wanted,
                    );
                    let ($($arg,)+) = strat.generate(&mut rng);
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right` {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left_val,
                right_val,
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if *left_val == *right_val {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right` {}\n  both: {:?}",
                format!($($fmt)+),
                left_val,
            )));
        }
    }};
}

/// A weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0usize..10, b in 1u8..=3, c in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!((1..=3).contains(&b));
            prop_assert_eq!(c, c);
        }

        #[test]
        fn assume_rejects(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_and_collections(
            xs in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 1..50),
            arr in crate::array::uniform32(any::<u8>()),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
            prop_assert_eq!(arr.len(), 32);
        }

        #[test]
        fn mapped(v in (0u8..4).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 8);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn inner(v in 0u8..10) {
                prop_assert!(v > 100, "v is small: {}", v);
            }
        }
        inner();
    }
}
