//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! mirror, so the handful of external crates the seed code depends on are
//! provided as local shims implementing exactly the API subset the
//! workspace uses (see `third_party/README.md`).
//!
//! This shim covers the rand 0.8 surface used here:
//!
//! * [`Rng::gen_range`] over integer `Range`/`RangeInclusive` and
//!   `Range<f64>`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] — a deterministic xoroshiro128++ generator with
//!   SplitMix64 seeding, matching the statistical family (though not the
//!   exact stream) of the real `SmallRng`.
//!
//! All generators are deterministic for a given seed, which is what the
//! workloads, property tests and experiments rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a uniform value can be drawn from.
///
/// Mirrors rand's blanket structure (`Range<T> where T: SampleUniform`)
/// rather than per-type impls, so the range's literal type is inferred
/// from the use site exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = hi - lo + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                (lo + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoroshiro128++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 128 bits of
            // state, as the reference xoroshiro implementation recommends.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s0 = next();
            let mut s1 = next();
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xoroshiro must not start from the all-zero state
            }
            Self { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u8..=7);
            assert!((1..=7).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
