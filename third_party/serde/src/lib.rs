//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate (see `third_party/README.md`).
//!
//! Real serde serialises through a visitor (`Serializer`); this workspace
//! only ever derives `Serialize` and feeds the result to
//! `serde_json::to_string_pretty`, so the shim collapses the pipeline to
//! one step: [`Serialize`] renders a value into the JSON-like [`Value`]
//! tree, which the `serde_json` shim pretty-prints. The derive macro
//! (re-exported from the local `serde_derive` shim) supports structs with
//! named fields — the only shape the workspace derives.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap};

/// A JSON-like tree, the intermediate form every [`Serialize`] produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every Rust integer type in range).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON-like tree.
    fn to_value(&self) -> Value;
}

macro_rules! int_serialize {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_serialize {
    ($($T:ident . $idx:tt),+) => {
        impl<$($T: Serialize),+> Serialize for ($($T,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

tuple_serialize!(A.0);
tuple_serialize!(A.0, B.1);
tuple_serialize!(A.0, B.1, C.2);
tuple_serialize!(A.0, B.1, C.2, D.3);

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u8.to_value(), Value::Int(3));
        assert_eq!((-7i64).to_value(), Value::Int(-7));
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(
            vec![("a".to_string(), 1u32)].to_value(),
            Value::Array(vec![Value::Array(vec![
                Value::Str("a".into()),
                Value::Int(1)
            ])])
        );
    }
}
