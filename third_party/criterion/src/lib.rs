//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion)
//! (see `third_party/README.md`).
//!
//! Implements the API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` —
//! as a straightforward warmup-then-measure loop printing a mean
//! time per iteration. No statistics, plots or baselines; the point is
//! that `cargo bench` builds, runs and produces comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(200);
/// Target wall-clock spent warming each benchmark up.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }
}

/// A named set of benchmarks (`spill/0`, `spill/1`, …).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, &mut f);
        self
    }

    /// Declares the group's throughput basis (accepted, ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput basis (accepted for API compatibility, not reported).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, running it enough times to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TIME && warm_iters < 1_000_000 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Measurement: a batch sized to the target window.
        let batch = if per_iter.is_zero() {
            1_000_000
        } else {
            (MEASURE_TIME.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.result = Some((batch, elapsed));
    }
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<40} {:>12} iters   {:>12.1} ns/iter", iters, ns);
        }
        _ => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}
