//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Implements `#[derive(Serialize)]` for **structs with named fields**
//! — the only shape this workspace derives — by hand-parsing the token
//! stream (the real implementation's `syn`/`quote` dependencies are not
//! available offline). The expansion implements the shim `serde`
//! crate's `Serialize::to_value`, emitting an object with one entry per
//! field in declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut name = None;
    let mut fields_group = None;
    let mut iter = tokens.iter().peekable();
    while let Some(t) = iter.next() {
        if let TokenTree::Ident(id) = t {
            if id.to_string() == "struct" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => panic!("derive(Serialize) shim: expected struct name"),
                }
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "derive(Serialize) shim does not support generic structs \
                             (struct {}): write the impl by hand or extend the shim",
                            name.as_deref().unwrap_or("?"),
                        );
                    }
                }
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            fields_group = Some(g.clone());
                            break;
                        }
                    }
                }
                break;
            }
        }
    }

    let name = name.expect("derive(Serialize) shim supports only structs");
    let group =
        fields_group.expect("derive(Serialize) shim supports only structs with named fields");
    let fields = field_names(group.stream());

    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{ \
             fn to_value(&self) -> serde::Value {{ \
                 serde::Value::Object(vec![{entries}]) \
             }} \
         }}"
    )
    .parse()
    .expect("derive(Serialize) shim: generated impl parses")
}

/// Extracts field names from the body of a named-field struct: the first
/// ident of each comma-separated entry (commas inside `<...>` generic
/// arguments don't split entries), skipping attributes and visibility.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_entry_start = true;
    let mut iter = body.into_iter().peekable();
    while let Some(t) = iter.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth = (angle_depth - 1).max(0),
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_entry_start = true;
            }
            TokenTree::Punct(p) if p.as_char() == '#' && at_entry_start => {
                iter.next(); // the [...] group of the attribute
            }
            TokenTree::Ident(id) if at_entry_start => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next(); // pub(crate) / pub(super) scope
                        }
                    }
                } else {
                    fields.push(s);
                    at_entry_start = false;
                }
            }
            _ => {}
        }
    }
    fields
}
