//! The clean-before-use, quarantining heap allocator model.

use califorms_core::LineMap;
use califorms_layout::CaliformedLayout;
use califorms_sim::TraceOp;
use std::collections::VecDeque;

/// What `free` califorms (Section 6.1 vs the Section 8.2 measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreeMode {
    /// Clean-before-use as designed: the whole freed block is califormed
    /// and zeroed (full temporal safety; what the security evaluation
    /// uses).
    #[default]
    FullObject,
    /// Only the object's security-span lines are re-califormed — the
    /// paper's *measured* emulation ("one dummy store instruction per
    /// to-be-califormed cache line", Section 8.2), which the performance
    /// figures are calibrated against.
    SpanOnly,
}

/// Allocator behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocatorConfig {
    /// Whether to emit `CFORM` instructions at all. Disabled for the
    /// "no-CFORM" reference series of Figures 11/12 (padding present, no
    /// security, isolating the cache-underutilisation component).
    pub emit_cforms: bool,
    /// What deallocation califorms.
    pub free_mode: FreeMode,
    /// Bookkeeping instructions charged per `malloc`/`free` call
    /// (size-class lookup, free-list manipulation).
    pub alloc_bookkeeping_insns: u32,
    /// Instructions charged to compute each `CFORM`'s address and masks
    /// from type-layout information (the LLVM hook of Section 8.2).
    pub cform_setup_insns: u32,
    /// Fixed per-call instrumentation cost (the allocation/deallocation
    /// hook: retrieving type information, dispatch) charged on `malloc`
    /// and `free` of a type that carries at least one security span.
    /// Types without spans are not instrumented at all — the compile-time
    /// selectivity that makes the intelligent policy's Figure 12 bill so
    /// small.
    pub instrumented_call_insns: u32,
    /// Use the non-temporal `CFORM` variant on deallocation (paper
    /// footnote 3): freed lines are califormed below the L1 instead of
    /// being pulled in, avoiding pollution by dead data.
    pub nt_cform_on_free: bool,
    /// Quarantine capacity in bytes: freed blocks are not reused until the
    /// quarantine exceeds this size (temporal safety window).
    pub quarantine_bytes: usize,
    /// Block alignment (x86-64 malloc guarantees 16).
    pub align: usize,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self {
            emit_cforms: true,
            free_mode: FreeMode::FullObject,
            alloc_bookkeeping_insns: 24,
            cform_setup_insns: 10,
            instrumented_call_insns: 32,
            nt_cform_on_free: false,
            quarantine_bytes: 1 << 20,
            align: 16,
        }
    }
}

/// Heap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// `malloc` calls served.
    pub allocs: u64,
    /// `free` calls served.
    pub frees: u64,
    /// `CFORM` trace operations emitted.
    pub cform_ops: u64,
    /// Blocks recycled from the free list (vs fresh bump allocations).
    pub recycled: u64,
    /// Current bytes held in quarantine.
    pub quarantined_bytes: usize,
    /// High-water mark of the bump pointer (fresh heap consumed).
    pub heap_consumed: usize,
}

#[derive(Debug, Clone, Copy)]
struct FreeBlock {
    addr: u64,
    size: usize,
    /// Whether the block's bytes are currently all security bytes
    /// (recycled blocks are; fresh memory is not).
    califormed: bool,
}

#[derive(Debug, Clone)]
struct LiveAllocation {
    size: usize,
    /// Span mask per line, as issued at allocation (needed to free).
    layout_spans: Vec<(u64, u64)>,
}

/// The model heap allocator.
///
/// Addresses are virtual: the heap hands out ranges from `[base, …)` and
/// emits the trace operations that make the simulated hierarchy reflect
/// each transition. Running those ops through
/// [`califorms_sim::Engine`] is what actually changes memory state.
#[derive(Debug)]
pub struct CaliformsHeap {
    cfg: AllocatorConfig,
    base: u64,
    bump: u64,
    free_list: Vec<FreeBlock>,
    quarantine: VecDeque<FreeBlock>,
    // Keyed by block base address; a `LineMap` (deterministic hasher) so
    // no future iteration over live allocations can leak per-process
    // RandomState order into emitted trace ops (DESIGN.md §12).
    live: LineMap<LiveAllocation>,
    stats: HeapStats,
}

impl CaliformsHeap {
    /// Creates a heap starting at `base` (must be line-aligned).
    pub fn new(base: u64, cfg: AllocatorConfig) -> Self {
        assert_eq!(base % 64, 0, "heap base must be cache-line aligned");
        Self {
            cfg,
            base,
            bump: base,
            free_list: Vec::new(),
            quarantine: VecDeque::new(),
            live: LineMap::default(),
            stats: HeapStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        let mut s = self.stats;
        s.quarantined_bytes = self.quarantine.iter().map(|b| b.size).sum();
        s.heap_consumed = (self.bump - self.base) as usize;
        s
    }

    /// Allocates an object with the given califormed layout, emitting the
    /// allocation-time trace ops into `ops`. Returns the object base.
    pub fn malloc(&mut self, layout: &CaliformedLayout, ops: &mut Vec<TraceOp>) -> u64 {
        self.stats.allocs += 1;
        let block_size = layout.size.max(1).div_ceil(self.cfg.align) * self.cfg.align;
        ops.push(TraceOp::Exec(self.cfg.alloc_bookkeeping_insns));

        let block = self.take_block(block_size);
        let spans = layout.cform_ops(block.addr);
        let span_masks: Vec<(u64, u64)> = spans.iter().map(|op| (op.line_addr, op.mask)).collect();

        if self.cfg.emit_cforms && !span_masks.is_empty() {
            ops.push(TraceOp::Exec(self.cfg.instrumented_call_insns));
        }
        if self.cfg.emit_cforms {
            if block.califormed {
                // Clean-before-use: the recycled block is fully califormed.
                // One CFORM per line clears exactly the data bytes (span
                // positions stay set: mask 0 = "don't care" in the K-map).
                for line in Self::lines(block.addr, block_size) {
                    let region = Self::region_mask(line, block.addr, block_size);
                    let keep = span_masks
                        .iter()
                        .find(|(l, _)| *l == line)
                        .map(|(_, m)| *m)
                        .unwrap_or(0);
                    let clear = region & !keep;
                    if clear != 0 {
                        ops.push(TraceOp::Exec(self.cfg.cform_setup_insns));
                        ops.push(TraceOp::Cform {
                            line_addr: line,
                            attrs: 0,
                            mask: clear,
                        });
                        self.stats.cform_ops += 1;
                    }
                }
            } else {
                // Fresh memory: only the object's spans need setting.
                for &(line_addr, mask) in &span_masks {
                    ops.push(TraceOp::Exec(self.cfg.cform_setup_insns));
                    ops.push(TraceOp::Cform {
                        line_addr,
                        attrs: mask,
                        mask,
                    });
                    self.stats.cform_ops += 1;
                }
            }
        }

        self.live.insert(
            block.addr,
            LiveAllocation {
                size: block_size,
                layout_spans: span_masks,
            },
        );
        block.addr
    }

    /// Frees an object, emitting the `CFORM`s that caliform (and zero) the
    /// entire block, then quarantining it.
    ///
    /// # Panics
    ///
    /// Panics on a double free or a free of an unknown pointer — allocator
    /// state corruption the model treats as a test bug, not a runtime
    /// condition.
    pub fn free(&mut self, base: u64, ops: &mut Vec<TraceOp>) {
        let alloc = self
            .live
            .remove(&base)
            .expect("free of unknown or already-freed pointer");
        self.stats.frees += 1;
        ops.push(TraceOp::Exec(self.cfg.alloc_bookkeeping_insns));
        if self.cfg.emit_cforms && !alloc.layout_spans.is_empty() {
            ops.push(TraceOp::Exec(self.cfg.instrumented_call_insns));
        }

        let block_califormed = match (self.cfg.emit_cforms, self.cfg.free_mode) {
            (false, _) => false,
            (true, FreeMode::FullObject) => {
                // Set every byte that is not already a span security byte.
                // (The paper notes the non-temporal CFORM variant would
                // avoid polluting the L1 here; we model the plain variant.)
                for line in Self::lines(base, alloc.size) {
                    let region = Self::region_mask(line, base, alloc.size);
                    let spans = alloc
                        .layout_spans
                        .iter()
                        .find(|(l, _)| *l == line)
                        .map(|(_, m)| *m)
                        .unwrap_or(0);
                    let set = region & !spans;
                    if set != 0 {
                        ops.push(TraceOp::Exec(self.cfg.cform_setup_insns));
                        ops.push(self.free_cform(line, set, set));
                        self.stats.cform_ops += 1;
                    }
                }
                true
            }
            (true, FreeMode::SpanOnly) => {
                // The measured emulation touches only the span lines: the
                // spans are *unset* so the recycled block comes back plain
                // (the clean-before-use invariant is then re-established by
                // the next malloc's set pass).
                for &(line_addr, mask) in &alloc.layout_spans {
                    ops.push(TraceOp::Exec(self.cfg.cform_setup_insns));
                    ops.push(self.free_cform(line_addr, 0, mask));
                    self.stats.cform_ops += 1;
                }
                false
            }
        };

        self.quarantine.push_back(FreeBlock {
            addr: base,
            size: alloc.size,
            califormed: block_califormed,
        });
        self.drain_quarantine();
    }

    /// Whether a pointer is currently a live allocation.
    pub fn is_live(&self, base: u64) -> bool {
        self.live.contains_key(&base)
    }

    /// Number of blocks currently waiting in quarantine.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    fn free_cform(&self, line_addr: u64, attrs: u64, mask: u64) -> TraceOp {
        if self.cfg.nt_cform_on_free {
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            }
        } else {
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            }
        }
    }

    fn take_block(&mut self, size: usize) -> FreeBlock {
        // First fit from the free list.
        if let Some(pos) = self.free_list.iter().position(|b| b.size >= size) {
            let mut block = self.free_list.remove(pos);
            self.stats.recycled += 1;
            if block.size > size {
                // Split; the remainder keeps the block's califormed state.
                self.free_list.push(FreeBlock {
                    addr: block.addr + size as u64,
                    size: block.size - size,
                    califormed: block.califormed,
                });
                block.size = size;
            }
            return block;
        }
        let addr = self.bump;
        self.bump += size as u64;
        FreeBlock {
            addr,
            size,
            califormed: false,
        }
    }

    fn drain_quarantine(&mut self) {
        let mut held: usize = self.quarantine.iter().map(|b| b.size).sum();
        while held > self.cfg.quarantine_bytes {
            let block = self.quarantine.pop_front().expect("held > 0");
            held -= block.size;
            self.free_list.push(block);
        }
    }

    fn lines(base: u64, size: usize) -> impl Iterator<Item = u64> {
        let first = base & !63;
        let last = (base + size as u64 - 1) & !63;
        (first..=last).step_by(64)
    }

    /// Bits of `line` covered by `[base, base+size)`.
    fn region_mask(line: u64, base: u64, size: usize) -> u64 {
        let lo = base.max(line);
        let hi = (base + size as u64).min(line + 64);
        if lo >= hi {
            return 0;
        }
        let start = (lo - line) as u32;
        let len = (hi - lo) as u32;
        if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use califorms_layout::{InsertionPolicy, StructDef};
    use califorms_sim::Engine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn layout(policy: InsertionPolicy) -> CaliformedLayout {
        let mut rng = SmallRng::seed_from_u64(5);
        policy.apply(&StructDef::paper_example(), &mut rng)
    }

    fn run(ops: Vec<TraceOp>) -> Engine {
        let mut engine = Engine::westmere();
        for op in ops {
            engine.step(op);
        }
        engine
    }

    #[test]
    fn fresh_alloc_sets_only_spans() {
        let mut heap = CaliformsHeap::new(0x10000, AllocatorConfig::default());
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let base = heap.malloc(&l, &mut ops);
        assert_eq!(base, 0x10000);
        let engine = run(ops);
        // Padding bytes 1..4 are security bytes; data bytes are not.
        assert!(engine.hierarchy.peek_is_security_byte(base + 1));
        assert!(engine.hierarchy.peek_is_security_byte(base + 3));
        assert!(!engine.hierarchy.peek_is_security_byte(base));
        assert!(!engine.hierarchy.peek_is_security_byte(base + 4));
    }

    #[test]
    fn free_califorms_whole_block() {
        let mut heap = CaliformsHeap::new(0x10000, AllocatorConfig::default());
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let base = heap.malloc(&l, &mut ops);
        heap.free(base, &mut ops);
        let engine = run(ops);
        for off in 0..l.size as u64 {
            assert!(
                engine.hierarchy.peek_is_security_byte(base + off),
                "freed byte {off} must be califormed"
            );
            assert_eq!(engine.hierarchy.peek_byte(base + off), 0, "and zeroed");
        }
        assert_eq!(engine.delivered_exceptions().len(), 0, "no K-map faults");
    }

    #[test]
    fn use_after_free_is_detected() {
        let mut heap = CaliformsHeap::new(0x10000, AllocatorConfig::default());
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let base = heap.malloc(&l, &mut ops);
        heap.free(base, &mut ops);
        ops.push(TraceOp::Load {
            addr: base,
            size: 8,
        });
        let engine = run(ops);
        assert_eq!(engine.delivered_exceptions().len(), 1);
        assert_eq!(engine.delivered_exceptions()[0].fault_addr, base);
    }

    #[test]
    fn quarantine_delays_reuse() {
        let cfg = AllocatorConfig {
            quarantine_bytes: 256,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x10000, cfg);
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let a = heap.malloc(&l, &mut ops);
        heap.free(a, &mut ops);
        // Immediately reallocating must NOT reuse the quarantined block.
        let b = heap.malloc(&l, &mut ops);
        assert_ne!(a, b, "quarantined block must not be recycled yet");
        // Burn through the quarantine.
        let mut owned = Vec::new();
        for _ in 0..8 {
            let p = heap.malloc(&l, &mut ops);
            owned.push(p);
        }
        for p in owned {
            heap.free(p, &mut ops);
        }
        // Quarantine capacity (256 B) is far exceeded; `a` is reusable now.
        let stats = heap.stats();
        assert!(stats.quarantined_bytes <= 256);
        let c = heap.malloc(&l, &mut ops);
        assert_eq!(c, a, "oldest quarantined block is recycled first");
        assert!(heap.stats().recycled >= 1);
    }

    #[test]
    fn recycled_alloc_clears_data_keeps_spans() {
        let cfg = AllocatorConfig {
            quarantine_bytes: 0, // immediate recycling
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x10000, cfg);
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let a = heap.malloc(&l, &mut ops);
        heap.free(a, &mut ops);
        let b = heap.malloc(&l, &mut ops);
        assert_eq!(a, b, "with no quarantine the block recycles immediately");
        let engine = run(ops);
        // Spans security, data clear — and, critically, no K-map fault
        // (set-over-set would have raised one).
        assert_eq!(engine.delivered_exceptions().len(), 0);
        assert!(engine.hierarchy.peek_is_security_byte(b + 1));
        assert!(!engine.hierarchy.peek_is_security_byte(b + 8));
    }

    #[test]
    fn no_cform_mode_emits_none() {
        let cfg = AllocatorConfig {
            emit_cforms: false,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x10000, cfg);
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::full_1_to(7));
        let base = heap.malloc(&l, &mut ops);
        heap.free(base, &mut ops);
        assert!(ops.iter().all(|op| !matches!(op, TraceOp::Cform { .. })));
        assert_eq!(heap.stats().cform_ops, 0);
    }

    #[test]
    fn span_only_free_touches_only_span_lines() {
        let cfg = AllocatorConfig {
            free_mode: FreeMode::SpanOnly,
            quarantine_bytes: 0,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x10000, cfg);
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let base = heap.malloc(&l, &mut ops);
        let cforms_before = heap.stats().cform_ops;
        heap.free(base, &mut ops);
        // Opportunistic paper-example spans sit in one line: one CFORM.
        assert_eq!(heap.stats().cform_ops - cforms_before, 1);
        let engine = run(ops);
        assert_eq!(engine.delivered_exceptions().len(), 0);
        // The freed block is plain (no whole-object caliform), and a
        // recycled re-malloc takes the cheap fresh path without faulting.
        assert!(!engine.hierarchy.peek_is_security_byte(base + 8));
        let mut ops2 = Vec::new();
        let again = heap.malloc(&l, &mut ops2);
        assert_eq!(again, base);
        let engine2 = run(ops2);
        assert_eq!(engine2.delivered_exceptions().len(), 0);
    }

    #[test]
    fn nt_free_emits_non_temporal_cforms() {
        let cfg = AllocatorConfig {
            nt_cform_on_free: true,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x10000, cfg);
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::Opportunistic);
        let base = heap.malloc(&l, &mut ops);
        heap.free(base, &mut ops);
        assert!(ops.iter().any(|op| matches!(op, TraceOp::CformNt { .. })));
        let engine = run(ops);
        assert_eq!(engine.delivered_exceptions().len(), 0);
        // The freed block is fully califormed and NOT resident in the L1.
        assert!(engine.hierarchy.peek_is_security_byte(base + 8));
        assert!(!engine.hierarchy.l1_contains(base & !63));
    }

    #[test]
    #[should_panic(expected = "free of unknown")]
    fn double_free_panics() {
        let mut heap = CaliformsHeap::new(0x10000, AllocatorConfig::default());
        let mut ops = Vec::new();
        let l = layout(InsertionPolicy::None);
        let base = heap.malloc(&l, &mut ops);
        heap.free(base, &mut ops);
        heap.free(base, &mut ops);
    }

    #[test]
    fn full_policy_survives_alloc_free_cycles() {
        let mut heap = CaliformsHeap::new(
            0x10000,
            AllocatorConfig {
                quarantine_bytes: 512,
                ..AllocatorConfig::default()
            },
        );
        let l = layout(InsertionPolicy::full_1_to(7));
        let mut ops = Vec::new();
        let mut live = Vec::new();
        for round in 0..20 {
            let p = heap.malloc(&l, &mut ops);
            live.push(p);
            if round % 3 == 2 {
                let victim = live.remove(0);
                heap.free(victim, &mut ops);
            }
        }
        let engine = run(ops);
        assert_eq!(
            engine.delivered_exceptions().len(),
            0,
            "allocator K-map discipline must never fault"
        );
    }

    #[test]
    fn region_mask_math() {
        assert_eq!(CaliformsHeap::region_mask(0, 0, 64), u64::MAX);
        assert_eq!(CaliformsHeap::region_mask(0, 0, 8), 0xFF);
        assert_eq!(CaliformsHeap::region_mask(0, 8, 8), 0xFF00);
        assert_eq!(CaliformsHeap::region_mask(64, 0, 64), 0);
        assert_eq!(CaliformsHeap::region_mask(64, 60, 8), 0xF);
    }
}
