//! # califorms-alloc
//!
//! The dynamic-memory half of Califorms' software stack (Section 6.1): a
//! model `malloc` that issues `CFORM` instructions around allocation and
//! deallocation, with the paper's two disciplines:
//!
//! * **Heap — clean-before-use + quarantine.** Freed memory stays fully
//!   califormed (and zeroed) at all times, giving temporal safety:
//!   use-after-free accesses hit security bytes. Allocation *clears*
//!   security bytes from the data locations (and leaves them set at the
//!   new object's span positions). Recently freed regions are quarantined
//!   and not reused until enough of the heap has been consumed.
//! * **Stack — dirty-before-use.** Frames get their security bytes set on
//!   function entry and unset on exit (use-after-return is rare enough
//!   that the cheaper discipline wins, Section 6.1).
//!
//! Allocators do not touch a simulator directly: they **emit trace
//! operations** ([`califorms_sim::TraceOp`]) — the `CFORM`s plus the
//! bookkeeping instructions the instrumented program would execute — which
//! workload generators interleave with application accesses. This mirrors
//! the paper's measurement method, where the dummy-store instrumentation
//! accounts for "all the software overheads we need to pay" (Section 8.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heap;
pub mod stack;

pub use heap::{AllocatorConfig, CaliformsHeap, FreeMode, HeapStats};
pub use stack::CaliformsStack;
