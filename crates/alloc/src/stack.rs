//! The dirty-before-use stack model (Section 6.1).
//!
//! Stack frames are cheap and short-lived, and use-after-return attacks
//! are rare, so the paper applies the lighter discipline on the stack:
//! unallocated stack memory carries **no** security bytes; a frame's spans
//! are set on function entry and unset on function exit.

use califorms_layout::CaliformedLayout;
use califorms_sim::TraceOp;

/// A pushed frame's bookkeeping.
#[derive(Debug, Clone)]
struct Frame {
    base: u64,
    size: usize,
    spans: Vec<(u64, u64)>,
}

/// The model stack: grows downward from `top`, one frame per function.
#[derive(Debug)]
pub struct CaliformsStack {
    top: u64,
    sp: u64,
    frames: Vec<Frame>,
    /// Whether to emit `CFORM`s (off for no-CFORM reference runs).
    pub emit_cforms: bool,
    /// Instructions charged to compute each `CFORM`'s masks.
    pub cform_setup_insns: u32,
}

impl CaliformsStack {
    /// Creates a stack with its top (highest address) at `top`.
    pub fn new(top: u64) -> Self {
        assert_eq!(top % 64, 0, "stack top must be cache-line aligned");
        Self {
            top,
            sp: top,
            frames: Vec::new(),
            emit_cforms: true,
            cform_setup_insns: 10,
        }
    }

    /// Current stack pointer.
    pub fn sp(&self) -> u64 {
        self.sp
    }

    /// Current frame depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Pushes a frame holding one object of `layout` (the frame is padded
    /// to 16 B like a real ABI frame), emitting entry-time `CFORM`s
    /// (dirty-before-use: set on entry). Returns the object base address.
    pub fn push_frame(&mut self, layout: &CaliformedLayout, ops: &mut Vec<TraceOp>) -> u64 {
        let size = layout.size.max(1).div_ceil(16) * 16;
        self.sp -= size as u64;
        let base = self.sp;
        let spans: Vec<(u64, u64)> = layout
            .cform_ops(base)
            .iter()
            .map(|op| (op.line_addr, op.mask))
            .collect();
        if self.emit_cforms {
            for &(line_addr, mask) in &spans {
                ops.push(TraceOp::Exec(self.cform_setup_insns));
                ops.push(TraceOp::Cform {
                    line_addr,
                    attrs: mask,
                    mask,
                });
            }
        }
        self.frames.push(Frame { base, size, spans });
        base
    }

    /// Pops the innermost frame, emitting exit-time `CFORM`s (unset on
    /// exit — the frame's memory returns to plain, unprotected stack).
    ///
    /// # Panics
    ///
    /// Panics if no frame is live.
    pub fn pop_frame(&mut self, ops: &mut Vec<TraceOp>) {
        let frame = self.frames.pop().expect("pop of empty stack");
        if self.emit_cforms {
            for &(line_addr, mask) in &frame.spans {
                ops.push(TraceOp::Exec(self.cform_setup_insns));
                ops.push(TraceOp::Cform {
                    line_addr,
                    attrs: 0,
                    mask,
                });
            }
        }
        self.sp = frame.base + frame.size as u64;
        debug_assert!(self.sp <= self.top);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use califorms_layout::{InsertionPolicy, StructDef};
    use califorms_sim::Engine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn layout() -> CaliformedLayout {
        let mut rng = SmallRng::seed_from_u64(3);
        InsertionPolicy::intelligent_1_to(7).apply(&StructDef::paper_example(), &mut rng)
    }

    #[test]
    fn push_sets_pop_unsets() {
        let mut stack = CaliformsStack::new(0x7FFF_0000);
        let mut ops = Vec::new();
        let l = layout();
        let base = stack.push_frame(&l, &mut ops);
        let span_off = l.security_spans[0].offset as u64;

        let mut engine = Engine::westmere();
        for op in ops.drain(..) {
            engine.step(op);
        }
        assert!(engine.hierarchy.peek_is_security_byte(base + span_off));

        stack.pop_frame(&mut ops);
        for op in ops.drain(..) {
            engine.step(op);
        }
        assert!(!engine.hierarchy.peek_is_security_byte(base + span_off));
        assert_eq!(engine.delivered_exceptions().len(), 0);
    }

    #[test]
    fn frames_nest_and_unwind() {
        let mut stack = CaliformsStack::new(0x7FFF_0000);
        let mut ops = Vec::new();
        let l = layout();
        let sp0 = stack.sp();
        let a = stack.push_frame(&l, &mut ops);
        let b = stack.push_frame(&l, &mut ops);
        assert!(b < a, "stack grows down");
        assert_eq!(stack.depth(), 2);
        stack.pop_frame(&mut ops);
        stack.pop_frame(&mut ops);
        assert_eq!(stack.sp(), sp0, "sp restored after unwind");
    }

    #[test]
    fn intra_frame_overflow_is_detected() {
        let mut stack = CaliformsStack::new(0x7FFF_0000);
        let mut ops = Vec::new();
        let l = layout();
        let base = stack.push_frame(&l, &mut ops);
        // Overflow `buf` by one byte: lands in the span after it.
        let buf = l.field_offset("buf").unwrap() as u64;
        let buf_len = 64u64;
        ops.push(TraceOp::Store {
            addr: base + buf + buf_len,
            size: 1,
        });
        let engine = Engine::westmere();
        let out = engine.run(ops);
        assert_eq!(out.stats.exceptions_delivered, 1);
    }

    #[test]
    fn no_cform_mode_emits_none() {
        let mut stack = CaliformsStack::new(0x7FFF_0000);
        stack.emit_cforms = false;
        let mut ops = Vec::new();
        stack.push_frame(&layout(), &mut ops);
        stack.pop_frame(&mut ops);
        assert!(ops.iter().all(|op| !matches!(op, TraceOp::Cform { .. })));
    }

    #[test]
    #[should_panic(expected = "pop of empty stack")]
    fn unbalanced_pop_panics() {
        CaliformsStack::new(0x1000_0000 & !63).pop_frame(&mut Vec::new());
    }
}
