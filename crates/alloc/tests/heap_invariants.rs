//! Property tests on the allocator: arbitrary malloc/free interleavings
//! under every policy must keep the heap's structural invariants and
//! never violate the CFORM K-map when replayed on the simulator.

use califorms_alloc::{AllocatorConfig, CaliformsHeap, FreeMode};
use califorms_layout::{InsertionPolicy, StructDef};
use califorms_sim::{Engine, TraceOp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum HeapOp {
    Malloc,
    /// Free the i-th live allocation (mod current count).
    Free(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(HeapOp::Malloc),
            2 => (0usize..64).prop_map(HeapOp::Free),
        ],
        1..60,
    )
}

fn arb_policy() -> impl Strategy<Value = InsertionPolicy> {
    prop_oneof![
        Just(InsertionPolicy::Opportunistic),
        Just(InsertionPolicy::full_1_to(7)),
        Just(InsertionPolicy::intelligent_1_to(5)),
    ]
}

proptest! {
    /// Live allocations never overlap, frees round-trip, and the whole
    /// trace replays on the simulator without a single K-map fault —
    /// under both free modes and both CFORM variants.
    #[test]
    fn random_heap_histories_stay_sound(
        ops in arb_ops(),
        policy in arb_policy(),
        span_only in any::<bool>(),
        nt in any::<bool>(),
        quarantine in prop_oneof![Just(0usize), Just(512), Just(1 << 16)],
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let layout = policy.apply(&StructDef::paper_example(), &mut rng);
        let cfg = AllocatorConfig {
            free_mode: if span_only { FreeMode::SpanOnly } else { FreeMode::FullObject },
            nt_cform_on_free: nt,
            quarantine_bytes: quarantine,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x1000_0000, cfg);
        let mut trace = Vec::new();
        let mut live: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Malloc => {
                    let base = heap.malloc(&layout, &mut trace);
                    // No overlap with any live allocation.
                    for &other in &live {
                        let disjoint = base + layout.size as u64 <= other
                            || other + layout.size as u64 <= base;
                        prop_assert!(disjoint, "{base:#x} overlaps {other:#x}");
                    }
                    prop_assert!(heap.is_live(base));
                    live.push(base);
                }
                HeapOp::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.remove(i % live.len());
                    heap.free(victim, &mut trace);
                    prop_assert!(!heap.is_live(victim));
                }
            }
        }

        // Touch every live object's fields, then replay everything.
        for &base in &live {
            for f in &layout.fields {
                trace.push(TraceOp::Load {
                    addr: base + f.offset as u64,
                    size: f.size.min(8) as u8,
                });
            }
        }
        let out = Engine::westmere().run(trace);
        prop_assert_eq!(
            out.stats.exceptions_delivered, 0,
            "allocator discipline must never fault"
        );
    }

    /// Heap statistics are internally consistent over any history.
    #[test]
    fn stats_are_consistent(ops in arb_ops(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let layout = InsertionPolicy::Opportunistic.apply(&StructDef::paper_example(), &mut rng);
        let mut heap = CaliformsHeap::new(0x2000_0000, AllocatorConfig::default());
        let mut trace = Vec::new();
        let mut live = Vec::new();
        let (mut mallocs, mut frees) = (0u64, 0u64);
        for op in ops {
            match op {
                HeapOp::Malloc => {
                    live.push(heap.malloc(&layout, &mut trace));
                    mallocs += 1;
                }
                HeapOp::Free(i) if !live.is_empty() => {
                    let v = live.remove(i % live.len());
                    heap.free(v, &mut trace);
                    frees += 1;
                }
                HeapOp::Free(_) => {}
            }
        }
        let stats = heap.stats();
        prop_assert_eq!(stats.allocs, mallocs);
        prop_assert_eq!(stats.frees, frees);
        prop_assert!(stats.recycled <= mallocs);
        prop_assert!(frees <= mallocs);
    }
}
