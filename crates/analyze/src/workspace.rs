//! Workspace traversal: find every `.rs` file under `crates/*/src`,
//! lint each one, and fold the results into a [`Report`].

use crate::config::LintConfig;
use crate::diagnostics::{AppliedSuppression, Finding, Report};
use crate::lint::{lint_source, SourceContext};
use std::fs;
use std::path::{Path, PathBuf};

/// Lints every `crates/*/src/**/*.rs` file under `root` (the repo root)
/// and returns the aggregate report. File order — and therefore finding
/// order — is lexicographic by repo-relative path, so the JSON artifact
/// is itself deterministic.
pub fn scan_workspace(root: &Path, config: &LintConfig) -> std::io::Result<Report> {
    let mut files = collect_sources(root)?;
    files.sort();
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressions: Vec<AppliedSuppression> = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let out = lint_source(
            &SourceContext {
                path: &rel_str,
                config,
            },
            &source,
        );
        findings.extend(out.findings);
        suppressions.extend(out.suppressions);
    }
    Ok(Report::new(files.len() as u64, findings, suppressions))
}

/// Repo-relative paths of every `.rs` file under `crates/*/src`.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for krate in fs::read_dir(&crates_dir)? {
        let krate = krate?.path();
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    // Make paths repo-relative.
    Ok(out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect())
}

/// Recursively collects `.rs` files under `dir`.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analyze crate lives inside the workspace it lints, so its own
    /// manifest dir is two levels below the repo root.
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("repo root resolves")
    }

    #[test]
    fn scan_sees_the_known_crates() {
        let report = scan_workspace(&repo_root(), &LintConfig::default()).unwrap();
        assert!(
            report.files_scanned > 30,
            "expected a real workspace, saw {} files",
            report.files_scanned
        );
    }
}
