//! Workspace traversal and whole-workspace orchestration: find every
//! `.rs` file under `crates/*/src`, parse them into one [`Workspace`]
//! with a [`CallGraph`], run the per-file lints plus the workspace
//! passes (lock-order, hot-path reachability, atomic-ordering), apply
//! each file's `analyze::allow` directives to everything anchored in
//! it, and fold the results into a [`Report`].

use crate::callgraph::{CallGraph, Workspace};
use crate::config::LintConfig;
use crate::diagnostics::{AppliedSuppression, Finding, Report};
use crate::lint::{apply_directives, lint_file, SourceContext};
use crate::{atomics, hotpath, lockorder};
use std::fs;
use std::path::{Path, PathBuf};

/// Lints every `crates/*/src/**/*.rs` file under `root` (the repo root)
/// with all workspace passes and returns the aggregate report.
pub fn scan_workspace(root: &Path, config: &LintConfig) -> std::io::Result<Report> {
    let mut files = collect_sources(root)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel_str, source));
    }
    Ok(analyze_sources(sources, config))
}

/// The full analysis over in-memory `(repo-relative path, source)`
/// pairs: per-file lints (with hot-path scoping delegated to the
/// reachability pass), then the call-graph passes, then suppression.
/// Fixture tests drive this directly with synthetic trees.
pub fn analyze_sources(sources: Vec<(String, String)>, config: &LintConfig) -> Report {
    let ws = Workspace::from_sources(sources);
    let cg = CallGraph::build(&ws);

    // Per-file checks (name-heuristic hot-path scoping off: the
    // reachability pass below owns hot-path lints workspace-wide).
    let mut file_lints = Vec::with_capacity(ws.files.len());
    for pf in &ws.files {
        let ctx = SourceContext {
            path: &pf.path,
            config,
        };
        file_lints.push(lint_file(&ctx, &pf.toks, &pf.source, false));
    }

    // Workspace passes; findings route to the file they anchor in so
    // that file's directives can suppress them.
    let mut pass_findings = Vec::new();
    pass_findings.extend(lockorder::run(&ws, &cg, config));
    pass_findings.extend(hotpath::run(&ws, &cg, config));
    pass_findings.extend(atomics::run(&ws, config));
    for f in pass_findings {
        if let Some(fi) = ws.file_index(&f.path) {
            file_lints[fi].raw.push(f);
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressions: Vec<AppliedSuppression> = Vec::new();
    for (pf, fl) in ws.files.iter().zip(file_lints) {
        let out = apply_directives(&pf.path, &fl.directives, fl.raw);
        findings.extend(out.findings);
        suppressions.extend(out.suppressions);
    }
    Report::new(ws.files.len() as u64, findings, suppressions)
}

/// Repo-relative paths of every `.rs` file under `crates/*/src`.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for krate in fs::read_dir(&crates_dir)? {
        let krate = krate?.path();
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    // Make paths repo-relative.
    Ok(out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect())
}

/// Recursively collects `.rs` files under `dir`.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analyze crate lives inside the workspace it lints, so its own
    /// manifest dir is two levels below the repo root.
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("repo root resolves")
    }

    #[test]
    fn scan_sees_the_known_crates() {
        let report = scan_workspace(&repo_root(), &LintConfig::default()).unwrap();
        assert!(
            report.files_scanned > 30,
            "expected a real workspace, saw {} files",
            report.files_scanned
        );
    }

    #[test]
    fn pass_findings_are_suppressible_by_file_directives() {
        let report = analyze_sources(
            vec![(
                "crates/sim/src/multicore.rs".to_string(),
                "fn worker_loop() {\n\
                     // analyze::allow(hot-path-unwrap): slot invariant, cannot be empty here\n\
                     thing.unwrap();\n\
                 }"
                .to_string(),
            )],
            &LintConfig::default(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressions.len(), 1);
        assert_eq!(report.suppressions[0].lint, "hot-path-unwrap");
    }
}
