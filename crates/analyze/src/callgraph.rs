//! The workspace model and call graph.
//!
//! [`Workspace`] holds every parsed source file; [`CallGraph`] flattens
//! their `fn` items into one node list and resolves each call site to
//! candidate callees by suffix name matching:
//!
//! * direct calls resolve to free functions of that name;
//! * method calls resolve to functions of that name that have an `impl`
//!   owner;
//! * `Owner::assoc` path calls resolve to functions whose owner matches
//!   the qualifier (`Self::` uses the caller's own owner; a lowercase
//!   qualifier is treated as a module path, i.e. like a direct call).
//!
//! When candidates exist in the caller's own crate, resolution is
//! restricted to them — cross-crate edges only form for names the
//! caller's crate doesn't define. Test-only functions are excluded from
//! both ends of every edge. This is a deliberate over/under-approximation
//! trade: good enough to carry held-lock sets and hot-path reachability
//! across call boundaries, cheap enough to run on every CI push.

use crate::parser::{parse_file, CallKind, ParsedFile};
use std::collections::BTreeMap;

/// All parsed files, in lexicographic path order.
#[derive(Debug)]
pub struct Workspace {
    /// Parsed files (sorted by path).
    pub files: Vec<ParsedFile>,
}

impl Workspace {
    /// Parses `(path, source)` pairs into a workspace model. The input
    /// is sorted by path so downstream IDs are deterministic.
    pub fn from_sources(mut files: Vec<(String, String)>) -> Self {
        files.sort();
        Self {
            files: files.iter().map(|(p, s)| parse_file(p, s)).collect(),
        }
    }

    /// Index of the file with `path`, if present.
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.files.iter().position(|f| f.path == path)
    }
}

/// A function node: `(file index, fn index within the file)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub item: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Flat id of the callee.
    pub to: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
    /// Token index of the call site in the caller's file.
    pub tok: usize,
}

/// Method names that are lock operations, not call edges, when invoked
/// with empty parens (`.lock()` / `.read()` / `.write()`); the
/// lock-order pass interprets them instead.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// The flattened call graph over non-test functions.
#[derive(Debug)]
pub struct CallGraph {
    /// Flat node list, in (file, item) order.
    pub fns: Vec<FnRef>,
    /// Resolved outgoing edges per flat id, in call-site order.
    pub edges: Vec<Vec<CallEdge>>,
    flat_of: BTreeMap<(usize, usize), usize>,
}

impl CallGraph {
    /// Builds the graph for `ws`.
    pub fn build(ws: &Workspace) -> Self {
        let mut fns = Vec::new();
        let mut flat_of = BTreeMap::new();
        for (fi, pf) in ws.files.iter().enumerate() {
            for (ii, item) in pf.fns.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                flat_of.insert((fi, ii), fns.len());
                fns.push(FnRef { file: fi, item: ii });
            }
        }
        // Name index over non-test fns.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (flat, r) in fns.iter().enumerate() {
            by_name
                .entry(&ws.files[r.file].fns[r.item].name)
                .or_default()
                .push(flat);
        }
        let mut edges: Vec<Vec<CallEdge>> = vec![Vec::new(); fns.len()];
        for (flat, r) in fns.iter().enumerate() {
            let pf = &ws.files[r.file];
            let item = &pf.fns[r.item];
            for call in &item.calls {
                let empty_parens = crate::parser::empty_call_parens(&pf.toks.tokens, call.tok + 1);
                if call.kind == CallKind::Method
                    && LOCK_METHODS.contains(&call.name.as_str())
                    && empty_parens
                {
                    continue;
                }
                let candidates = resolve(ws, &fns, &by_name, r, call);
                for to in candidates {
                    edges[flat].push(CallEdge {
                        to,
                        line: call.line,
                        col: call.col,
                        tok: call.tok,
                    });
                }
            }
        }
        Self {
            fns,
            edges,
            flat_of,
        }
    }

    /// Flat id of `(file, item)`, if the fn is a (non-test) node.
    pub fn flat(&self, file: usize, item: usize) -> Option<usize> {
        self.flat_of.get(&(file, item)).copied()
    }

    /// BFS over call edges from `roots`; the map records, for every
    /// reached node, the flat id it was first reached from (`None` for
    /// the roots themselves) — enough to reconstruct a witness chain.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(r) {
                v.insert(None);
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let f = queue[qi];
            qi += 1;
            for e in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e.to) {
                    v.insert(Some(f));
                    queue.push(e.to);
                }
            }
        }
        parent
    }

    /// `worker_loop → run_task_caught → panic_message`-style chain from
    /// a reachability root to `f`, given the parent map.
    pub fn chain(
        &self,
        ws: &Workspace,
        parents: &BTreeMap<usize, Option<usize>>,
        f: usize,
    ) -> String {
        let mut names = Vec::new();
        let mut cur = Some(f);
        while let Some(c) = cur {
            let r = self.fns[c];
            names.push(ws.files[r.file].fns[r.item].name.clone());
            cur = parents.get(&c).copied().flatten();
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Resolves one call to candidate flat ids (possibly empty). Candidates
/// from the caller's crate shadow all others.
fn resolve(
    ws: &Workspace,
    fns: &[FnRef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnRef,
    call: &crate::parser::CallSite,
) -> Vec<usize> {
    let Some(all) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let caller_crate = &ws.files[caller.file].crate_name;
    let matches_kind = |flat: &usize| -> bool {
        let r = fns[*flat];
        let owner = ws.files[r.file].fns[r.item].owner.as_deref();
        match &call.kind {
            CallKind::Direct => owner.is_none(),
            CallKind::Method => owner.is_some(),
            CallKind::Path(q) => {
                let q = match q.as_deref() {
                    // `Self::assoc` — the caller's own impl type.
                    Some("Self") => ws.files[caller.file].fns[caller.item].owner.clone(),
                    other => other.map(str::to_string),
                };
                match q {
                    // Lowercase-initial qualifier: a module path, so the
                    // target is a free fn (`models::barrier_model(...)`).
                    Some(q) if q.chars().next().is_some_and(char::is_lowercase) => owner.is_none(),
                    Some(q) => owner == Some(q.as_str()),
                    // `<A as B>::c` and friends: accept any owner-having fn.
                    None => owner.is_some(),
                }
            }
        }
    };
    let mut candidates: Vec<usize> = all.iter().copied().filter(|f| matches_kind(f)).collect();
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|f| &ws.files[fns[*f].file].crate_name == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        candidates = same_crate;
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
                .collect(),
        )
    }

    fn fn_flat(ws: &Workspace, cg: &CallGraph, name: &str) -> usize {
        cg.fns
            .iter()
            .position(|r| ws.files[r.file].fns[r.item].name == name)
            .unwrap_or_else(|| panic!("fn {name} not in graph"))
    }

    #[test]
    fn direct_and_method_calls_resolve_through_one_level() {
        let ws = ws(&[(
            "crates/sim/src/a.rs",
            "fn root() { helper(); }\n\
             fn helper() { s.deep(); }\n\
             struct S;\n\
             impl S { fn deep(&self) {} }",
        )]);
        let cg = CallGraph::build(&ws);
        let root = fn_flat(&ws, &cg, "root");
        let reach = cg.reachable(&[root]);
        assert!(reach.contains_key(&fn_flat(&ws, &cg, "helper")));
        assert!(reach.contains_key(&fn_flat(&ws, &cg, "deep")));
        assert_eq!(
            cg.chain(&ws, &reach, fn_flat(&ws, &cg, "deep")),
            "root → helper → deep"
        );
    }

    #[test]
    fn same_crate_candidates_shadow_cross_crate_ones() {
        let ws = ws(&[
            (
                "crates/sim/src/a.rs",
                "fn root() { x.step(); }\nstruct A;\nimpl A { fn step(&self) { simside(); } }\nfn simside() {}",
            ),
            (
                "crates/core/src/b.rs",
                "struct B;\nimpl B { fn step(&self) { coreside(); } }\nfn coreside() {}",
            ),
        ]);
        let cg = CallGraph::build(&ws);
        let reach = cg.reachable(&[fn_flat(&ws, &cg, "root")]);
        assert!(reach.contains_key(&fn_flat(&ws, &cg, "simside")));
        assert!(!reach.contains_key(&fn_flat(&ws, &cg, "coreside")));
    }

    #[test]
    fn cross_crate_resolution_engages_when_the_name_is_foreign() {
        let ws = ws(&[
            ("crates/sim/src/a.rs", "fn root() { spill(); }"),
            (
                "crates/core/src/b.rs",
                "fn spill() { fill_inner(); }\nfn fill_inner() {}",
            ),
        ]);
        let cg = CallGraph::build(&ws);
        let reach = cg.reachable(&[fn_flat(&ws, &cg, "root")]);
        assert!(reach.contains_key(&fn_flat(&ws, &cg, "fill_inner")));
    }

    #[test]
    fn test_fns_are_invisible_to_the_graph() {
        let ws = ws(&[(
            "crates/sim/src/a.rs",
            "fn root() { helper(); }\n\
             #[cfg(test)]\n\
             mod tests { fn helper() {} }",
        )]);
        let cg = CallGraph::build(&ws);
        let root = fn_flat(&ws, &cg, "root");
        // The only `helper` is test-only, so the call resolves nowhere.
        assert_eq!(cg.reachable(&[root]).len(), 1);
    }

    #[test]
    fn zero_arg_lock_read_write_are_not_call_edges() {
        let ws = ws(&[(
            "crates/sim/src/a.rs",
            "fn root(m: &M, d: &D) { m.lock(); d.read(7); }\n\
             struct M;\nimpl M { fn lock(&self) { never(); } }\n\
             struct D;\nimpl D { fn read(&self, x: u32) { reads(); } }\n\
             fn never() {}\nfn reads() {}",
        )]);
        let cg = CallGraph::build(&ws);
        let reach = cg.reachable(&[fn_flat(&ws, &cg, "root")]);
        assert!(!reach.contains_key(&fn_flat(&ws, &cg, "never")));
        assert!(reach.contains_key(&fn_flat(&ws, &cg, "reads")));
    }

    #[test]
    fn self_path_calls_use_the_callers_owner() {
        let ws = ws(&[(
            "crates/sim/src/a.rs",
            "struct S;\nimpl S {\n fn a(&self) { Self::b(); }\n fn b() { marker(); }\n}\nfn marker() {}",
        )]);
        let cg = CallGraph::build(&ws);
        let reach = cg.reachable(&[fn_flat(&ws, &cg, "a")]);
        assert!(reach.contains_key(&fn_flat(&ws, &cg, "marker")));
    }
}
