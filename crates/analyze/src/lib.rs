//! # califorms-analyze
//!
//! Static analysis and concurrency model checking for the Califorms
//! workspace — the tooling that turns the repo's central invariant,
//! *same seed ⇒ bit-identical results across every core count, quantum
//! size and weave batch*, from a dynamically-tested property (the
//! `califorms-oracle` differential harness catches violations after they
//! ship) into a structurally-enforced one (DESIGN.md §12).
//!
//! Two subsystems:
//!
//! * **The workspace lint pass** ([`lint`], over a lightweight Rust
//!   [`tokenizer`]) enforces repo-specific determinism invariants on
//!   `crates/*/src`: no default-hasher `HashMap`/`HashSet` in
//!   result-bearing crates, no host timing or OS randomness in
//!   simulated-result paths, no thread spawns outside the parallel
//!   runtime, no bare `unwrap`/`expect` on the worker-loop hot path,
//!   `#![forbid(unsafe_code)]` in every crate root, and no iteration
//!   over nondeterministic maps. Findings carry rustc-style file:line
//!   spans ([`diagnostics`]), render as human diagnostics or a
//!   machine-readable JSON report, and can be suppressed inline with
//!   `// analyze::allow(<lint-name>): <reason>`.
//! * **The concurrency model checker** ([`sched`]) is a loom-style
//!   deterministic virtual scheduler with shim `Mutex`/`Condvar`/atomic
//!   types mirroring the `std::sync` API, a DFS bounded-preemption
//!   explorer over all interleavings of small protocol models, and a
//!   seeded-random large-schedule mode. [`sched::models`] holds faithful
//!   state-machine models of the `QuantumBarrier` epoch protocol and the
//!   worker-slot task handoff from `califorms-sim::multicore`, checked
//!   for deadlock, lost wakeups and epoch monotonicity across every
//!   schedule up to the bound.
//!
//! CI entry point: `cargo run -p califorms-analyze -- --check` (lints the
//! workspace, exits non-zero on findings) and `-- --sched` (exhaustive
//! protocol-model pass, including the broken variants that prove the
//! detectors fire).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diagnostics;
pub mod lint;
pub mod sched;
pub mod tokenizer;
pub mod workspace;

pub use config::LintConfig;
pub use diagnostics::{Finding, Report};
pub use lint::{lint_source, SourceContext};
pub use workspace::scan_workspace;
