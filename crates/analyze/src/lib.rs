//! # califorms-analyze
//!
//! Static analysis and concurrency model checking for the Califorms
//! workspace — the tooling that turns the repo's central invariant,
//! *same seed ⇒ bit-identical results across every core count, quantum
//! size and weave batch*, from a dynamically-tested property (the
//! `califorms-oracle` differential harness catches violations after they
//! ship) into a structurally-enforced one (DESIGN.md §12).
//!
//! Three subsystems:
//!
//! * **The workspace lint pass** ([`lint`], over a lightweight Rust
//!   [`tokenizer`]) enforces repo-specific determinism invariants on
//!   `crates/*/src`: no default-hasher `HashMap`/`HashSet` in
//!   result-bearing crates, no host timing or OS randomness in
//!   simulated-result paths, no thread spawns outside the parallel
//!   runtime, `#![forbid(unsafe_code)]` in every crate root, and no
//!   iteration over nondeterministic maps. Findings carry rustc-style
//!   file:line spans ([`diagnostics`]), render as human diagnostics or
//!   a versioned, byte-stable JSON report, and can be suppressed inline
//!   with `// analyze::allow(<lint-name>): <reason>`. [`fix`] applies
//!   the mechanical remediations.
//! * **The call-graph passes** build a whole-workspace call graph
//!   ([`parser`] + [`callgraph`]) and reason across function
//!   boundaries: [`lockorder`] propagates held-lock sets through calls
//!   and reports lock-class cycles with full witness paths,
//!   [`hotpath`] re-bases the hot-path lints (`hot-path-unwrap`,
//!   `hot-path-alloc`, `hot-path-blocking`) on reachability from the
//!   worker-loop roots, and [`atomics`] audits non-SeqCst atomic
//!   orderings for `// analyze::order(<reason>)` justifications.
//! * **The concurrency model checker** ([`sched`]) is a loom-style
//!   deterministic virtual scheduler with shim
//!   `Mutex`/`RwLock`/`Condvar`/atomic/channel types mirroring the
//!   `std::sync` API, a DFS bounded-preemption explorer over all
//!   interleavings of small protocol models, and a seeded-random
//!   large-schedule mode. [`sched::models`] holds faithful
//!   state-machine models of the `QuantumBarrier` epoch protocol and the
//!   worker-slot task handoff from `califorms-sim::multicore`, and
//!   [`sched::weave`] the speculative-weave claim → execute →
//!   commit/abort epoch protocol — checked for deadlock, lost wakeups,
//!   epoch monotonicity and lost updates across every schedule up to
//!   the bound.
//!
//! CI entry point: `cargo run -p califorms-analyze -- --check` (lints the
//! workspace, exits non-zero on findings) and `-- --sched` (exhaustive
//! protocol-model pass, including the broken variants that prove the
//! detectors fire, with the weave model's schedule count pinned).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod fix;
pub mod hotpath;
pub mod lint;
pub mod lockorder;
pub mod parser;
pub mod sched;
pub mod tokenizer;
pub mod workspace;

pub use config::LintConfig;
pub use diagnostics::{Finding, Report};
pub use lint::{lint_source, SourceContext};
pub use workspace::{analyze_sources, scan_workspace};
