//! The workspace determinism lint pass.
//!
//! Token-stream checks over one file at a time. Each check produces
//! [`Finding`]s with file:line:col spans; inline
//! `// analyze::allow(<lint-name>): <reason>` directives suppress a
//! matching finding on the same line or the line directly below the
//! directive, and every applied suppression is recorded in the report.
//!
//! Lint catalogue (DESIGN.md §12):
//!
//! | lint | fires on |
//! |------|----------|
//! | `nondet-map` | default-hasher `HashMap`/`HashSet` in a result-bearing crate |
//! | `nondet-map-iter` | iterating a default-hasher map (`.iter()`, `.keys()`, ...) |
//! | `host-time` | `Instant`/`SystemTime` in a simulated-result path |
//! | `host-rand` | OS randomness (`thread_rng`, `OsRng`, `from_entropy`, `getrandom`) |
//! | `thread-spawn` | spawning threads outside the parallel runtime |
//! | `hot-path-unwrap` | bare `.unwrap()`/`.expect()` in a worker-loop hot-path function |
//! | `missing-forbid-unsafe` | crate/bin root without `#![forbid(unsafe_code)]` |
//! | `malformed-allow` | an `analyze::allow` directive that doesn't parse |

use crate::config::LintConfig;
use crate::diagnostics::{AppliedSuppression, Finding};
use crate::tokenizer::{tokenize, Token, Tokenized};

/// Everything `lint_source` needs to know about the file being linted.
pub struct SourceContext<'a> {
    /// Repo-relative path with forward slashes (drives scoping rules).
    pub path: &'a str,
    /// Policy knobs.
    pub config: &'a LintConfig,
}

/// The result of linting one file.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that survived suppression, in (line, col) order.
    pub findings: Vec<Finding>,
    /// Suppressions that absorbed a finding.
    pub suppressions: Vec<AppliedSuppression>,
}

/// Methods that consume a default-hasher map's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Constructors that pick the default (randomized) hasher.
const DEFAULT_HASHER_CTORS: &[&str] = &["new", "default", "with_capacity", "from"];

/// OS / entropy randomness markers.
const RAND_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy", "getrandom"];

/// Lints a single file in isolation: tokenize, run the per-file checks
/// (including the legacy name-heuristic hot-path scoping), apply
/// suppressions.
///
/// The workspace scan does NOT go through here: it calls [`lint_file`]
/// with `hot_heuristic = false` (the call-graph reachability pass owns
/// hot-path lints there) and merges pass findings before
/// [`apply_directives`].
pub fn lint_source(ctx: &SourceContext<'_>, source: &str) -> LintOutcome {
    let toks = tokenize(source);
    let fl = lint_file(ctx, &toks, source, true);
    apply_directives(ctx.path, &fl.directives, fl.raw)
}

/// Raw per-file lint results, before suppression.
pub(crate) struct FileLint {
    /// Unsuppressed findings (including `malformed-allow`).
    pub(crate) raw: Vec<Finding>,
    /// Well-formed `analyze::allow` directives found in the file.
    pub(crate) directives: Vec<Directive>,
}

/// Runs the per-file checks over an already-tokenized file.
/// `hot_heuristic` enables the PR 6 name-based `hot-path-unwrap`
/// scoping (functions literally named in the config); the workspace
/// scan disables it in favour of call-graph reachability.
pub(crate) fn lint_file(
    ctx: &SourceContext<'_>,
    toks: &Tokenized,
    source: &str,
    hot_heuristic: bool,
) -> FileLint {
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| (*l).to_string())
    };
    let mk = |lint: &str, t: &Token, message: String, help: &str| Finding {
        lint: lint.to_string(),
        path: ctx.path.to_string(),
        line: t.line,
        col: t.col,
        message,
        snippet: snippet(t.line),
        help: help.to_string(),
    };

    let mut raw: Vec<Finding> = Vec::new();

    // ----- directive parsing (and malformed-allow findings) -----------
    let (directives, mut malformed) = parse_directives(ctx, toks, &snippet);
    raw.append(&mut malformed);

    let t = &toks.tokens;
    let in_use = use_statement_mask(t);

    // ----- nondet-map / nondet-map-iter -------------------------------
    let mut nondet_names: Vec<String> = Vec::new();
    if ctx.config.is_result_bearing(ctx.path) {
        for i in 0..t.len() {
            let Some(id) = t[i].ident() else { continue };
            if (id == "HashMap" || id == "HashSet") && !in_use[i] {
                let required = if id == "HashMap" { 3 } else { 2 };
                if let Some(reason) = default_hasher_use(t, i, required) {
                    raw.push(mk(
                        "nondet-map",
                        &t[i],
                        format!(
                            "default-hasher `{id}` in result-bearing crate ({reason}): \
                             iteration order varies per process"
                        ),
                        "use `califorms_core::LineMap`/`LineSet` or an explicit \
                         `BuildHasherDefault<LineHasher>` parameter",
                    ));
                    if let Some(name) = bound_name(t, i) {
                        nondet_names.push(name);
                    }
                }
            }
            if id == "RandomState" && !in_use[i] {
                raw.push(mk(
                    "nondet-map",
                    &t[i],
                    "`RandomState` in result-bearing crate: per-process random hash seed"
                        .to_string(),
                    "use `BuildHasherDefault<LineHasher>`",
                ));
            }
        }
        // Second pass: iteration over maps recorded as default-hasher.
        for i in 0..t.len() {
            let Some(name) = t[i].ident() else { continue };
            if !nondet_names.iter().any(|n| n == name) {
                continue;
            }
            if i + 2 < t.len()
                && t[i + 1].is_punct('.')
                && t[i + 2].ident().is_some_and(|m| ITER_METHODS.contains(&m))
            {
                let m = t[i + 2].ident().unwrap_or_default().to_string();
                raw.push(mk(
                    "nondet-map-iter",
                    &t[i + 2],
                    format!(
                        "`.{m}()` on default-hasher map `{name}`: order depends on the \
                         per-process hash seed"
                    ),
                    "switch the map to a deterministic hasher, or collect-and-sort \
                     before iterating",
                ));
            }
        }
    }

    // ----- host-time / host-rand --------------------------------------
    if ctx.config.is_result_bearing(ctx.path) && !ctx.config.allows_host_time(ctx.path) {
        for (i, tok) in t.iter().enumerate() {
            let Some(id) = tok.ident() else { continue };
            if in_use[i] {
                continue;
            }
            if id == "Instant" || id == "SystemTime" {
                raw.push(mk(
                    "host-time",
                    tok,
                    format!(
                        "`{id}` in a simulated-result path: host wall-clock leaks into results"
                    ),
                    "simulated time must come from the cycle model; host timing is only \
                     allowed in the RuntimeTiming perf report (see LintConfig::host_time_allow)",
                ));
            }
            if RAND_IDENTS.contains(&id) {
                raw.push(mk(
                    "host-rand",
                    tok,
                    format!(
                        "`{id}` in a simulated-result path: OS entropy breaks seed-determinism"
                    ),
                    "derive all randomness from the run seed (splitmix64 over the seed)",
                ));
            }
        }
    }

    // ----- thread-spawn ------------------------------------------------
    if !ctx.config.allows_spawn(ctx.path) {
        for i in 0..t.len() {
            let spawned = (t[i].is_ident("thread")
                && i + 3 < t.len()
                && t[i + 1].is_punct(':')
                && t[i + 2].is_punct(':')
                && t[i + 3].is_ident("spawn"))
                || (t[i].is_punct('.')
                    && i + 2 < t.len()
                    && t[i + 1].is_ident("spawn")
                    && t[i + 2].is_punct('('));
            if spawned {
                let at = if t[i].is_punct('.') { &t[i + 1] } else { &t[i] };
                raw.push(mk(
                    "thread-spawn",
                    at,
                    "thread spawn outside the parallel runtime".to_string(),
                    "all worker threads belong to runtime.rs/multicore.rs so the \
                     persistent pool and barrier protocol stay the single concurrency site",
                ));
            }
        }
    }

    // ----- hot-path-unwrap (legacy name heuristic) ---------------------
    let hot_functions = if hot_heuristic {
        ctx.config.hot_functions(ctx.path)
    } else {
        Vec::new()
    };
    for func in hot_functions {
        for (lo, hi) in function_bodies(t, func) {
            for i in lo..hi {
                if t[i].is_punct('.')
                    && i + 2 < hi
                    && t[i + 1]
                        .ident()
                        .is_some_and(|m| m == "unwrap" || m == "expect")
                    && t[i + 2].is_punct('(')
                {
                    let m = t[i + 1].ident().unwrap_or_default().to_string();
                    raw.push(mk(
                        "hot-path-unwrap",
                        &t[i + 1],
                        format!(
                            "bare `.{m}()` in hot-path function `{func}`: a panic here \
                             poisons the barrier and hangs every worker"
                        ),
                        "recover explicitly (e.g. `unwrap_or_else(PoisonError::into_inner)`) \
                         or surface the error as WorkerPanic",
                    ));
                }
            }
        }
    }

    // ----- missing-forbid-unsafe ---------------------------------------
    if LintConfig::requires_forbid_unsafe(ctx.path) && !has_forbid_unsafe(t) {
        raw.push(Finding {
            lint: "missing-forbid-unsafe".to_string(),
            path: ctx.path.to_string(),
            line: 1,
            col: 1,
            message: "crate root without `#![forbid(unsafe_code)]`".to_string(),
            snippet: snippet(1),
            help: "add `#![forbid(unsafe_code)]` at the top of the file".to_string(),
        });
    }

    FileLint { raw, directives }
}

/// Applies a file's suppression directives to its raw findings. A
/// directive absorbs a same-lint finding on its own line or the line
/// directly below; everything else survives.
pub(crate) fn apply_directives(
    path: &str,
    directives: &[Directive],
    raw: Vec<Finding>,
) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    for f in raw {
        let hit = directives
            .iter()
            .find(|d| d.lint == f.lint && (d.line == f.line || d.line + 1 == f.line));
        match hit {
            Some(d) => outcome.suppressions.push(AppliedSuppression {
                lint: d.lint.clone(),
                path: path.to_string(),
                line: d.line,
                reason: d.reason.clone(),
            }),
            None => outcome.findings.push(f),
        }
    }
    outcome
        .findings
        .sort_by(|a, b| (a.line, a.col, &a.lint).cmp(&(b.line, b.col, &b.lint)));
    outcome.suppressions.sort_by_key(|s| s.line);
    outcome.suppressions.dedup();
    outcome
}

/// A parsed `analyze::allow` directive.
pub(crate) struct Directive {
    line: u32,
    lint: String,
    reason: String,
}

/// Extracts well-formed directives and reports malformed ones.
fn parse_directives(
    ctx: &SourceContext<'_>,
    toks: &Tokenized,
    snippet: &dyn Fn(u32) -> String,
) -> (Vec<Directive>, Vec<Finding>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in &toks.comments {
        let Some(rest) = c.text.trim_start().strip_prefix("analyze::allow") else {
            continue;
        };
        let parsed = (|| {
            let rest = rest.strip_prefix('(')?;
            let (name, rest) = rest.split_once(')')?;
            let name = name.trim();
            if name.is_empty() || !name.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
                return None;
            }
            let reason = rest.strip_prefix(':')?.trim();
            if reason.is_empty() {
                return None;
            }
            Some((name.to_string(), reason.to_string()))
        })();
        match parsed {
            Some((lint, reason)) => ok.push(Directive {
                line: c.line,
                lint,
                reason,
            }),
            None => bad.push(Finding {
                lint: "malformed-allow".to_string(),
                path: ctx.path.to_string(),
                line: c.line,
                col: 1,
                message: "unparsable `analyze::allow` directive".to_string(),
                snippet: snippet(c.line),
                help: "expected `// analyze::allow(<lint-name>): <reason>` with a \
                       kebab-case lint name and a non-empty justification"
                    .to_string(),
            }),
        }
    }
    (ok, bad)
}

/// Marks tokens inside `use ...;` statements (imports are not uses).
fn use_statement_mask(t: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; t.len()];
    let mut inside = false;
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("use") {
            inside = true;
        }
        mask[i] = inside;
        if inside && tok.is_punct(';') {
            inside = false;
        }
    }
    mask
}

/// Decides whether the `HashMap`/`HashSet` ident at `i` picks the default
/// hasher. Returns a short reason string if so.
fn default_hasher_use(t: &[Token], i: usize, required_args: usize) -> Option<&'static str> {
    let mut j = i + 1;
    // Turbofish: `HashMap::<...>` — treat like a generic list.
    if j + 1 < t.len() && t[j].is_punct(':') && t[j + 1].is_punct(':') {
        if t.get(j + 2).is_some_and(|x| x.is_punct('<')) {
            j += 2;
        } else {
            // `HashMap::ctor(...)` — default hasher iff the ctor doesn't
            // take an explicit hasher.
            let m = t.get(j + 2)?.ident()?;
            return DEFAULT_HASHER_CTORS
                .contains(&m)
                .then_some("default-hasher constructor");
        }
    }
    if t.get(j).is_some_and(|x| x.is_punct('<')) {
        // Count depth-1 generic arguments; fewer than `required_args`
        // means the hasher parameter was elided.
        let mut depth = 1usize;
        let mut args = 1usize;
        let mut k = j + 1;
        while k < t.len() && depth > 0 {
            if t[k].is_punct('<') {
                depth += 1;
            } else if t[k].is_punct('>') && !t[k - 1].is_punct('-') {
                depth -= 1;
            } else if t[k].is_punct(',') && depth == 1 {
                args += 1;
            }
            k += 1;
        }
        return (args < required_args).then_some("hasher type parameter elided");
    }
    // Bare mention with neither generics nor a method: ignore (could be a
    // doc link or pattern we can't judge).
    None
}

/// If the default-hasher map at token `i` is being bound to a name
/// (`name: HashMap<...>` field/let annotation, or `name = HashMap::new()`),
/// returns that name for iteration-hazard tracking.
fn bound_name(t: &[Token], i: usize) -> Option<String> {
    if i >= 2 && t[i - 1].is_punct(':') && !t[i - 2].is_punct(':') {
        return t[i - 2].ident().map(str::to_string);
    }
    if i >= 2 && t[i - 1].is_punct('=') {
        return t[i - 2].ident().map(str::to_string);
    }
    None
}

/// Token ranges (exclusive of the braces) of every body of `fn name`.
fn function_bodies(t: &[Token], name: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if !(t[i].is_ident("fn") && t.get(i + 1).is_some_and(|x| x.is_ident(name))) {
            continue;
        }
        let Some(open) = (i + 2..t.len()).find(|&j| t[j].is_punct('{')) else {
            continue;
        };
        let mut depth = 1usize;
        let mut j = open + 1;
        while j < t.len() && depth > 0 {
            if t[j].is_punct('{') {
                depth += 1;
            } else if t[j].is_punct('}') {
                depth -= 1;
            }
            j += 1;
        }
        out.push((open + 1, j.saturating_sub(1)));
    }
    out
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(t: &[Token]) -> bool {
    t.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> LintOutcome {
        let config = LintConfig::default();
        lint_source(
            &SourceContext {
                path,
                config: &config,
            },
            src,
        )
    }

    fn lints(path: &str, src: &str) -> Vec<String> {
        lint(path, src)
            .findings
            .iter()
            .map(|f| f.lint.clone())
            .collect()
    }

    #[test]
    fn default_hasher_map_fires_only_in_result_bearing_crates() {
        let src = "struct S { m: HashMap<u64, u32> }";
        assert_eq!(lints("crates/sim/src/x.rs", src), vec!["nondet-map"]);
        assert!(lints("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn three_arg_map_and_imports_are_clean() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u64, u32, BuildHasherDefault<LineHasher>> }";
        assert!(lints("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn ctor_and_iteration_are_flagged() {
        let src = "fn f() { let mut m = HashMap::new(); m.keys(); }";
        assert_eq!(
            lints("crates/sim/src/x.rs", src),
            vec!["nondet-map", "nondet-map-iter"]
        );
    }

    #[test]
    fn suppression_absorbs_and_is_recorded() {
        let src = "// analyze::allow(nondet-map): ephemeral scratch map\n\
                   fn f() { let m = HashMap::<u64, u32>::new(); }";
        let out = lint("crates/sim/src/x.rs", src);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].reason, "ephemeral scratch map");
    }

    #[test]
    fn malformed_directive_is_a_finding() {
        let src = "// analyze::allow(nondet-map)\nfn f() {}";
        assert_eq!(lints("crates/sim/src/x.rs", src), vec!["malformed-allow"]);
    }

    #[test]
    fn host_time_respects_the_allowlist() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lints("crates/sim/src/os.rs", src), vec!["host-time"]);
        assert!(lints("crates/sim/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn spawn_fires_outside_the_runtime() {
        let src = "fn f() { thread::spawn(|| {}); }";
        assert_eq!(lints("crates/sim/src/os.rs", src), vec!["thread-spawn"]);
        assert!(lints("crates/sim/src/multicore.rs", src).is_empty());
    }

    #[test]
    fn hot_path_unwrap_is_function_scoped() {
        let src = "fn worker_loop() { x.lock().unwrap(); }\n\
                   fn elsewhere() { y.lock().unwrap(); }";
        let out = lint("crates/sim/src/multicore.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "hot-path-unwrap");
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn forbid_unsafe_is_required_in_roots() {
        assert_eq!(
            lints("crates/x/src/lib.rs", "pub fn f() {}"),
            vec!["missing-forbid-unsafe"]
        );
        assert!(lints(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
        assert!(lints("crates/x/src/other.rs", "pub fn f() {}").is_empty());
    }
}
