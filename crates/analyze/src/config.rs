//! Lint configuration: which crates are result-bearing, which modules
//! are allowed host timing or thread spawns, and which functions form
//! the worker-loop hot path.
//!
//! The defaults encode this repo's policy (DESIGN.md §12). They are data
//! rather than hard-coded checks so the fixture tests can exercise the
//! lints against synthetic trees without rebuilding the scanner.

/// A hot-path function: bare `unwrap()`/`expect()` is banned inside it.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Repo-relative file the function lives in (forward slashes).
    pub file: &'static str,
    /// Function name (the ident after `fn`).
    pub function: &'static str,
}

/// Policy knobs for the lint pass.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose results feed simulated output: default-hasher maps
    /// are banned anywhere inside them.
    pub result_bearing_crates: Vec<&'static str>,
    /// Files allowed to use `Instant`/`SystemTime` (host-only timing
    /// that never feeds simulated results, e.g. `RuntimeTiming`).
    pub host_time_allow: Vec<&'static str>,
    /// Files allowed to spawn threads (the parallel runtime itself).
    pub spawn_allow: Vec<&'static str>,
    /// Functions in which bare `unwrap()`/`expect()` is banned. These
    /// are also the reachability roots of the workspace hot-path passes.
    pub hot_paths: Vec<HotPath>,
    /// Free functions that acquire the lock passed as their argument
    /// (the pass treats a call like `lock_recover(&self.state)` as an
    /// acquisition of the `state` lock class).
    pub lock_helpers: Vec<&'static str>,
    /// Raw lock field/binding names → canonical lock-class names, so
    /// `slot`/`slots` and the barrier `state` report under their runtime
    /// names in lock-order witnesses.
    pub lock_aliases: Vec<(&'static str, &'static str)>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            result_bearing_crates: vec!["core", "sim", "alloc", "oracle", "telemetry"],
            host_time_allow: vec![
                // RuntimeTiming measures host wall-clock for the perf
                // report only; simulated results never read it.
                "crates/sim/src/runtime.rs",
                "crates/sim/src/multicore.rs",
                // Bench harness timing is host-side by definition.
                "crates/bench/src/lib.rs",
                // The telemetry span clock is host time by design; it
                // feeds only the Perfetto timeline, never counters —
                // which is why span.rs alone is allowlisted while the
                // rest of the telemetry crate stays under the lint.
                "crates/telemetry/src/span.rs",
            ],
            spawn_allow: vec![
                "crates/sim/src/runtime.rs",
                "crates/sim/src/multicore.rs",
                // The model checker's explorer runs real OS threads
                // under its virtual scheduler.
                "crates/analyze/src/sched/explorer.rs",
                "crates/analyze/src/sched/shim.rs",
                // The crash-recovery harness spawns a child *process*
                // (its own binary, the `kill -9` target) — a
                // `Command::spawn`, not a worker thread.
                "crates/bench/src/bin/crashrecovery.rs",
            ],
            hot_paths: vec![
                HotPath {
                    file: "crates/sim/src/multicore.rs",
                    function: "worker_loop",
                },
                HotPath {
                    file: "crates/sim/src/multicore.rs",
                    function: "run_task_caught",
                },
                HotPath {
                    file: "crates/sim/src/runtime.rs",
                    function: "wait_for_quantum",
                },
                HotPath {
                    file: "crates/sim/src/runtime.rs",
                    function: "worker_done",
                },
                HotPath {
                    file: "crates/sim/src/runtime.rs",
                    function: "release",
                },
                HotPath {
                    file: "crates/sim/src/runtime.rs",
                    function: "wait_all_done",
                },
                HotPath {
                    file: "crates/sim/src/runtime.rs",
                    function: "wait_all_done_deadline",
                },
                HotPath {
                    file: "crates/sim/src/runtime.rs",
                    function: "stop",
                },
                HotPath {
                    file: "crates/sim/src/multicore.rs",
                    function: "weave_turn",
                },
            ],
            lock_helpers: vec![
                // Production poison-recovering lock helper (runtime.rs)
                // and the model checker's internal std-mutex helpers.
                "lock_recover",
                "lk",
                "lk_handles",
            ],
            lock_aliases: vec![
                ("slot", "worker-slot"),
                ("slots", "worker-slot"),
                ("panics", "panic-list"),
                ("state", "barrier-state"),
                ("tracks", "telemetry-recorder"),
                // Drain-protocol model: per-core bound-phase progress
                // counters the checkpoint snapshot reads after quiesce.
                ("counters", "core-progress"),
            ],
        }
    }
}

impl LintConfig {
    /// Whether `path` (repo-relative, forward slashes) is inside a
    /// result-bearing crate's `src` tree.
    pub fn is_result_bearing(&self, path: &str) -> bool {
        self.result_bearing_crates
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    }

    /// Whether `path` may use host timing.
    pub fn allows_host_time(&self, path: &str) -> bool {
        self.host_time_allow.contains(&path)
    }

    /// Whether `path` may spawn threads.
    pub fn allows_spawn(&self, path: &str) -> bool {
        self.spawn_allow.contains(&path)
    }

    /// Hot-path function names for `path` (empty if none).
    pub fn hot_functions(&self, path: &str) -> Vec<&'static str> {
        self.hot_paths
            .iter()
            .filter(|h| h.file == path)
            .map(|h| h.function)
            .collect()
    }

    /// Whether `name` is a lock-acquiring helper function.
    pub fn is_lock_helper(&self, name: &str) -> bool {
        self.lock_helpers.contains(&name)
    }

    /// Canonical lock-class name for a raw field/binding name.
    pub fn lock_class(&self, raw: &str) -> String {
        self.lock_aliases
            .iter()
            .find(|(from, _)| *from == raw)
            .map_or_else(|| raw.to_string(), |(_, to)| (*to).to_string())
    }

    /// Whether `path` is a crate root or binary root that must carry
    /// `#![forbid(unsafe_code)]`.
    pub fn requires_forbid_unsafe(path: &str) -> bool {
        path.ends_with("/src/lib.rs")
            || path.ends_with("/src/main.rs")
            || path.contains("/src/bin/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_bearing_matches_src_trees_only() {
        let c = LintConfig::default();
        assert!(c.is_result_bearing("crates/sim/src/os.rs"));
        assert!(c.is_result_bearing("crates/core/src/detmap.rs"));
        assert!(!c.is_result_bearing("crates/sim/tests/os_determinism.rs"));
        assert!(!c.is_result_bearing("crates/bench/src/lib.rs"));
    }

    #[test]
    fn crate_roots_require_forbid_unsafe() {
        assert!(LintConfig::requires_forbid_unsafe("crates/sim/src/lib.rs"));
        assert!(LintConfig::requires_forbid_unsafe(
            "crates/bench/src/bin/sweep.rs"
        ));
        assert!(!LintConfig::requires_forbid_unsafe("crates/sim/src/os.rs"));
    }
}
