//! The `lock-order` pass: a workspace-wide deadlock lint over named
//! lock classes.
//!
//! Per function it detects lock acquisitions — zero-argument `.lock()` /
//! `.read()` / `.write()` method calls plus calls to the configured
//! helper functions (`lock_recover(&self.state)` acquires the `state`
//! class) — and tracks the source span over which each guard is held:
//! a `let`-bound guard lives until `drop(name)` or the end of its block,
//! a temporary until the end of its statement. Held-lock sets are then
//! propagated through the call graph (a call made while holding `A`
//! inherits every class the callee's transitive closure acquires), and
//! every "acquire `B` while holding `A`" pair becomes an edge `A → B` in
//! a lock-class graph. Any cycle in that graph is reported as a
//! `lock-order` finding whose witness spells out each edge's acquisition
//! chain with file:line:col sites.
//!
//! Lock classes are `(crate, canonical name)` pairs; the canonical name
//! comes from [`LintConfig::lock_class`], which maps the runtime's raw
//! field names (`slots`, `panics`, `state`) onto their protocol names
//! (`worker-slot`, `panic-list`, `barrier-state`). Same-class nesting
//! (e.g. two different worker slots) is deliberately not reported: the
//! runtime orders same-class acquisitions by core index, and modelling
//! that is the `sched` suite's job, not a static lint's.

use crate::callgraph::{CallGraph, Workspace};
use crate::config::LintConfig;
use crate::diagnostics::Finding;
use crate::tokenizer::Token;
use std::collections::{BTreeMap, BTreeSet};

/// One detected acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Crate-qualified class id (`sim:worker-slot`).
    class: String,
    /// Display name (`worker-slot`).
    display: String,
    /// Token index of the acquiring call.
    tok: usize,
    /// Token index at which the guard is released (exclusive).
    release: usize,
    line: u32,
    col: u32,
}

/// A transitive acquisition recorded in a function summary.
#[derive(Debug, Clone)]
struct SummaryAcq {
    display: String,
    /// Human steps from the summarised function down to the acquisition.
    chain: Vec<String>,
}

/// One lock-class edge with its first witness.
#[derive(Debug, Clone)]
struct Edge {
    /// Steps describing the edge: holder acquisition, then the chain to
    /// the second acquisition.
    steps: Vec<String>,
    /// Anchor span (the holder acquisition site).
    path: String,
    line: u32,
    col: u32,
}

/// Runs the pass and returns raw findings (suppression is applied by the
/// caller, per file).
pub fn run(ws: &Workspace, cg: &CallGraph, config: &LintConfig) -> Vec<Finding> {
    // Phase 1: per-function acquisitions with hold scopes.
    let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(cg.fns.len());
    for r in &cg.fns {
        let pf = &ws.files[r.file];
        let item = &pf.fns[r.item];
        if config.is_lock_helper(&item.name) {
            // The helper *is* the acquisition mechanism; its own body's
            // `.lock()` would register a meaningless class.
            acqs.push(Vec::new());
            continue;
        }
        acqs.push(item.body.map_or(Vec::new(), |(lo, hi)| {
            find_acquisitions(&pf.toks.tokens, lo, hi, &pf.crate_name, config)
        }));
    }

    // Phase 2: transitive acquire summaries (class → witness chain).
    let mut summary: Vec<BTreeMap<String, SummaryAcq>> = acqs
        .iter()
        .enumerate()
        .map(|(f, list)| {
            let r = cg.fns[f];
            let pf = &ws.files[r.file];
            let fname = &pf.fns[r.item].name;
            let mut m = BTreeMap::new();
            for a in list {
                m.entry(a.class.clone()).or_insert_with(|| SummaryAcq {
                    display: a.display.clone(),
                    chain: vec![format!(
                        "`{}` acquired at {}:{}:{} (in `{fname}`)",
                        a.display, pf.path, a.line, a.col
                    )],
                });
            }
            m
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..cg.fns.len() {
            for e in &cg.edges[f] {
                let callee: Vec<(String, SummaryAcq)> = summary[e.to]
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                for (class, sa) in callee {
                    if summary[f].contains_key(&class) {
                        continue;
                    }
                    let r = cg.fns[e.to];
                    let callee_name = &ws.files[r.file].fns[r.item].name;
                    let caller = cg.fns[f];
                    let mut chain = vec![format!(
                        "via call to `{callee_name}` at {}:{}:{}",
                        ws.files[caller.file].path, e.line, e.col
                    )];
                    chain.extend(sa.chain.iter().cloned());
                    summary[f].insert(
                        class,
                        SummaryAcq {
                            display: sa.display,
                            chain,
                        },
                    );
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 3: edges — direct nested acquisitions and held-across calls.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add_edge = |from: &Acq, to_class: &str, steps: Vec<String>, path: &str| {
        edges
            .entry((from.class.clone(), to_class.to_string()))
            .or_insert_with(|| Edge {
                steps,
                path: path.to_string(),
                line: from.line,
                col: from.col,
            });
    };
    let mut display: BTreeMap<String, String> = BTreeMap::new();
    for (f, facqs) in acqs.iter().enumerate() {
        let r = cg.fns[f];
        let pf = &ws.files[r.file];
        let fname = &pf.fns[r.item].name;
        for a in facqs {
            display.insert(a.class.clone(), a.display.clone());
        }
        let held_at = |tok: usize| -> Vec<&Acq> {
            facqs
                .iter()
                .filter(|a| a.tok < tok && tok < a.release)
                .collect()
        };
        // Nested direct acquisitions.
        for a in facqs {
            for h in held_at(a.tok) {
                if h.class == a.class {
                    continue;
                }
                add_edge(
                    h,
                    &a.class,
                    vec![
                        format!(
                            "`{}` acquired at {}:{}:{} (in `{fname}`)",
                            h.display, pf.path, h.line, h.col
                        ),
                        format!(
                            "`{}` acquired at {}:{}:{} while `{}` is held",
                            a.display, pf.path, a.line, a.col, h.display
                        ),
                    ],
                    &pf.path,
                );
            }
        }
        // Calls made while holding a lock inherit the callee's closure.
        for e in &cg.edges[f] {
            let callee_summary = &summary[e.to];
            if callee_summary.is_empty() {
                continue;
            }
            let cr = cg.fns[e.to];
            let callee_name = &ws.files[cr.file].fns[cr.item].name;
            for h in held_at(e.tok) {
                for (class, sa) in callee_summary {
                    if *class == h.class {
                        continue;
                    }
                    display.insert(class.clone(), sa.display.clone());
                    let mut steps = vec![
                        format!(
                            "`{}` acquired at {}:{}:{} (in `{fname}`)",
                            h.display, pf.path, h.line, h.col
                        ),
                        format!(
                            "call to `{callee_name}` at {}:{}:{} while `{}` is held",
                            pf.path, e.line, e.col, h.display
                        ),
                    ];
                    steps.extend(sa.chain.iter().cloned());
                    add_edge(h, class, steps, &pf.path);
                }
            }
        }
    }

    // Phase 4: cycle detection over the class graph.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for start in adj.keys().copied() {
        let Some(cycle) = find_cycle(&adj, start) else {
            continue;
        };
        let members: BTreeSet<String> = cycle.iter().map(|c| (*c).clone()).collect();
        if !reported.insert(members) {
            continue;
        }
        let name = |c: &String| display.get(c).cloned().unwrap_or_else(|| c.clone());
        let ring: Vec<String> = cycle.iter().map(|c| format!("`{}`", name(c))).collect();
        let mut witness = Vec::new();
        for w in cycle.windows(2) {
            let e = &edges[&((*w[0]).clone(), (*w[1]).clone())];
            witness.push(e.steps.join(", then "));
        }
        let anchor = &edges[&((*cycle[0]).clone(), (*cycle[1]).clone())];
        findings.push(Finding {
            lint: "lock-order".to_string(),
            path: anchor.path.clone(),
            line: anchor.line,
            col: anchor.col,
            // `cycle` is the closed path `start, …, start`, so the ring
            // already ends where it began.
            message: format!("lock-order cycle: {}", ring.join(" → ")),
            snippet: snippet_for(ws, &anchor.path, anchor.line),
            help: format!(
                "two call paths acquire these locks in opposite orders and can \
                 deadlock; witness: {}",
                witness.join("; and back: ")
            ),
        });
    }
    findings
}

/// Source line `line` of the file at `path` (for the finding snippet).
fn snippet_for(ws: &Workspace, path: &str, line: u32) -> String {
    ws.file_index(path)
        .and_then(|fi| ws.files[fi].source.lines().nth(line as usize - 1))
        .unwrap_or("")
        .to_string()
}

/// BFS from `start` back to itself; returns the node path
/// `start, ..., start` of the first cycle found.
fn find_cycle<'a>(
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
    start: &'a String,
) -> Option<Vec<&'a String>> {
    let mut parent: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue: Vec<&String> = vec![start];
    let mut qi = 0;
    while qi < queue.len() {
        let n = queue[qi];
        qi += 1;
        for &m in adj.get(n).map(Vec::as_slice).unwrap_or_default() {
            if m == start {
                // Reconstruct start → ... → n → start.
                let mut path = vec![start];
                let mut rev = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = parent[cur];
                    rev.push(cur);
                }
                rev.pop(); // drop the duplicated start
                path.extend(rev.into_iter().rev());
                path.push(start);
                return Some(path);
            }
            if !parent.contains_key(m) && m != start {
                parent.insert(m, n);
                queue.push(m);
            }
        }
    }
    None
}

/// Scans a body token range for acquisitions with hold scopes.
fn find_acquisitions(
    t: &[Token],
    lo: usize,
    hi: usize,
    crate_name: &str,
    config: &LintConfig,
) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in lo..hi {
        let Some(id) = t[i].ident() else { continue };
        let raw = if config.is_lock_helper(id)
            && !(i > 0 && (t[i - 1].is_punct('.') || t[i - 1].is_ident("fn")))
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            helper_arg_class(t, i + 1, hi)
        } else if (id == "lock" || id == "read" || id == "write")
            && i > 0
            && t[i - 1].is_punct('.')
            && crate::parser::empty_call_parens(t, i + 1)
        {
            receiver_class(t, i - 1, lo)
        } else {
            None
        };
        let Some(raw) = raw else { continue };
        let display = config.lock_class(&raw);
        let release = guard_release(t, i, lo, hi);
        out.push(Acq {
            class: format!("{crate_name}:{display}"),
            display,
            tok: i,
            release,
            line: t[i].line,
            col: t[i].col,
        });
    }
    out
}

/// The lock class named by a helper call's argument: the last ident
/// inside the parens that isn't `self` (so `lock_recover(&self.state)`
/// and `lock_recover(&slots[0])` give `state`/`slots`).
fn helper_arg_class(t: &[Token], open: usize, hi: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut last = None;
    for tok in &t[open..hi] {
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if let Some(id) = tok.ident() {
            if id != "self" && id != "mut" {
                last = Some(id.to_string());
            }
        }
    }
    last
}

/// The lock class of a `.lock()` receiver: the field/binding ident just
/// before the dot (skipping one `[...]` index group).
fn receiver_class(t: &[Token], dot: usize, lo: usize) -> Option<String> {
    let mut k = dot.checked_sub(1)?;
    if t[k].is_punct(']') {
        let mut depth = 0usize;
        loop {
            if t[k].is_punct(']') {
                depth += 1;
            } else if t[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == lo {
                return None;
            }
            k -= 1;
        }
        k = k.checked_sub(1)?;
    }
    t[k].ident().map(str::to_string)
}

/// Exclusive token index at which the guard created at `i` is released.
fn guard_release(t: &[Token], i: usize, lo: usize, hi: usize) -> usize {
    // Find the statement start and check for a `let` binding.
    let mut s = i;
    while s > lo {
        if t[s - 1].is_punct(';') || t[s - 1].is_punct('{') || t[s - 1].is_punct('}') {
            break;
        }
        s -= 1;
    }
    let bound = (s..i)
        .find(|&k| t[k].is_ident("let"))
        .and_then(|k| (k + 1..i).find_map(|m| t[m].ident().filter(|&id| id != "mut")));
    match bound {
        Some(name) if name != "_" => {
            // Held until `drop(name)` or the end of the enclosing block.
            let mut depth = 0i32;
            for k in i..hi {
                if t[k].is_punct('{') {
                    depth += 1;
                } else if t[k].is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                } else if t[k].is_ident("drop")
                    && t.get(k + 1).is_some_and(|x| x.is_punct('('))
                    && t.get(k + 2).is_some_and(|x| x.is_ident(name))
                    && t.get(k + 3).is_some_and(|x| x.is_punct(')'))
                {
                    return k;
                }
            }
            hi
        }
        _ => {
            // Temporary: held to the end of the statement (the next `;`
            // at this level, the end of a statement-level block
            // expression, or the enclosing close brace).
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < hi {
                if t[k].is_punct('(') || t[k].is_punct('{') || t[k].is_punct('[') {
                    depth += 1;
                } else if t[k].is_punct(')') || t[k].is_punct(']') {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                } else if t[k].is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                    if depth == 0 {
                        // End of a `match`/`if` block at statement level,
                        // unless the expression continues.
                        let cont = t.get(k + 1).is_some_and(|x| {
                            x.is_ident("else") || x.is_punct('.') || x.is_punct('?')
                        });
                        if !cont {
                            return k + 1;
                        }
                    }
                } else if depth == 0 && t[k].is_punct(';') {
                    return k;
                }
                k += 1;
            }
            hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
                .collect(),
        );
        let cg = CallGraph::build(&ws);
        run(&ws, &cg, &LintConfig::default())
    }

    #[test]
    fn ab_ba_within_one_file_is_a_cycle_with_both_sites() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn forward(a: &M, b: &M) {\n\
                 let _ga = a_lock.lock();\n\
                 let _gb = b_lock.lock();\n\
             }\n\
             fn backward(a: &M, b: &M) {\n\
                 let _gb = b_lock.lock();\n\
                 let _ga = a_lock.lock();\n\
             }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.lint, "lock-order");
        assert!(f.message.contains("a_lock") && f.message.contains("b_lock"));
        assert!(f.help.contains("crates/sim/src/x.rs:2:"), "{}", f.help);
        assert!(f.help.contains("crates/sim/src/x.rs:6:"), "{}", f.help);
    }

    #[test]
    fn consistent_order_is_clean() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn one(a: &M, b: &M) { let _ga = a_lock.lock(); let _gb = b_lock.lock(); }\n\
             fn two(a: &M, b: &M) { let _ga = a_lock.lock(); let _gb = b_lock.lock(); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cycle_through_a_callee_is_found() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn outer() { let _g = a_lock.lock(); helper(); }\n\
             fn helper() { let _g = b_lock.lock(); }\n\
             fn other() { let _g = b_lock.lock(); let _g2 = a_lock.lock(); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].help.contains("call to `helper`"),
            "{}",
            findings[0].help
        );
    }

    #[test]
    fn temporary_guards_release_at_the_statement_end() {
        // The temporary guard from the first statement is gone by the
        // time the second lock is taken: no edge, no cycle.
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn one(a: &M, b: &M) { a_lock.lock(); let _gb = b_lock.lock(); }\n\
             fn two(a: &M, b: &M) { b_lock.lock(); let _ga = a_lock.lock(); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn drop_ends_the_held_scope() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn one(a: &M, b: &M) { let g = a_lock.lock(); drop(g); let _gb = b_lock.lock(); }\n\
             fn two(a: &M, b: &M) { let g = b_lock.lock(); drop(g); let _ga = a_lock.lock(); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn helper_calls_and_aliases_name_the_runtime_classes() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn one() { let mut g = lock_recover(&slots[0]); lock_recover(&panics).push(1); }\n\
             fn two() { let mut g = lock_recover(&panics); lock_recover(&slots[1]).take(); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("worker-slot"));
        assert!(findings[0].message.contains("panic-list"));
    }

    #[test]
    fn same_class_nesting_is_not_reported() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn one() { let _a = lock_recover(&slots[0]); let _b = lock_recover(&slots[1]); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn rwlock_read_write_participate() {
        let findings = run_on(&[(
            "crates/sim/src/x.rs",
            "fn one() { let _r = table.read(); let _g = journal.lock(); }\n\
             fn two() { let _g = journal.lock(); let _w = table.write(); }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("table"));
        assert!(findings[0].message.contains("journal"));
    }
}
