//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint pass: identifiers and punctuation with line/column spans,
//! comments and string/char literals correctly skipped (so `"HashMap"`
//! in a string or a commented-out `thread::spawn` never fires a lint),
//! and line comments preserved for `// analyze::allow(...)` directives.
//!
//! Deliberately *not* a full lexer: numeric literals are consumed but not
//! emitted, and no keyword table exists — the lints match identifier
//! sequences, which is robust against formatting but (by design) not
//! against `type M = HashMap<...>` aliasing games. This is a repo lint,
//! not an adversarial sandbox.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
}

/// The token payload: the lints only need identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `spawn`, ...).
    Ident(String),
    /// A single punctuation byte (`<`, `>`, `:`, `.`, `#`, ...).
    Punct(char),
}

/// A line comment, kept for `analyze::allow` directive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text after the `//` (or `//!`, `///`) marker.
    pub text: String,
}

/// Tokenized source: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Tokenized {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `source`. Never fails: unterminated constructs consume the
/// rest of the file (the compiler is the arbiter of validity; the linter
/// only has to stay in sync on code that *does* compile).
pub fn tokenize(source: &str) -> Tokenized {
    let b = source.as_bytes();
    let mut out = Tokenized::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advances past `n` bytes, tracking line/col.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Line comment (//, ///, //!).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start_line = line;
            let mut j = i + 2;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text: source[i + 2..j].to_string(),
            });
            bump!(j - i);
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            bump!(j - i);
            continue;
        }
        // Raw string (r"...", r#"..."#) and raw byte string (br#"..."#).
        let raw_start = if c == b'r' && matches!(b.get(i + 1), Some(b'"') | Some(b'#')) {
            Some(i + 1)
        } else if c == b'b'
            && b.get(i + 1) == Some(&b'r')
            && matches!(b.get(i + 2), Some(b'"') | Some(b'#'))
        {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                j += 1;
                // Scan for `"` followed by `hashes` hash marks.
                'raw: while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && b.get(k) == Some(&b'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                bump!(j - i);
                continue;
            }
            // `r` not starting a raw string (e.g. ident `r#foo`): fall
            // through to identifier handling.
        }
        // String / byte-string literal.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"')) {
            let mut j = i + if c == b'b' { 2 } else { 1 };
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            bump!(j - i);
            continue;
        }
        // Byte char literal (`b'x'`, `b'\''`): the prefix must be
        // consumed here or it would leak a stray `b` identifier.
        if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            bump!(j - i);
            continue;
        }
        // Char literal vs lifetime. `'a` (no closing quote nearby) is a
        // lifetime; `'x'` / `'\n'` are char literals.
        if c == b'\'' {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                bump!(j - i);
            } else {
                // Lifetime: skip the quote; the name lexes as an ident.
                bump!(1);
            }
            continue;
        }
        // Identifier.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            let (tl, tc) = (line, col);
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(source[start..j].to_string()),
                line: tl,
                col: tc,
            });
            bump!(j - i);
            continue;
        }
        // Numeric literal: consumed, not emitted. A trailing `.` is left
        // alone unless followed by a digit (so `0..n` keeps its dots and
        // `1.5` doesn't).
        if c.is_ascii_digit() {
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            }
            bump!(j - i);
            continue;
        }
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!(1);
            continue;
        }
        // Everything else: single punctuation byte.
        out.tokens.push(Token {
            kind: TokenKind::Punct(c as char),
            line,
            col,
        });
        bump!(1);
    }
    out
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            TokenKind::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation byte.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
            // HashMap in a comment
            /* thread::spawn /* nested */ still a comment */
            let s = "HashMap::new()";
            let r = r#"Instant"#;
            let c = 'x';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let t = tokenize("let a = 1;\n// analyze::allow(x): y\nlet b = 2;");
        assert_eq!(t.comments.len(), 1);
        assert_eq!(t.comments[0].line, 2);
        assert_eq!(t.comments[0].text, " analyze::allow(x): y");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn spans_are_one_based() {
        let t = tokenize("ab cd\n  ef");
        assert_eq!((t.tokens[0].line, t.tokens[0].col), (1, 1));
        assert_eq!((t.tokens[1].line, t.tokens[1].col), (1, 4));
        assert_eq!((t.tokens[2].line, t.tokens[2].col), (2, 3));
    }

    #[test]
    fn multi_hash_raw_strings_are_skipped_whole() {
        // The inner `"#` must not terminate an `r##` string.
        let src = r####"let s = r##"HashMap "# Instant"##; fn tail() {}"####;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"tail".to_string()), "lexing resumes after");
    }

    #[test]
    fn byte_strings_and_byte_chars_are_skipped() {
        let src = "let s = b\"HashMap\"; let r = br#\"Instant\"#; let c = b'x'; fn tail() {}";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"x".to_string()), "byte-char body skipped");
        assert!(!ids.contains(&"b".to_string()), "no stray prefix ident");
        assert!(ids.contains(&"tail".to_string()));
    }

    #[test]
    fn escaped_quotes_in_char_literals_stay_inside_them() {
        // If `'\''` or `b'\''` mis-lexed, the quote would open a
        // phantom literal and swallow `tail`.
        let src = "let q = '\\''; let bq = b'\\''; let bs = '\\\\'; fn tail() {}";
        let t = tokenize(src);
        let ids: Vec<_> = t.tokens.iter().filter_map(Token::ident).collect();
        assert!(ids.contains(&"tail"), "lexing resumes after the literals");
        assert!(
            t.tokens.iter().all(|tk| !tk.is_punct('\'')),
            "no quote leaks into the token stream"
        );
    }

    #[test]
    fn char_literal_holding_a_double_quote_does_not_open_a_string() {
        let ids = idents("let q = '\"'; fn tail() { let s = \"Instant\"; }");
        assert!(ids.contains(&"tail".to_string()));
        assert!(
            !ids.contains(&"Instant".to_string()),
            "string still skipped"
        );
    }

    #[test]
    fn ranges_survive_number_scanning() {
        let t = tokenize("for i in 0..64 { a[i] = 1.5; }");
        let dots: usize = t.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` of the range is preserved");
    }
}
