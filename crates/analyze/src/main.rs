//! `califorms-analyze` — CI entry point for the workspace determinism
//! linter and the concurrency model checker.
//!
//! ```text
//! califorms-analyze --check [--root DIR] [--json PATH]   # lint pass
//! califorms-analyze --fix [--root DIR]                   # auto-fixes
//! califorms-analyze --sched [--workers N] [--quanta N] [--bound N]
//!                    [--weave-schedules N] [--drain-schedules N]
//! ```
//!
//! `--check` exits non-zero iff any lint finding survives suppression;
//! `--json` additionally writes the machine-readable report for the CI
//! artifact. `--fix` applies the mechanical fixes (currently: inserting
//! `#![forbid(unsafe_code)]` where `missing-forbid-unsafe` fires) and
//! reports the rewritten files. `--sched` runs the exhaustive
//! protocol-model pass — the correct models must explore cleanly and
//! every broken variant must be caught — plus a seeded-random
//! large-schedule sweep; `--weave-schedules N` / `--drain-schedules N`
//! additionally assert the exact schedule count of the exhaustive
//! weave / checkpoint-drain runs (drift detectors for the models and
//! explorer both).

#![forbid(unsafe_code)]

use califorms_analyze::config::LintConfig;
use califorms_analyze::fix::apply_fixes;
use califorms_analyze::sched::{
    check_barrier, check_drain, check_weave, check_worker_slots, models, BarrierVariant,
    DrainVariant, SlotVariant, WeaveVariant,
};
use califorms_analyze::workspace::scan_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    check: bool,
    fix: bool,
    sched: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    workers: usize,
    quanta: usize,
    bound: usize,
    weave_schedules: Option<usize>,
    drain_schedules: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        fix: false,
        sched: false,
        root: PathBuf::from("."),
        json: None,
        workers: 2,
        quanta: 2,
        bound: 2,
        weave_schedules: None,
        drain_schedules: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--check" => args.check = true,
            "--fix" => args.fix = true,
            "--sched" => args.sched = true,
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--quanta" => args.quanta = value("--quanta")?.parse().map_err(|e| format!("{e}"))?,
            "--bound" => args.bound = value("--bound")?.parse().map_err(|e| format!("{e}"))?,
            "--weave-schedules" => {
                args.weave_schedules = Some(
                    value("--weave-schedules")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--drain-schedules" => {
                args.drain_schedules = Some(
                    value("--drain-schedules")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.check && !args.sched && !args.fix {
        return Err("pass --check, --fix and/or --sched".to_string());
    }
    Ok(args)
}

fn run_fix(args: &Args) -> Result<(), String> {
    let report = scan_workspace(&args.root, &LintConfig::default())
        .map_err(|e| format!("scan failed under {}: {e}", args.root.display()))?;
    let fixed = apply_fixes(&args.root, &report).map_err(|e| format!("applying fixes: {e}"))?;
    if fixed.is_empty() {
        println!("fix: nothing to do");
    } else {
        for path in &fixed {
            println!("fixed {path}");
        }
    }
    Ok(())
}

fn run_check(args: &Args) -> Result<bool, String> {
    let report = scan_workspace(&args.root, &LintConfig::default())
        .map_err(|e| format!("scan failed under {}: {e}", args.root.display()))?;
    print!("{}", report.render_human());
    if let Some(path) = &args.json {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("json report: {}", path.display());
    }
    Ok(report.clean)
}

fn run_sched(args: &Args) -> bool {
    let (w, q, b) = (args.workers, args.quanta, args.bound);
    let max = 200_000;
    let mut ok = true;
    let mut verdict = |name: &str, pass: bool, detail: String| {
        println!("{} {name}: {detail}", if pass { "ok  " } else { "FAIL" });
        ok &= pass;
    };

    let r = check_barrier(w, q, BarrierVariant::Correct, b, max);
    verdict(
        "barrier/correct",
        r.failure.is_none() && r.complete,
        format!("{} schedules, complete={}", r.schedules_run, r.complete),
    );
    let r = check_barrier(w, 1, BarrierVariant::NotifyOneRelease, b, max);
    verdict(
        "barrier/notify-one (must fail)",
        r.failure.is_some(),
        r.failure
            .as_ref()
            .map_or("no failure found".to_string(), |f| {
                format!("caught {} after {} schedules", f.kind, r.schedules_run)
            }),
    );
    let r = check_barrier(w, 1, BarrierVariant::UnlockedWaitGap, b.max(1), max);
    verdict(
        "barrier/unlocked-gap (must fail)",
        r.failure.is_some(),
        r.failure
            .as_ref()
            .map_or("no failure found".to_string(), |f| {
                format!("caught {} after {} schedules", f.kind, r.schedules_run)
            }),
    );
    let r = check_worker_slots(w, q, SlotVariant::Correct, b, max);
    verdict(
        "slots/correct",
        r.failure.is_none() && r.complete,
        format!("{} schedules, complete={}", r.schedules_run, r.complete),
    );
    let r = check_worker_slots(w, 1, SlotVariant::DoneBeforeReturn, b.max(1), max);
    verdict(
        "slots/done-before-return (must fail)",
        r.failure.is_some(),
        r.failure
            .as_ref()
            .map_or("no failure found".to_string(), |f| {
                format!("caught {} after {} schedules", f.kind, r.schedules_run)
            }),
    );
    let r = check_weave(w, 1, WeaveVariant::Correct, b, max);
    let weave_count_ok = args
        .weave_schedules
        .is_none_or(|expect| r.schedules_run == expect);
    verdict(
        "weave/correct",
        r.failure.is_none() && r.complete && weave_count_ok,
        format!(
            "{} schedules, complete={}{}",
            r.schedules_run,
            r.complete,
            args.weave_schedules
                .map_or(String::new(), |e| { format!(" (expected exactly {e})") })
        ),
    );
    let r = check_weave(w, 1, WeaveVariant::CommitBeforeCheck, b, max);
    verdict(
        "weave/commit-before-check (must fail)",
        r.failure.is_some(),
        r.failure
            .as_ref()
            .map_or("no failure found".to_string(), |f| {
                format!("caught {} after {} schedules", f.kind, r.schedules_run)
            }),
    );
    let r = check_drain(w, q, 1, DrainVariant::Correct, b, max);
    let drain_count_ok = args
        .drain_schedules
        .is_none_or(|expect| r.schedules_run == expect);
    verdict(
        "drain/correct",
        r.failure.is_none() && r.complete && drain_count_ok,
        format!(
            "{} schedules, complete={}{}",
            r.schedules_run,
            r.complete,
            args.drain_schedules
                .map_or(String::new(), |e| { format!(" (expected exactly {e})") })
        ),
    );
    let r = check_drain(w, 1, 1, DrainVariant::SnapshotBeforeDrain, b, max);
    verdict(
        "drain/snapshot-before-drain (must fail)",
        r.failure.is_some(),
        r.failure
            .as_ref()
            .map_or("no failure found".to_string(), |f| {
                format!("caught {} after {} schedules", f.kind, r.schedules_run)
            }),
    );
    let r = models::random_sweep(w, q, 0xCA11_F012, 200);
    verdict(
        "random-sweep/correct",
        r.failure.is_none(),
        format!("{} random schedules clean", r.schedules_run),
    );
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("califorms-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let mut ok = true;
    if args.fix {
        if let Err(e) = run_fix(&args) {
            eprintln!("califorms-analyze: {e}");
            return ExitCode::from(2);
        }
    }
    if args.check {
        match run_check(&args) {
            Ok(clean) => ok &= clean,
            Err(e) => {
                eprintln!("califorms-analyze: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.sched {
        ok &= run_sched(&args);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
