//! Hot-path reachability lints.
//!
//! PR 6's `hot-path-unwrap` only fired inside functions *literally
//! named* in [`LintConfig::hot_paths`]; anything reached through one
//! call of indirection was invisible. This pass computes the set of
//! functions reachable from those roots over the workspace call graph
//! and scans every reachable body in a result-bearing crate for:
//!
//! * `hot-path-unwrap` — bare `.unwrap()` / `.expect(...)`: a panic in
//!   a worker tears down the deterministic quantum protocol;
//! * `hot-path-alloc` — `Vec::new` / `Box::new` / `vec!` / `format!` /
//!   `.to_string()` / `.collect()`: allocation on the per-quantum path
//!   is both a throughput tax and a source of allocator-lock contention
//!   across workers;
//! * `hot-path-blocking` — `println!`-family macros and file I/O: a
//!   blocked worker stalls the whole quantum barrier.
//!
//! Every finding's help carries the reachability chain from a root
//! (`worker_loop → run_task_caught → panic_message`), so the reader can
//! see *why* the function is hot. Suppression is the ordinary
//! `// analyze::allow(<lint>): <reason>` directive, applied by the
//! caller per file.

use crate::callgraph::{CallGraph, Workspace};
use crate::config::LintConfig;
use crate::diagnostics::Finding;
use crate::tokenizer::Token;

/// Runs the pass and returns raw findings (unsuppressed).
pub fn run(ws: &Workspace, cg: &CallGraph, config: &LintConfig) -> Vec<Finding> {
    let mut roots = Vec::new();
    for hp in &config.hot_paths {
        let Some(fi) = ws.file_index(hp.file) else {
            continue;
        };
        for (ii, item) in ws.files[fi].fns.iter().enumerate() {
            if item.name == hp.function {
                if let Some(flat) = cg.flat(fi, ii) {
                    roots.push(flat);
                }
            }
        }
    }
    let reach = cg.reachable(&roots);
    let mut findings = Vec::new();
    for &f in reach.keys() {
        let r = cg.fns[f];
        let pf = &ws.files[r.file];
        if !config.is_result_bearing(&pf.path) {
            continue;
        }
        let Some((lo, hi)) = pf.fns[r.item].body else {
            continue;
        };
        let chain = cg.chain(ws, &reach, f);
        let t = &pf.toks.tokens;
        for i in lo..hi {
            let Some(site) = classify(t, i) else { continue };
            findings.push(Finding {
                lint: site.lint.to_string(),
                path: pf.path.clone(),
                line: t[i].line,
                col: t[i].col,
                message: format!("{} on the hot path", site.what),
                snippet: pf
                    .source
                    .lines()
                    .nth(t[i].line as usize - 1)
                    .unwrap_or("")
                    .to_string(),
                help: format!("reachable from a worker root: {chain}; {}", site.remedy),
            });
        }
    }
    findings
}

/// A classified hot-path violation at one token.
struct Site {
    lint: &'static str,
    what: String,
    remedy: &'static str,
}

/// Macro names that are blocking console I/O.
const BLOCKING_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// `fs::` functions and file types whose constructors hit the disk.
const FILE_CALLS: &[&str] = &["open", "create", "create_new", "read_to_string", "write"];

/// Classifies the token at `i` as a hot-path violation, if it is one.
fn classify(t: &[Token], i: usize) -> Option<Site> {
    let id = t[i].ident()?;
    let prev_dot = i > 0 && t[i - 1].is_punct('.');
    let next_bang = t.get(i + 1).is_some_and(|x| x.is_punct('!'));
    let next_call = t.get(i + 1).is_some_and(|x| x.is_punct('('))
        || (t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_punct('<')));
    let path_prefix = |name: &str| {
        i >= 2
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && i >= 3
            && t[i - 3].is_ident(name)
    };
    // hot-path-unwrap: `.unwrap()` / `.expect(...)`.
    if prev_dot && (id == "unwrap" || id == "expect") && next_call {
        return Some(Site {
            lint: "hot-path-unwrap",
            what: format!("`{id}()`"),
            remedy: "a panic here tears down the worker protocol; return the error \
                     or use a checked accessor",
        });
    }
    // hot-path-alloc.
    if id == "new" && next_call && (path_prefix("Vec") || path_prefix("Box")) {
        let owner = if path_prefix("Vec") { "Vec" } else { "Box" };
        return Some(Site {
            lint: "hot-path-alloc",
            what: format!("allocation (`{owner}::new`)"),
            remedy: "hoist the allocation out of the per-quantum path or reuse a \
                     preallocated buffer",
        });
    }
    if next_bang && (id == "format" || id == "vec") {
        return Some(Site {
            lint: "hot-path-alloc",
            what: format!("allocation (`{id}!`)"),
            remedy: "hoist the allocation out of the per-quantum path or reuse a \
                     preallocated buffer",
        });
    }
    if prev_dot && (id == "to_string" || id == "to_owned" || id == "collect") && next_call {
        return Some(Site {
            lint: "hot-path-alloc",
            what: format!("allocation (`.{id}()`)"),
            remedy: "hoist the allocation out of the per-quantum path or reuse a \
                     preallocated buffer",
        });
    }
    // hot-path-blocking.
    if next_bang && BLOCKING_MACROS.contains(&id) {
        return Some(Site {
            lint: "hot-path-blocking",
            what: format!("blocking console I/O (`{id}!`)"),
            remedy: "route output through the telemetry recorder instead of \
                     blocking a worker on the console lock",
        });
    }
    if id == "File" && t.get(i + 1).is_some_and(|x| x.is_punct(':')) {
        let m = t.get(i + 3).and_then(Token::ident);
        if m.is_some_and(|m| FILE_CALLS.contains(&m)) {
            return Some(Site {
                lint: "hot-path-blocking",
                what: "file I/O (`File::…`)".to_string(),
                remedy: "perform file I/O outside the worker loop",
            });
        }
    }
    if next_call && FILE_CALLS.contains(&id) && path_prefix("fs") {
        return Some(Site {
            lint: "hot-path-blocking",
            what: format!("file I/O (`fs::{id}`)"),
            remedy: "perform file I/O outside the worker loop",
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run_on(src: &str) -> Vec<Finding> {
        // Place the hot root in multicore.rs so the default config's
        // `worker_loop` root matches.
        let ws = Workspace::from_sources(vec![(
            "crates/sim/src/multicore.rs".to_string(),
            src.to_string(),
        )]);
        let cg = CallGraph::build(&ws);
        run(&ws, &cg, &LintConfig::default())
    }

    #[test]
    fn unwrap_behind_one_call_of_indirection_is_caught() {
        let findings = run_on(
            "fn worker_loop() { helper(); }\n\
             fn helper() { thing.unwrap(); }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "hot-path-unwrap");
        assert_eq!((findings[0].line, findings[0].col), (2, 21));
        assert!(findings[0].help.contains("worker_loop → helper"));
    }

    #[test]
    fn alloc_and_blocking_sites_are_classified() {
        let findings = run_on(
            "fn worker_loop() {\n\
                 let v = Vec::new();\n\
                 let s = x.to_string();\n\
                 println!(\"hi\");\n\
                 let it: Vec<u32> = xs.iter().collect();\n\
             }",
        );
        let lints: Vec<&str> = findings.iter().map(|f| f.lint.as_str()).collect();
        assert_eq!(
            lints,
            vec![
                "hot-path-alloc",
                "hot-path-alloc",
                "hot-path-blocking",
                "hot-path-alloc"
            ],
            "{findings:?}"
        );
    }

    #[test]
    fn cold_functions_are_not_scanned() {
        let findings = run_on(
            "fn cold() { thing.unwrap(); let v = Vec::new(); }\n\
             fn worker_loop() { }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_result_bearing_crates_are_exempt() {
        let ws = Workspace::from_sources(vec![
            (
                "crates/sim/src/multicore.rs".to_string(),
                "fn worker_loop() { bench_hook(); }".to_string(),
            ),
            (
                "crates/bench/src/lib.rs".to_string(),
                "fn bench_hook() { thing.unwrap(); }".to_string(),
            ),
        ]);
        let cg = CallGraph::build(&ws);
        let findings = run(&ws, &cg, &LintConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
    }
}
