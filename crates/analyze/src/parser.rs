//! A lightweight item-level parser on top of the [`crate::tokenizer`]:
//! just enough syntactic structure for whole-workspace analysis.
//!
//! Per file it recovers:
//!
//! * every `fn` item — name, enclosing `impl` owner (best effort), the
//!   token range of its body, and whether it lives under `#[cfg(test)]`;
//! * the call expressions inside each body (direct calls, method calls,
//!   `Path::assoc` calls), which feed the workspace call graph;
//! * the token ranges of `#[cfg(test)] mod` bodies, so every workspace
//!   pass can skip test-only code uniformly.
//!
//! Like the tokenizer, this is deliberately *not* a full parser: closures
//! are scanned as part of their enclosing function, nested `fn` items
//! inside bodies are attributed to the outer item, and exotic headers
//! (`impl dyn Trait`, fully-qualified `<A as B>::c` calls) degrade to
//! "no owner"/"unknown qualifier" rather than failing. The passes built
//! on top are tuned to under-approximate, never to crash.

use crate::tokenizer::{tokenize, Token, Tokenized};

/// How a call expression names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(...)` — a free-function call.
    Direct,
    /// `recv.method(...)` — a method call on some receiver.
    Method,
    /// `Owner::assoc(...)` — a path call; the qualifier is the segment
    /// directly before the final `::` (`None` when it isn't an ident,
    /// e.g. `<A as B>::c`).
    Path(Option<String>),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// How the callee is named.
    pub kind: CallKind,
    /// The callee name (the ident before the `(`).
    pub name: String,
    /// Token index of the callee-name ident.
    pub tok: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// 1-based source column of the callee name.
    pub col: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The name after `fn`.
    pub name: String,
    /// Enclosing `impl` type name, if any (`impl Foo`, `impl T for Foo`
    /// both record `Foo`).
    pub owner: Option<String>,
    /// Token range of the body, exclusive of the braces. `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the name ident.
    pub line: u32,
    /// 1-based column of the name ident.
    pub col: u32,
    /// Whether the item is test-only (`#[cfg(test)]` module or attr).
    pub in_test: bool,
    /// Call expressions inside the body, in token order.
    pub calls: Vec<CallSite>,
}

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The crate the file belongs to (`crates/<name>/src/...`).
    pub crate_name: String,
    /// The raw source (for snippets).
    pub source: String,
    /// The token stream and comment side channel.
    pub toks: Tokenized,
    /// Every `fn` item, in token order.
    pub fns: Vec<FnItem>,
    /// Token ranges (exclusive of braces) of `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Whether token index `i` falls inside a `#[cfg(test)]` module.
    pub fn in_test_range(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "in", "as", "loop", "move", "let", "else",
    "break", "continue", "where", "unsafe", "impl", "dyn", "ref", "mut",
];

/// What an open brace belongs to, for owner/test tracking.
enum Scope {
    /// `impl <owner> { ... }` (owner best-effort).
    Impl(Option<String>),
    /// A `#[cfg(test)] mod` body; records the open-brace token index.
    TestMod(usize),
    /// Anything else (plain `mod`, expression braces at item level).
    Other,
}

/// Parses one file into items. `path` must be repo-relative with
/// forward slashes; the crate name is its `crates/<name>` segment.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let toks = tokenize(source);
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();
    let mut pf = ParsedFile {
        path: path.to_string(),
        crate_name,
        source: source.to_string(),
        toks,
        fns: Vec::new(),
        test_ranges: Vec::new(),
    };
    let t = &pf.toks.tokens;
    let mut fns = Vec::new();
    let mut test_ranges = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < t.len() {
        // Attributes: `#[...]` may mark the next item `#[cfg(test)]`;
        // inner `#![...]` attributes are skipped without effect.
        if t[i].is_punct('#') {
            let mut j = i + 1;
            let inner = t.get(j).is_some_and(|x| x.is_punct('!'));
            if inner {
                j += 1;
            }
            if t.get(j).is_some_and(|x| x.is_punct('[')) {
                let (end, mut saw_cfg, mut saw_test) = (skip_group(t, j, '[', ']'), false, false);
                for tok in &t[j..end.min(t.len())] {
                    saw_cfg |= tok.is_ident("cfg");
                    saw_test |= tok.is_ident("test");
                }
                if !inner && saw_cfg && saw_test {
                    pending_cfg_test = true;
                }
                i = end;
                continue;
            }
        }
        if t[i].is_ident("impl") {
            if let Some(open) = (i + 1..t.len()).find(|&j| t[j].is_punct('{') || t[j].is_punct(';'))
            {
                if t[open].is_punct('{') {
                    scopes.push(Scope::Impl(impl_owner(t, i, open)));
                    pending_cfg_test = false;
                    i = open + 1;
                    continue;
                }
            }
        }
        if t[i].is_ident("mod") {
            if let Some(open) = (i + 1..t.len()).find(|&j| t[j].is_punct('{') || t[j].is_punct(';'))
            {
                if t[open].is_punct('{') {
                    scopes.push(if pending_cfg_test {
                        Scope::TestMod(open + 1)
                    } else {
                        Scope::Other
                    });
                    pending_cfg_test = false;
                    i = open + 1;
                    continue;
                }
            }
        }
        if t[i].is_ident("fn") {
            if let Some(name_tok) = t.get(i + 1).filter(|x| x.ident().is_some()) {
                let name = name_tok.ident().unwrap_or_default().to_string();
                let owner = scopes.iter().rev().find_map(|s| match s {
                    Scope::Impl(o) => o.clone(),
                    _ => None,
                });
                let in_test =
                    pending_cfg_test || scopes.iter().any(|s| matches!(s, Scope::TestMod(_)));
                // Find the body open brace (or `;` for a bodyless decl),
                // skipping the argument parens and any generics.
                let mut j = i + 2;
                let mut body = None;
                while j < t.len() {
                    if t[j].is_punct('(') {
                        j = skip_group(t, j, '(', ')');
                    } else if t[j].is_punct('<') {
                        j = skip_angles(t, j);
                    } else if t[j].is_punct('{') {
                        let close = skip_group(t, j, '{', '}');
                        body = Some((j + 1, close.saturating_sub(1)));
                        j = close;
                        break;
                    } else if t[j].is_punct(';') {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                let calls = body.map_or(Vec::new(), |(lo, hi)| extract_calls(t, lo, hi));
                fns.push(FnItem {
                    name,
                    owner,
                    body,
                    line: name_tok.line,
                    col: name_tok.col,
                    in_test,
                    calls,
                });
                pending_cfg_test = false;
                i = j;
                continue;
            }
        }
        if t[i].is_punct('{') {
            scopes.push(Scope::Other);
        } else if t[i].is_punct('}') {
            if let Some(Scope::TestMod(open)) = scopes.pop() {
                test_ranges.push((open, i));
            }
        }
        if t[i].ident().is_some() {
            pending_cfg_test = false;
        }
        i += 1;
    }
    pf.fns = fns;
    pf.test_ranges = test_ranges;
    pf
}

/// Whether the call parens opened at token `open` are literally empty in
/// the source. The tokenizer does not emit numeric literals, so
/// `.read(7)` and `.read()` have identical token streams — the spans
/// disambiguate: truly empty parens are adjacent bytes on one line.
pub fn empty_call_parens(t: &[Token], open: usize) -> bool {
    let (Some(o), Some(c)) = (t.get(open), t.get(open + 1)) else {
        return false;
    };
    o.is_punct('(') && c.is_punct(')') && o.line == c.line && c.col == o.col + 1
}

/// Index just past the group opened by the `open` punct at `at`.
fn skip_group(t: &[Token], at: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = at;
    while j < t.len() {
        if t[j].is_punct(open) {
            depth += 1;
        } else if t[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// Index just past the `<...>` group opened at `at` (a `>` right after a
/// `-` is an arrow, not a close).
fn skip_angles(t: &[Token], at: usize) -> usize {
    let mut depth = 0usize;
    let mut j = at;
    while j < t.len() {
        if t[j].is_punct('<') {
            depth += 1;
        } else if t[j].is_punct('>') && !(j > 0 && t[j - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// Best-effort `impl` owner: the last path ident of the implemented-on
/// type (`impl Foo<T>`, `impl Trait for a::b::Foo` both give `Foo`).
fn impl_owner(t: &[Token], start: usize, open: usize) -> Option<String> {
    let mut j = start + 1;
    if t.get(j).is_some_and(|x| x.is_punct('<')) {
        j = skip_angles(t, j);
    }
    // If a top-level `for` splits trait from type, the type starts after it.
    let mut k = j;
    let mut ty_start = j;
    while k < open {
        if t[k].is_punct('<') {
            k = skip_angles(t, k);
            continue;
        }
        if t[k].is_ident("for") {
            ty_start = k + 1;
        }
        k += 1;
    }
    let mut owner = None;
    let mut k = ty_start;
    while k < open {
        if t[k].is_punct('<') {
            k = skip_angles(t, k);
            continue;
        }
        if t[k].is_ident("where") {
            break;
        }
        if let Some(id) = t[k].ident() {
            if id != "dyn" && id != "mut" {
                owner = Some(id.to_string());
            }
        }
        k += 1;
    }
    owner
}

/// Call expressions in the body token range `[lo, hi)`.
fn extract_calls(t: &[Token], lo: usize, hi: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in lo..hi {
        let Some(name) = t[i].ident() else { continue };
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `name(` or turbofish `name::<...>(`.
        let after = if t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_punct('<'))
        {
            skip_angles(t, i + 3)
        } else {
            i + 1
        };
        if after >= hi || !t[after].is_punct('(') {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &t[p]);
        let kind = match prev {
            Some(p) if p.is_punct('.') => CallKind::Method,
            Some(p) if p.is_punct(':') && i >= 2 && t[i - 2].is_punct(':') => {
                let q = i
                    .checked_sub(3)
                    .and_then(|p| t[p].ident())
                    .map(str::to_string);
                CallKind::Path(q)
            }
            Some(p) if p.is_ident("fn") => continue, // nested definition
            _ => CallKind::Direct,
        };
        out.push(CallSite {
            kind,
            name: name.to_string(),
            tok: i,
            line: t[i].line,
            col: t[i].col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/sim/src/x.rs", src)
    }

    #[test]
    fn free_fns_and_methods_carry_owners() {
        let pf = parse(
            "fn free() {}\n\
             struct Foo;\n\
             impl Foo { fn method(&self) {} }\n\
             impl std::fmt::Display for Foo { fn fmt(&self) {} }",
        );
        let names: Vec<(String, Option<String>)> = pf
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".to_string(), None),
                ("method".to_string(), Some("Foo".to_string())),
                ("fmt".to_string(), Some("Foo".to_string())),
            ]
        );
        assert_eq!(pf.crate_name, "sim");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type_not_the_params() {
        let pf = parse("impl<T: Clone> Stack<T> { fn push2(&mut self, v: T) {} }");
        assert_eq!(pf.fns[0].owner.as_deref(), Some("Stack"));
    }

    #[test]
    fn calls_are_classified() {
        let pf = parse(
            "fn f(x: &X) {\n\
                helper(1);\n\
                x.method(2);\n\
                Foo::assoc(3);\n\
                turbo::<u64>(4);\n\
             }",
        );
        let calls: Vec<(String, CallKind)> = pf.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.kind.clone()))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("helper".to_string(), CallKind::Direct),
                ("method".to_string(), CallKind::Method),
                ("assoc".to_string(), CallKind::Path(Some("Foo".to_string()))),
                ("turbo".to_string(), CallKind::Direct),
            ]
        );
    }

    #[test]
    fn cfg_test_modules_and_fns_are_marked() {
        let pf = parse(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
                 #[test]\n\
                 fn case() { helper(); }\n\
             }\n\
             fn prod2() {}",
        );
        let by_name = |n: &str| pf.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("case").in_test);
        assert!(!by_name("prod2").in_test);
        assert_eq!(pf.test_ranges.len(), 1);
    }

    #[test]
    fn bodyless_trait_methods_have_no_body() {
        let pf = parse("trait T { fn decl(&self); fn with_default(&self) { self.decl(); } }");
        let decl = pf.fns.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let def = pf.fns.iter().find(|f| f.name == "with_default").unwrap();
        assert!(def.body.is_some());
        assert_eq!(def.calls.len(), 1);
    }

    #[test]
    fn where_clauses_and_return_generics_do_not_break_body_detection() {
        let pf = parse(
            "fn f<T>(v: Vec<T>) -> Option<Vec<T>> where T: Clone { inner(v) }\n\
             fn g() {}",
        );
        assert_eq!(pf.fns.len(), 2);
        assert_eq!(pf.fns[0].calls.len(), 1);
        assert_eq!(pf.fns[0].calls[0].name, "inner");
    }
}
