//! Findings, rustc-style human rendering, and the machine-readable JSON
//! report CI uploads as an artifact.

use serde::Serialize;

/// One lint finding, anchored to a file:line:col span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Lint name (kebab-case, e.g. `nondet-map`).
    pub lint: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// One-sentence statement of the violation.
    pub message: String,
    /// The offending source line, verbatim.
    pub snippet: String,
    /// Lint-specific remediation hint.
    pub help: String,
}

impl Finding {
    /// Renders the finding as a rustc-style diagnostic block.
    pub fn render(&self) -> String {
        let gutter = self.line.to_string().len().max(2);
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.lint, self.message));
        out.push_str(&format!(
            "{:gutter$}--> {}:{}:{}\n",
            "", self.path, self.line, self.col
        ));
        out.push_str(&format!("{:gutter$} |\n", ""));
        out.push_str(&format!(
            "{:<gutter$} | {}\n",
            self.line,
            self.snippet.trim_end()
        ));
        let caret_pad = (self.col as usize).saturating_sub(1);
        out.push_str(&format!("{:gutter$} | {:caret_pad$}^\n", "", ""));
        out.push_str(&format!("{:gutter$} = help: {}\n", "", self.help));
        out
    }
}

/// A suppression that matched a finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AppliedSuppression {
    /// Lint name the directive names.
    pub lint: String,
    /// Repo-relative path of the directive.
    pub path: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The justification after the colon.
    pub reason: String,
}

/// JSON report schema version. Bump when a field is added, removed, or
/// re-interpreted, so CI artifact diffs across tool versions stay
/// meaningful. History: 1 = PR 6 (no version field), 2 = PR 8
/// (`schema_version` added; findings globally sorted by
/// path/line/col/lint).
pub const SCHEMA_VERSION: u32 = 2;

/// The whole run's result — serialized to JSON for the CI artifact.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Report layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Tool version (crate version at compile time).
    pub version: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Surviving findings, sorted by (path, line, col, lint).
    pub findings: Vec<Finding>,
    /// Suppressions that absorbed a finding, sorted by (path, line, lint).
    pub suppressions: Vec<AppliedSuppression>,
    /// `findings.is_empty()` — the CI gate.
    pub clean: bool,
}

impl Report {
    /// Assembles a report from scan results. Findings and suppressions
    /// are (re)sorted here so the JSON artifact is byte-stable however
    /// the passes emitted them.
    pub fn new(
        files_scanned: u64,
        mut findings: Vec<Finding>,
        mut suppressions: Vec<AppliedSuppression>,
    ) -> Self {
        findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.lint).cmp(&(&b.path, b.line, b.col, &b.lint))
        });
        suppressions.sort_by(|a, b| (&a.path, a.line, &a.lint).cmp(&(&b.path, b.line, &b.lint)));
        Self {
            schema_version: SCHEMA_VERSION,
            version: env!("CARGO_PKG_VERSION").to_string(),
            files_scanned,
            clean: findings.is_empty(),
            findings,
            suppressions,
        }
    }

    /// Renders every finding plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file{} scanned: {} finding{}, {} suppressed\n",
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressions.len(),
        ));
        out
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serialisable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_places_the_caret() {
        let f = Finding {
            lint: "nondet-map".into(),
            path: "crates/sim/src/os.rs".into(),
            line: 33,
            col: 13,
            message: "default-hasher HashMap".into(),
            snippet: "    device: HashMap<u64, u64>,".into(),
            help: "use LineMap".into(),
        };
        let r = f.render();
        assert!(r.contains("error[nondet-map]"));
        assert!(r.contains("--> crates/sim/src/os.rs:33:13"));
        let caret_line = r.lines().find(|l| l.contains('^')).unwrap();
        assert_eq!(caret_line.find('^').unwrap(), "   | ".len() + 12);
    }

    #[test]
    fn report_json_has_the_gate_fields() {
        let rep = Report::new(3, vec![], vec![]);
        let j = rep.to_json();
        assert!(j.contains("\"clean\": true"));
        assert!(j.contains("\"files_scanned\": 3"));
    }
}
