//! The `atomic-ordering` audit.
//!
//! The simulator's determinism argument leans on `SeqCst` everywhere:
//! the single total order makes the concurrency reasoning (and the
//! `sched` models, which treat every atomic access as one schedule
//! point) honest. Relaxed orderings are occasionally justified — but
//! each one is a proof obligation, so every non-`SeqCst` `Ordering::…`
//! mention in a result-bearing crate must carry an adjacent
//!
//! ```text
//! // analyze::order(<why this ordering is sound>)
//! ```
//!
//! comment on the same line or the line above, or it becomes an
//! `atomic-ordering` finding. Test modules are exempt (tests may probe
//! weak orderings deliberately), as are `use` statements (importing
//! `Ordering::Relaxed` is not yet using it).

use crate::callgraph::Workspace;
use crate::config::LintConfig;
use crate::diagnostics::Finding;

/// Non-`SeqCst` memory orderings that demand a justification.
const WEAK_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

/// Runs the audit and returns raw findings (unsuppressed).
pub fn run(ws: &Workspace, config: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pf in &ws.files {
        if !config.is_result_bearing(&pf.path) {
            continue;
        }
        let t = &pf.toks.tokens;
        // Lines carrying an `analyze::order(<reason>)` justification.
        let order_lines: Vec<u32> = pf
            .toks
            .comments
            .iter()
            .filter(|c| {
                let text = c.text.trim();
                text.strip_prefix("analyze::order(")
                    .and_then(|rest| rest.split_once(')'))
                    .is_some_and(|(reason, _)| !reason.trim().is_empty())
            })
            .map(|c| c.line)
            .collect();
        for i in 0..t.len() {
            if !t[i].is_ident("Ordering") || pf.in_test_range(i) {
                continue;
            }
            let weak = t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3)
                    .and_then(|x| x.ident())
                    .is_some_and(|id| WEAK_ORDERINGS.contains(&id));
            if !weak || in_use_statement(t, i) {
                continue;
            }
            let ord = t[i + 3].ident().unwrap_or_default();
            let line = t[i].line;
            if order_lines.iter().any(|&l| l == line || l + 1 == line) {
                continue;
            }
            findings.push(Finding {
                lint: "atomic-ordering".to_string(),
                path: pf.path.clone(),
                line,
                col: t[i].col,
                message: format!(
                    "non-SeqCst atomic ordering `Ordering::{ord}` without justification"
                ),
                snippet: pf
                    .source
                    .lines()
                    .nth(line as usize - 1)
                    .unwrap_or("")
                    .to_string(),
                help: "every weak ordering in a result-bearing crate is a proof \
                       obligation: justify it with `// analyze::order(<reason>)` on \
                       this line or the line above, or use SeqCst"
                    .to_string(),
            });
        }
    }
    findings
}

/// Whether token `i` sits inside a `use …;` statement. Walks back to the
/// statement start; a `{` preceded by `::` is a grouped use-tree
/// (`use a::{B, C}`) and does not end the scan, any other `{`/`;` does.
fn in_use_statement(t: &[crate::tokenizer::Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        if t[k].is_ident("use") {
            return true;
        }
        if t[k].is_punct(';') {
            return false;
        }
        if t[k].is_punct('{') && !(k > 0 && t[k - 1].is_punct(':')) {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_sources(vec![("crates/sim/src/x.rs".to_string(), src.to_string())]);
        run(&ws, &LintConfig::default())
    }

    #[test]
    fn unjustified_relaxed_is_a_finding() {
        let findings = run_on("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "atomic-ordering");
        assert!(findings[0].message.contains("Relaxed"));
    }

    #[test]
    fn seqcst_is_always_fine() {
        let findings = run_on("fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn order_annotation_on_same_or_previous_line_justifies() {
        let findings = run_on(
            "fn f(a: &AtomicU64) {\n\
                 // analyze::order(monotonic counter, readers tolerate staleness)\n\
                 a.load(Ordering::Relaxed);\n\
                 a.store(1, Ordering::Release); // analyze::order(publishes after init)\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn empty_reason_does_not_justify() {
        let findings = run_on(
            "fn f(a: &AtomicU64) {\n\
                 // analyze::order()\n\
                 a.load(Ordering::Relaxed);\n\
             }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn use_statements_and_test_modules_are_exempt() {
        let findings = run_on(
            "use std::sync::atomic::Ordering::Relaxed;\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn probe(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
