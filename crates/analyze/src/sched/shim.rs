//! Shim sync types mirroring the `std::sync` API, with every visible
//! operation routed through the virtual scheduler.
//!
//! Mutual exclusion is enforced at the *model* level (the scheduler only
//! grants a lock to one thread at a time), so the embedded
//! `std::sync::Mutex` protecting the actual data is never contended —
//! it exists to hand out `&mut T` safely under
//! `#![forbid(unsafe_code)]`. Lock APIs therefore don't return
//! `Result`s: poisoning cannot happen at the std layer (a model-thread
//! panic unwinds through the scheduler, not through a held std guard
//! under contention), and model-level failures are reported by the
//! explorer instead.

use super::explorer::{current_id, Effect, Pending, Sched};
use crate::sched::explorer::Controller;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

fn lk<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A model mutex. Shared across model threads via `Arc`.
pub struct Mutex<T> {
    pub(crate) id: usize,
    name: String,
    ctl: Arc<Controller>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a named model mutex registered with `sched`'s scheduler.
    pub fn new(sched: &Sched, name: &str, value: T) -> Self {
        Self {
            id: sched.ctl.register_mutex(name),
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            data: StdMutex::new(value),
        }
    }

    /// Acquires the lock — a schedule point that blocks (at model level)
    /// while another thread owns it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let me = current_id();
        self.ctl.schedule_point(
            me,
            Pending::Acquire(self.id),
            Effect::None,
            format!("acquire({})", self.name),
        );
        MutexGuard {
            lock: self,
            inner: Some(lk(&self.data)),
            release_on_drop: true,
        }
    }
}

/// RAII guard mirroring `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// Cleared by `Condvar::wait`, whose `WaitCv` schedule point
    /// releases the model mutex atomically instead.
    release_on_drop: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real guard first, then the model-level release: whenever the
        // scheduler grants this mutex to another thread, the std mutex
        // is already free.
        self.inner.take();
        if self.release_on_drop {
            self.lock.ctl.release_mutex(current_id(), self.lock.id);
        }
    }
}

/// A model condvar. Shared across model threads via `Arc`.
pub struct Condvar {
    id: usize,
    name: String,
    ctl: Arc<Controller>,
}

impl Condvar {
    /// Creates a named model condvar registered with `sched`'s scheduler.
    pub fn new(sched: &Sched, name: &str) -> Self {
        Self {
            id: sched.ctl.register_condvar(name),
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
        }
    }

    /// Releases `guard`'s mutex and parks until notified, then
    /// reacquires — the release and waitset entry are atomic at the
    /// schedule point, exactly like `std::sync::Condvar::wait`. No
    /// spurious wakeups (see the module docs on granularity).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        guard.inner.take();
        guard.release_on_drop = false;
        drop(guard);
        self.ctl.schedule_point(
            current_id(),
            Pending::WaitCv {
                cv: self.id,
                mutex: lock.id,
                notified: false,
            },
            Effect::None,
            format!("wait({})", self.name),
        );
        MutexGuard {
            lock,
            inner: Some(lk(&lock.data)),
            release_on_drop: true,
        }
    }

    /// Wakes the longest-waiting thread (deterministic stand-in for the
    /// OS's arbitrary pick).
    pub fn notify_one(&self) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::NotifyOne(self.id),
            format!("notify_one({})", self.name),
        );
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::NotifyAll(self.id),
            format!("notify_all({})", self.name),
        );
    }
}

/// A model atomic u64; every access is a schedule point.
pub struct AtomicU64 {
    name: String,
    ctl: Arc<Controller>,
    val: StdMutex<u64>,
}

impl AtomicU64 {
    /// Creates a named model atomic.
    pub fn new(sched: &Sched, name: &str, value: u64) -> Self {
        Self {
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            val: StdMutex::new(value),
        }
    }

    /// Atomic load (schedule point before the access).
    pub fn load(&self) -> u64 {
        self.point("load");
        *lk(&self.val)
    }

    /// Atomic store (schedule point before the access).
    pub fn store(&self, v: u64) {
        self.point("store");
        *lk(&self.val) = v;
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&self, v: u64) -> u64 {
        self.point("fetch_add");
        let mut g = lk(&self.val);
        let prev = *g;
        *g += v;
        prev
    }

    fn point(&self, op: &str) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("{op}({})", self.name),
        );
    }
}

/// A model atomic bool; every access is a schedule point.
pub struct AtomicBool {
    name: String,
    ctl: Arc<Controller>,
    val: StdMutex<bool>,
}

impl AtomicBool {
    /// Creates a named model atomic.
    pub fn new(sched: &Sched, name: &str, value: bool) -> Self {
        Self {
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            val: StdMutex::new(value),
        }
    }

    /// Atomic load (schedule point before the access).
    pub fn load(&self) -> bool {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("load({})", self.name),
        );
        *lk(&self.val)
    }

    /// Atomic store (schedule point before the access).
    pub fn store(&self, v: bool) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("store({})", self.name),
        );
        *lk(&self.val) = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::explorer::{explore, ModelFn, SchedConfig};

    #[test]
    fn guard_gives_mutable_access_and_wait_reacquires() {
        let model: ModelFn = Arc::new(|s| {
            let m = Arc::new(Mutex::new(&s, "m", 0u64));
            let cv = Arc::new(Condvar::new(&s, "cv"));
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = s.spawn(move |s2| {
                let mut g = m2.lock();
                while *g == 0 {
                    g = cv2.wait(g);
                }
                s2.check(*g == 7, "consumer sees the produced value");
            });
            {
                let mut g = m.lock();
                *g = 7;
            }
            cv.notify_all();
            h.join();
        });
        let rep = explore(
            &SchedConfig {
                preemption_bound: 2,
                max_schedules: 20_000,
            },
            model,
        );
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete);
    }

    #[test]
    fn atomics_are_shared_and_ordered_under_the_baton() {
        let model: ModelFn = Arc::new(|s| {
            let a = Arc::new(AtomicU64::new(&s, "a", 0));
            let a2 = Arc::clone(&a);
            let h = s.spawn(move |_| {
                a2.fetch_add(5);
            });
            a.fetch_add(2);
            h.join();
            s.check(a.load() == 7, "both adds visible after join");
        });
        let rep = explore(&SchedConfig::default(), model);
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
    }
}
