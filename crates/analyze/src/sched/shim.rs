//! Shim sync types mirroring the `std::sync` API, with every visible
//! operation routed through the virtual scheduler.
//!
//! Mutual exclusion is enforced at the *model* level (the scheduler only
//! grants a lock to one thread at a time), so the embedded
//! `std::sync::Mutex` protecting the actual data is never contended —
//! it exists to hand out `&mut T` safely under
//! `#![forbid(unsafe_code)]`. Lock APIs therefore don't return
//! `Result`s: poisoning cannot happen at the std layer (a model-thread
//! panic unwinds through the scheduler, not through a held std guard
//! under contention), and model-level failures are reported by the
//! explorer instead.

use super::explorer::{current_id, Effect, Pending, Sched};
use crate::sched::explorer::Controller;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

fn lk<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A model mutex. Shared across model threads via `Arc`.
pub struct Mutex<T> {
    pub(crate) id: usize,
    name: String,
    ctl: Arc<Controller>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a named model mutex registered with `sched`'s scheduler.
    pub fn new(sched: &Sched, name: &str, value: T) -> Self {
        Self {
            id: sched.ctl.register_mutex(name),
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            data: StdMutex::new(value),
        }
    }

    /// Acquires the lock — a schedule point that blocks (at model level)
    /// while another thread owns it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let me = current_id();
        self.ctl.schedule_point(
            me,
            Pending::Acquire(self.id),
            Effect::None,
            format!("acquire({})", self.name),
        );
        MutexGuard {
            lock: self,
            inner: Some(lk(&self.data)),
            release_on_drop: true,
        }
    }
}

/// RAII guard mirroring `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// Cleared by `Condvar::wait`, whose `WaitCv` schedule point
    /// releases the model mutex atomically instead.
    release_on_drop: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real guard first, then the model-level release: whenever the
        // scheduler grants this mutex to another thread, the std mutex
        // is already free.
        self.inner.take();
        if self.release_on_drop {
            self.lock.ctl.release_mutex(current_id(), self.lock.id);
        }
    }
}

/// A model condvar. Shared across model threads via `Arc`.
pub struct Condvar {
    id: usize,
    name: String,
    ctl: Arc<Controller>,
}

impl Condvar {
    /// Creates a named model condvar registered with `sched`'s scheduler.
    pub fn new(sched: &Sched, name: &str) -> Self {
        Self {
            id: sched.ctl.register_condvar(name),
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
        }
    }

    /// Releases `guard`'s mutex and parks until notified, then
    /// reacquires — the release and waitset entry are atomic at the
    /// schedule point, exactly like `std::sync::Condvar::wait`. No
    /// spurious wakeups (see the module docs on granularity).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        guard.inner.take();
        guard.release_on_drop = false;
        drop(guard);
        self.ctl.schedule_point(
            current_id(),
            Pending::WaitCv {
                cv: self.id,
                mutex: lock.id,
                notified: false,
            },
            Effect::None,
            format!("wait({})", self.name),
        );
        MutexGuard {
            lock,
            inner: Some(lk(&lock.data)),
            release_on_drop: true,
        }
    }

    /// Wakes the longest-waiting thread (deterministic stand-in for the
    /// OS's arbitrary pick).
    pub fn notify_one(&self) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::NotifyOne(self.id),
            format!("notify_one({})", self.name),
        );
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::NotifyAll(self.id),
            format!("notify_all({})", self.name),
        );
    }
}

/// A model atomic u64; every access is a schedule point.
pub struct AtomicU64 {
    name: String,
    ctl: Arc<Controller>,
    val: StdMutex<u64>,
}

impl AtomicU64 {
    /// Creates a named model atomic.
    pub fn new(sched: &Sched, name: &str, value: u64) -> Self {
        Self {
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            val: StdMutex::new(value),
        }
    }

    /// Atomic load (schedule point before the access).
    pub fn load(&self) -> u64 {
        self.point("load");
        *lk(&self.val)
    }

    /// Atomic store (schedule point before the access).
    pub fn store(&self, v: u64) {
        self.point("store");
        *lk(&self.val) = v;
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&self, v: u64) -> u64 {
        self.point("fetch_add");
        let mut g = lk(&self.val);
        let prev = *g;
        *g += v;
        prev
    }

    fn point(&self, op: &str) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("{op}({})", self.name),
        );
    }
}

/// A model atomic bool; every access is a schedule point.
pub struct AtomicBool {
    name: String,
    ctl: Arc<Controller>,
    val: StdMutex<bool>,
}

impl AtomicBool {
    /// Creates a named model atomic.
    pub fn new(sched: &Sched, name: &str, value: bool) -> Self {
        Self {
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            val: StdMutex::new(value),
        }
    }

    /// Atomic load (schedule point before the access).
    pub fn load(&self) -> bool {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("load({})", self.name),
        );
        *lk(&self.val)
    }

    /// Atomic store (schedule point before the access).
    pub fn store(&self, v: bool) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("store({})", self.name),
        );
        *lk(&self.val) = v;
    }
}

/// A model reader-writer lock. Shared across model threads via `Arc`.
///
/// Read acquisition is eligible whenever no writer holds the lock;
/// write acquisition needs the lock entirely free. Releases are not
/// schedule points (they only widen eligibility).
pub struct RwLock<T> {
    id: usize,
    name: String,
    ctl: Arc<Controller>,
    data: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a named model rwlock registered with `sched`'s scheduler.
    pub fn new(sched: &Sched, name: &str, value: T) -> Self {
        Self {
            id: sched.ctl.register_rwlock(name),
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            data: StdRwLock::new(value),
        }
    }

    /// Acquires shared access — a schedule point that blocks (at model
    /// level) while a writer holds the lock.
    pub fn read(&self) -> RwReadGuard<'_, T> {
        let me = current_id();
        self.ctl.schedule_point(
            me,
            Pending::AcquireRead(self.id),
            Effect::None,
            format!("read({})", self.name),
        );
        RwReadGuard {
            lock: self,
            inner: Some(self.data.read().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquires exclusive access — a schedule point that blocks (at
    /// model level) while any reader or writer holds the lock.
    pub fn write(&self) -> RwWriteGuard<'_, T> {
        let me = current_id();
        self.ctl.schedule_point(
            me,
            Pending::AcquireWrite(self.id),
            Effect::None,
            format!("write({})", self.name),
        );
        RwWriteGuard {
            lock: self,
            inner: Some(self.data.write().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

/// RAII shared guard mirroring `std::sync::RwLockReadGuard`.
pub struct RwReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
}

impl<T> Deref for RwReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.lock.ctl.release_read(current_id(), self.lock.id);
    }
}

/// RAII exclusive guard mirroring `std::sync::RwLockWriteGuard`.
pub struct RwWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
}

impl<T> Deref for RwWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for RwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.lock.ctl.release_write(current_id(), self.lock.id);
    }
}

/// A model atomic usize; every access is a schedule point.
pub struct AtomicUsize {
    name: String,
    ctl: Arc<Controller>,
    val: StdMutex<usize>,
}

impl AtomicUsize {
    /// Creates a named model atomic.
    pub fn new(sched: &Sched, name: &str, value: usize) -> Self {
        Self {
            name: name.to_string(),
            ctl: Arc::clone(&sched.ctl),
            val: StdMutex::new(value),
        }
    }

    /// Atomic load (schedule point before the access).
    pub fn load(&self) -> usize {
        self.point("load");
        *lk(&self.val)
    }

    /// Atomic store (schedule point before the access).
    pub fn store(&self, v: usize) {
        self.point("store");
        *lk(&self.val) = v;
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&self, v: usize) -> usize {
        self.point("fetch_add");
        let mut g = lk(&self.val);
        let prev = *g;
        *g += v;
        prev
    }

    /// Atomic compare-exchange: replaces the value with `new` iff it
    /// equals `current`, returning `Ok(previous)` on success and
    /// `Err(actual)` on failure — the `std` contract.
    pub fn compare_exchange(&self, current: usize, new: usize) -> Result<usize, usize> {
        self.point("compare_exchange");
        let mut g = lk(&self.val);
        if *g == current {
            *g = new;
            Ok(current)
        } else {
            Err(*g)
        }
    }

    fn point(&self, op: &str) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            format!("{op}({})", self.name),
        );
    }
}

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct ChanInner<T> {
    queue: Mutex<ChanState<T>>,
    cv: Condvar,
}

/// Creates an unbounded mpsc-style model channel built on the model
/// mutex + condvar, so every send/receive is explored like any other
/// synchronization. `recv` blocks until a message or close; a closed,
/// drained channel yields `None`.
pub fn channel<T: Send>(sched: &Sched, name: &str) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(ChanInner {
        queue: Mutex::new(
            sched,
            &format!("{name}.queue"),
            ChanState {
                queue: VecDeque::new(),
                closed: false,
            },
        ),
        cv: Condvar::new(sched, &format!("{name}.cv")),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Sending half of a model channel; clone freely across model threads.
pub struct Sender<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Sender<T> {
    /// Enqueues a message and wakes one waiting receiver.
    pub fn send(&self, value: T) {
        {
            let mut g = self.inner.queue.lock();
            g.queue.push_back(value);
        }
        self.inner.cv.notify_one();
    }

    /// Marks the channel closed; drained receivers then see `None`.
    pub fn close(&self) {
        {
            let mut g = self.inner.queue.lock();
            g.closed = true;
        }
        self.inner.cv.notify_all();
    }
}

/// Receiving half of a model channel.
pub struct Receiver<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T: Send> Receiver<T> {
    /// Blocks (at model level) until a message arrives or the channel is
    /// closed and drained.
    pub fn recv(&self) -> Option<T> {
        let mut g = self.inner.queue.lock();
        loop {
            if let Some(v) = g.queue.pop_front() {
                return Some(v);
            }
            if g.closed {
                return None;
            }
            g = self.inner.cv.wait(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::explorer::{explore, ModelFn, SchedConfig};

    #[test]
    fn guard_gives_mutable_access_and_wait_reacquires() {
        let model: ModelFn = Arc::new(|s| {
            let m = Arc::new(Mutex::new(&s, "m", 0u64));
            let cv = Arc::new(Condvar::new(&s, "cv"));
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = s.spawn(move |s2| {
                let mut g = m2.lock();
                while *g == 0 {
                    g = cv2.wait(g);
                }
                s2.check(*g == 7, "consumer sees the produced value");
            });
            {
                let mut g = m.lock();
                *g = 7;
            }
            cv.notify_all();
            h.join();
        });
        let rep = explore(
            &SchedConfig {
                preemption_bound: 2,
                max_schedules: 20_000,
            },
            model,
        );
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete);
    }

    #[test]
    fn rwlock_serializes_writers_against_readers() {
        let model: ModelFn = Arc::new(|s| {
            let l = Arc::new(RwLock::new(&s, "l", 0u64));
            let l2 = Arc::clone(&l);
            let h = s.spawn(move |s2| {
                let g = l2.read();
                // A reader never observes a torn/intermediate value: the
                // writer's two stores happen under one write guard.
                s2.check(*g == 0 || *g == 10, "reader sees whole writes only");
            });
            {
                let mut g = l.write();
                *g = 5;
                *g = 10;
            }
            h.join();
            s.check(*l.read() == 10, "final value visible after join");
        });
        let rep = explore(
            &SchedConfig {
                preemption_bound: 2,
                max_schedules: 20_000,
            },
            model,
        );
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete);
    }

    #[test]
    fn compare_exchange_admits_exactly_one_winner() {
        let model: ModelFn = Arc::new(|s| {
            let a = Arc::new(AtomicUsize::new(&s, "claim", usize::MAX));
            let wins = Arc::new(AtomicUsize::new(&s, "wins", 0));
            let mut handles = Vec::new();
            for w in 0..2 {
                let a2 = Arc::clone(&a);
                let wins2 = Arc::clone(&wins);
                handles.push(s.spawn(move |_| {
                    if a2.compare_exchange(usize::MAX, w).is_ok() {
                        wins2.fetch_add(1);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            s.check(wins.load() == 1, "exactly one CAS wins an uncontended slot");
        });
        let rep = explore(&SchedConfig::default(), model);
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete);
    }

    #[test]
    fn channel_delivers_every_message_then_none_after_close() {
        let model: ModelFn = Arc::new(|s| {
            let (tx, rx) = channel::<u64>(&s, "ch");
            let tx2 = tx.clone();
            let h = s.spawn(move |_| {
                tx2.send(3);
                tx2.send(4);
            });
            let a = rx.recv().expect("first message");
            let b = rx.recv().expect("second message");
            s.check(a + b == 7, "both messages delivered");
            s.check(a == 3, "per-sender FIFO order preserved");
            h.join();
            tx.close();
            s.check(rx.recv().is_none(), "closed and drained yields None");
        });
        let rep = explore(
            &SchedConfig {
                preemption_bound: 2,
                max_schedules: 20_000,
            },
            model,
        );
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete);
    }

    #[test]
    fn atomics_are_shared_and_ordered_under_the_baton() {
        let model: ModelFn = Arc::new(|s| {
            let a = Arc::new(AtomicU64::new(&s, "a", 0));
            let a2 = Arc::clone(&a);
            let h = s.spawn(move |_| {
                a2.fetch_add(5);
            });
            a.fetch_add(2);
            h.join();
            s.check(a.load() == 7, "both adds visible after join");
        });
        let rep = explore(&SchedConfig::default(), model);
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
    }
}
