//! The virtual scheduler ("controller") and the interleaving explorers.
//!
//! One execution = one set of real OS threads running the model closure
//! under the baton protocol: a thread reaching a visible operation hands
//! the decision to [`Controller::schedule_point`], which applies the
//! operation's effects, consults the replay prefix / default policy /
//! random stream for who runs next, and parks the caller until the baton
//! comes back. The decision sequence of a finished execution is the DFS
//! node; backtracking rewrites its tail and replays.

use std::cell::Cell;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError,
};

/// Explorer limits.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Maximum preemptions per execution (a preemption = scheduling a
    /// different thread while the current one is still eligible).
    pub preemption_bound: usize,
    /// Hard cap on executions before giving up with `complete: false`.
    pub max_schedules: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 100_000,
        }
    }
}

/// A property violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// `"deadlock"`, `"assertion"`, `"panic"` or `"guard"`.
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// The event trace of the failing execution, in order.
    pub trace: Vec<String>,
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Executions run.
    pub schedules_run: usize,
    /// First failure found, if any (exploration stops there).
    pub failure: Option<Failure>,
    /// Whether the DFS exhausted every schedule within the bound
    /// (always `false` for the random sampler and capped runs).
    pub complete: bool,
}

/// A model entry point: receives a [`Sched`] handle and builds its own
/// threads and sync objects through it.
pub type ModelFn = Arc<dyn Fn(Sched) + Send + Sync>;

/// What a parked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// At a schedule point, no resource needed — always eligible.
    Ready,
    /// Holds the baton and is executing model code.
    Running,
    /// Blocked acquiring a model mutex.
    Acquire(usize),
    /// Blocked acquiring a model rwlock for shared (read) access.
    AcquireRead(usize),
    /// Blocked acquiring a model rwlock for exclusive (write) access.
    AcquireWrite(usize),
    /// Waiting on a condvar; `notified` flips on notify, after which the
    /// thread competes to reacquire `mutex`.
    WaitCv {
        /// Condvar id.
        cv: usize,
        /// Mutex to reacquire on wakeup.
        mutex: usize,
        /// Whether a notify has already selected this waiter.
        notified: bool,
    },
    /// Blocked joining another model thread.
    Join(usize),
    /// Exited.
    Finished,
}

/// How the next choice index is produced.
enum Mode {
    /// Follow `0` until the prefix runs out, then default policy
    /// (index 0 = keep the current thread when eligible).
    Replay(Vec<usize>),
    /// splitmix64 stream over the eligible list.
    Random(u64),
}

/// One scheduling decision, recorded for DFS backtracking.
#[derive(Debug, Clone)]
pub(crate) struct ChoicePoint {
    /// Eligible thread ids, current-first.
    pub eligible: Vec<usize>,
    /// Index into `eligible` that was taken.
    pub chosen: usize,
    /// Whether the then-current thread was in `eligible` (so non-zero
    /// alternatives cost a preemption).
    pub current_eligible: bool,
    /// Preemptions spent before this point.
    pub preemptions_before: usize,
}

struct ThreadState {
    pending: Pending,
}

struct MutexState {
    name: String,
    owner: Option<usize>,
}

struct RwState {
    name: String,
    writer: Option<usize>,
    /// Current readers (a thread may appear once; re-entrancy is a model
    /// bug the std type would also deadlock on).
    readers: Vec<usize>,
}

struct CvState {
    name: String,
    /// Un-notified waiters, FIFO (notify wakes the longest waiter —
    /// a deterministic stand-in for the OS's arbitrary pick).
    waiters: Vec<usize>,
}

struct Inner {
    threads: Vec<ThreadState>,
    mutexes: Vec<MutexState>,
    rwlocks: Vec<RwState>,
    condvars: Vec<CvState>,
    current: usize,
    mode: Mode,
    step: usize,
    schedule: Vec<ChoicePoint>,
    preemptions: usize,
    events: Vec<String>,
    failure: Option<Failure>,
    aborted: bool,
    /// Live real threads (registration to `finish`).
    active: usize,
}

/// Runaway-schedule backstop: no model here comes near this.
const SCHEDULE_GUARD: usize = 100_000;

/// The virtual scheduler shared by every thread of one execution.
pub(crate) struct Controller {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Unwind payload used to tear threads down after an abort; the panic
/// hook below keeps these (and model assertion panics) off stderr.
struct SchedAbort;

thread_local! {
    static MODEL_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The calling thread's model id; shims may only be used from inside a
/// model thread.
pub(crate) fn current_id() -> usize {
    MODEL_ID
        .with(|c| c.get())
        .expect("sched shim used outside a model thread")
}

/// Silences panic output from model threads (expected failures in broken
/// variants would otherwise spray thousands of backtraces); panics from
/// ordinary threads still reach the previous hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if MODEL_ID.with(|c| c.get()).is_none() {
                prev(info);
            }
        }));
    });
}

fn lk(m: &StdMutex<Inner>) -> StdMutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Effects applied atomically at schedule-point entry.
pub(crate) enum Effect {
    /// No side effect.
    None,
    /// Wake the longest waiter of the condvar.
    NotifyOne(usize),
    /// Wake every waiter of the condvar.
    NotifyAll(usize),
}

fn is_eligible(g: &Inner, t: usize) -> bool {
    match g.threads[t].pending {
        Pending::Ready => true,
        Pending::Acquire(m) => g.mutexes[m].owner.is_none(),
        Pending::AcquireRead(r) => g.rwlocks[r].writer.is_none(),
        Pending::AcquireWrite(r) => {
            g.rwlocks[r].writer.is_none() && g.rwlocks[r].readers.is_empty()
        }
        Pending::WaitCv {
            notified, mutex, ..
        } => notified && g.mutexes[mutex].owner.is_none(),
        Pending::Join(u) => matches!(g.threads[u].pending, Pending::Finished),
        Pending::Running | Pending::Finished => false,
    }
}

fn describe_pending(g: &Inner, t: usize) -> String {
    match g.threads[t].pending {
        Pending::Ready => "ready".to_string(),
        Pending::Running => "running".to_string(),
        Pending::Acquire(m) => format!("acquire({})", g.mutexes[m].name),
        Pending::AcquireRead(r) => format!("read({})", g.rwlocks[r].name),
        Pending::AcquireWrite(r) => format!("write({})", g.rwlocks[r].name),
        Pending::WaitCv { cv, notified, .. } => format!(
            "wait({}{})",
            g.condvars[cv].name,
            if notified { ", notified" } else { "" }
        ),
        Pending::Join(u) => format!("join(t{u})"),
        Pending::Finished => "finished".to_string(),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Controller {
    fn new(mode: Mode) -> Self {
        Self {
            inner: StdMutex::new(Inner {
                threads: Vec::new(),
                mutexes: Vec::new(),
                rwlocks: Vec::new(),
                condvars: Vec::new(),
                current: 0,
                mode,
                step: 0,
                schedule: Vec::new(),
                preemptions: 0,
                events: Vec::new(),
                failure: None,
                aborted: false,
                active: 0,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    pub(crate) fn register_mutex(&self, name: &str) -> usize {
        let mut g = lk(&self.inner);
        g.mutexes.push(MutexState {
            name: name.to_string(),
            owner: None,
        });
        g.mutexes.len() - 1
    }

    pub(crate) fn register_rwlock(&self, name: &str) -> usize {
        let mut g = lk(&self.inner);
        g.rwlocks.push(RwState {
            name: name.to_string(),
            writer: None,
            readers: Vec::new(),
        });
        g.rwlocks.len() - 1
    }

    pub(crate) fn register_condvar(&self, name: &str) -> usize {
        let mut g = lk(&self.inner);
        g.condvars.push(CvState {
            name: name.to_string(),
            waiters: Vec::new(),
        });
        g.condvars.len() - 1
    }

    /// Picks and grants the next thread; flags deadlock if no thread is
    /// eligible while unfinished threads remain.
    fn advance(&self, g: &mut Inner) {
        if g.schedule.len() >= SCHEDULE_GUARD {
            self.fail_locked(
                g,
                "guard",
                "schedule exceeded the runaway guard".to_string(),
            );
            return;
        }
        let mut ids: Vec<usize> = (0..g.threads.len())
            .filter(|&t| is_eligible(g, t))
            .collect();
        if ids.is_empty() {
            let stuck: Vec<String> = (0..g.threads.len())
                .filter(|&t| !matches!(g.threads[t].pending, Pending::Finished))
                .map(|t| format!("t{t}: {}", describe_pending(g, t)))
                .collect();
            if !stuck.is_empty() {
                self.fail_locked(
                    g,
                    "deadlock",
                    format!("no eligible thread; {}", stuck.join(", ")),
                );
            }
            return;
        }
        let current_eligible = ids.contains(&g.current);
        if current_eligible {
            ids.retain(|&t| t != g.current);
            ids.insert(0, g.current);
        }
        let idx = match &mut g.mode {
            Mode::Replay(prefix) => {
                if g.step < prefix.len() {
                    prefix[g.step].min(ids.len() - 1)
                } else {
                    0
                }
            }
            Mode::Random(state) => (splitmix64(state) % ids.len() as u64) as usize,
        };
        g.step += 1;
        g.schedule.push(ChoicePoint {
            eligible: ids.clone(),
            chosen: idx,
            current_eligible,
            preemptions_before: g.preemptions,
        });
        if current_eligible && idx > 0 {
            g.preemptions += 1;
        }
        let t = ids[idx];
        match g.threads[t].pending {
            Pending::Acquire(m) | Pending::WaitCv { mutex: m, .. } => {
                g.mutexes[m].owner = Some(t);
            }
            Pending::AcquireRead(r) => g.rwlocks[r].readers.push(t),
            Pending::AcquireWrite(r) => g.rwlocks[r].writer = Some(t),
            _ => {}
        }
        g.threads[t].pending = Pending::Running;
        g.current = t;
    }

    fn fail_locked(&self, g: &mut Inner, kind: &str, message: String) {
        if g.failure.is_none() {
            g.failure = Some(Failure {
                kind: kind.to_string(),
                message,
                trace: g.events.clone(),
            });
        }
        g.aborted = true;
    }

    /// The heart of the baton protocol: record the visible op, apply its
    /// entry effects, let the scheduler pick who runs, park until the
    /// baton returns (or the execution aborted).
    pub(crate) fn schedule_point(
        &self,
        me: usize,
        residue: Pending,
        effect: Effect,
        label: String,
    ) {
        let mut g = lk(&self.inner);
        if g.aborted {
            drop(g);
            panic_any(SchedAbort);
        }
        g.events.push(format!("t{me} {label}"));
        match effect {
            Effect::None => {}
            Effect::NotifyOne(cv) => {
                if !g.condvars[cv].waiters.is_empty() {
                    let w = g.condvars[cv].waiters.remove(0);
                    if let Pending::WaitCv { notified, .. } = &mut g.threads[w].pending {
                        *notified = true;
                    }
                }
            }
            Effect::NotifyAll(cv) => {
                for w in std::mem::take(&mut g.condvars[cv].waiters) {
                    if let Pending::WaitCv { notified, .. } = &mut g.threads[w].pending {
                        *notified = true;
                    }
                }
            }
        }
        // Condvar wait releases the mutex and joins the waitset
        // *atomically with the schedule point* — the real
        // `Condvar::wait(guard)` contract.
        if let Pending::WaitCv { cv, mutex, .. } = residue {
            g.mutexes[mutex].owner = None;
            g.condvars[cv].waiters.push(me);
        }
        g.threads[me].pending = residue;
        self.advance(&mut g);
        self.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                panic_any(SchedAbort);
            }
            if matches!(g.threads[me].pending, Pending::Running) {
                break;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mutex release: not a schedule point (it only widens eligibility,
    /// which the next schedule point observes).
    pub(crate) fn release_mutex(&self, me: usize, id: usize) {
        let mut g = lk(&self.inner);
        if g.aborted {
            return;
        }
        g.mutexes[id].owner = None;
        let name = g.mutexes[id].name.clone();
        g.events.push(format!("t{me} release({name})"));
    }

    /// Read-guard release: like mutex release, not a schedule point.
    pub(crate) fn release_read(&self, me: usize, id: usize) {
        let mut g = lk(&self.inner);
        if g.aborted {
            return;
        }
        if let Some(pos) = g.rwlocks[id].readers.iter().position(|&t| t == me) {
            g.rwlocks[id].readers.remove(pos);
        }
        let name = g.rwlocks[id].name.clone();
        g.events.push(format!("t{me} release_read({name})"));
    }

    /// Write-guard release: like mutex release, not a schedule point.
    pub(crate) fn release_write(&self, me: usize, id: usize) {
        let mut g = lk(&self.inner);
        if g.aborted {
            return;
        }
        g.rwlocks[id].writer = None;
        let name = g.rwlocks[id].name.clone();
        g.events.push(format!("t{me} release_write({name})"));
    }

    /// Records a model assertion failure and tears the execution down.
    pub(crate) fn fail_assert(&self, me: usize, msg: &str) -> ! {
        let mut g = lk(&self.inner);
        if !g.aborted {
            self.fail_locked(&mut g, "assertion", format!("t{me}: {msg}"));
        }
        drop(g);
        self.cv.notify_all();
        panic_any(SchedAbort);
    }

    /// Registers a model thread and starts its real thread.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        parent: usize,
        f: Box<dyn FnOnce(Sched) + Send>,
    ) -> usize {
        let id = {
            let mut g = lk(&self.inner);
            g.threads.push(ThreadState {
                pending: Pending::Ready,
            });
            g.active += 1;
            g.threads.len() - 1
        };
        let handle = spawn_wrapper(Arc::clone(self), id, f);
        lk_handles(&self.handles).push(handle);
        self.schedule_point(
            parent,
            Pending::Ready,
            Effect::None,
            format!("spawn(t{id})"),
        );
        id
    }

    /// Parks a freshly-spawned real thread until its model thread is
    /// first granted the baton; `false` means the execution aborted
    /// before that happened.
    fn await_baton(&self, me: usize) -> bool {
        let mut g = lk(&self.inner);
        loop {
            if g.aborted {
                return false;
            }
            if matches!(g.threads[me].pending, Pending::Running) {
                return true;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Model-thread teardown: record panics as failures, hand the baton
    /// onward, and wake the main explorer when the last thread exits.
    fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut g = lk(&self.inner);
        g.events.push(format!("t{me} exit"));
        g.threads[me].pending = Pending::Finished;
        if let Some(msg) = panic_msg {
            self.fail_locked(&mut g, "panic", format!("t{me} panicked: {msg}"));
        } else if !g.aborted {
            self.advance(&mut g);
        }
        g.active -= 1;
        drop(g);
        self.cv.notify_all();
    }
}

fn lk_handles(
    m: &StdMutex<Vec<std::thread::JoinHandle<()>>>,
) -> StdMutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spawn_wrapper(
    ctl: Arc<Controller>,
    id: usize,
    f: Box<dyn FnOnce(Sched) + Send>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        MODEL_ID.with(|c| c.set(Some(id)));
        let run = ctl.await_baton(id);
        let panic_msg = if run {
            let sched = Sched {
                ctl: Arc::clone(&ctl),
            };
            match catch_unwind(AssertUnwindSafe(move || f(sched))) {
                Ok(()) => None,
                Err(payload) => {
                    if payload.is::<SchedAbort>() {
                        // Teardown unwind, not a model failure.
                        None
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        Some((*s).to_string())
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        Some(s.clone())
                    } else {
                        Some("non-string panic payload".to_string())
                    }
                }
            }
        } else {
            None
        };
        ctl.finish(id, panic_msg);
    })
}

/// Per-thread handle models use to create sync objects, spawn threads
/// and assert properties. Cloneable and cheap.
#[derive(Clone)]
pub struct Sched {
    pub(crate) ctl: Arc<Controller>,
}

impl Sched {
    /// Spawns a model thread; the closure gets its own handle.
    pub fn spawn(&self, f: impl FnOnce(Sched) + Send + 'static) -> JoinHandle {
        let id = self.ctl.spawn_thread(current_id(), Box::new(f));
        JoinHandle {
            ctl: Arc::clone(&self.ctl),
            id,
        }
    }

    /// A pure schedule point: lets the explorer preempt here.
    pub fn yield_now(&self) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Ready,
            Effect::None,
            "yield".to_string(),
        );
    }

    /// Model assertion: on failure the execution is recorded as a
    /// counterexample and torn down. Use this instead of `assert!` so
    /// the failing schedule is captured.
    pub fn check(&self, cond: bool, msg: &str) {
        if !cond {
            self.ctl.fail_assert(current_id(), msg);
        }
    }
}

/// Join handle for a model thread.
pub struct JoinHandle {
    ctl: Arc<Controller>,
    id: usize,
}

impl JoinHandle {
    /// Blocks (at model level) until the thread finishes.
    pub fn join(self) {
        self.ctl.schedule_point(
            current_id(),
            Pending::Join(self.id),
            Effect::None,
            format!("join(t{})", self.id),
        );
    }
}

/// One execution's outcome.
struct Execution {
    failure: Option<Failure>,
    schedule: Vec<ChoicePoint>,
}

fn run_one(model: &ModelFn, mode: Mode) -> Execution {
    install_quiet_hook();
    let ctl = Arc::new(Controller::new(mode));
    {
        // Thread 0 starts holding the baton.
        let mut g = lk(&ctl.inner);
        g.threads.push(ThreadState {
            pending: Pending::Running,
        });
        g.active = 1;
        g.current = 0;
    }
    let m = Arc::clone(model);
    let h = spawn_wrapper(Arc::clone(&ctl), 0, Box::new(move |s| m(s)));
    lk_handles(&ctl.handles).push(h);
    // Wait for every model thread to exit, then join the real threads so
    // nothing leaks into the next execution.
    {
        let mut g = lk(&ctl.inner);
        while g.active > 0 {
            g = ctl.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
    loop {
        let drained: Vec<_> = lk_handles(&ctl.handles).drain(..).collect();
        if drained.is_empty() {
            break;
        }
        for h in drained {
            let _ = h.join();
        }
    }
    let mut g = lk(&ctl.inner);
    Execution {
        failure: g.failure.take(),
        schedule: std::mem::take(&mut g.schedule),
    }
}

/// The next DFS prefix after `schedule`, or `None` when the bounded
/// space is exhausted: backtrack to the last choice point with an
/// untried alternative that fits the preemption budget.
fn next_prefix(schedule: &[ChoicePoint], bound: usize) -> Option<Vec<usize>> {
    for k in (0..schedule.len()).rev() {
        let cp = &schedule[k];
        let next = cp.chosen + 1;
        if next >= cp.eligible.len() {
            continue;
        }
        let cost = usize::from(cp.current_eligible);
        if cp.preemptions_before + cost > bound {
            continue;
        }
        let mut prefix: Vec<usize> = schedule[..k].iter().map(|c| c.chosen).collect();
        prefix.push(next);
        return Some(prefix);
    }
    None
}

/// Exhaustive DFS over every interleaving of `model` up to
/// `cfg.preemption_bound` preemptions, stopping at the first failure.
pub fn explore(cfg: &SchedConfig, model: ModelFn) -> ExploreReport {
    let mut prefix: Vec<usize> = Vec::new();
    let mut runs = 0usize;
    loop {
        let ex = run_one(&model, Mode::Replay(std::mem::take(&mut prefix)));
        runs += 1;
        if ex.failure.is_some() {
            return ExploreReport {
                schedules_run: runs,
                failure: ex.failure,
                complete: false,
            };
        }
        match next_prefix(&ex.schedule, cfg.preemption_bound) {
            Some(p) if runs < cfg.max_schedules => prefix = p,
            Some(_) => {
                return ExploreReport {
                    schedules_run: runs,
                    failure: None,
                    complete: false,
                }
            }
            None => {
                return ExploreReport {
                    schedules_run: runs,
                    failure: None,
                    complete: true,
                }
            }
        }
    }
}

/// Seeded-random sampler: `schedules` executions with uniformly random
/// choices (no preemption bound) — cheap coverage of deep interleavings
/// the bounded DFS can't afford.
pub fn explore_random(seed: u64, schedules: usize, model: ModelFn) -> ExploreReport {
    let mut stream = seed;
    for i in 0..schedules {
        let run_seed = splitmix64(&mut stream);
        let ex = run_one(&model, Mode::Random(run_seed));
        if ex.failure.is_some() {
            return ExploreReport {
                schedules_run: i + 1,
                failure: ex.failure,
                complete: false,
            };
        }
    }
    ExploreReport {
        schedules_run: schedules,
        failure: None,
        complete: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::shim::Mutex;

    #[test]
    fn independent_increments_explore_cleanly() {
        let model: ModelFn = Arc::new(|s: Sched| {
            let m = Arc::new(Mutex::new(&s, "counter", 0u64));
            let m2 = Arc::clone(&m);
            let h = s.spawn(move |_| {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            h.join();
            let v = *m.lock();
            s.check(v == 2, "both increments landed");
        });
        let rep = explore(
            &SchedConfig {
                preemption_bound: 2,
                max_schedules: 10_000,
            },
            model,
        );
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete);
        assert!(rep.schedules_run > 1, "multiple interleavings explored");
    }

    #[test]
    fn ab_ba_deadlock_is_found() {
        let model: ModelFn = Arc::new(|s: Sched| {
            let a = Arc::new(Mutex::new(&s, "a", ()));
            let b = Arc::new(Mutex::new(&s, "b", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = s.spawn(move |_| {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            h.join();
        });
        let rep = explore(
            &SchedConfig {
                preemption_bound: 1,
                max_schedules: 10_000,
            },
            model,
        );
        let f = rep.failure.expect("AB-BA deadlock must be detected");
        assert_eq!(f.kind, "deadlock");
        assert!(f.message.contains("acquire"), "message: {}", f.message);
        assert!(!f.trace.is_empty(), "counterexample trace captured");
    }

    #[test]
    fn random_mode_is_deterministic_per_seed_and_clean_on_sound_models() {
        let mk = || -> ModelFn {
            Arc::new(|s: Sched| {
                let m = Arc::new(Mutex::new(&s, "m", 0u64));
                let m2 = Arc::clone(&m);
                let h = s.spawn(move |_| {
                    *m2.lock() += 3;
                });
                *m.lock() += 4;
                h.join();
            })
        };
        let a = explore_random(42, 50, mk());
        let b = explore_random(42, 50, mk());
        assert!(a.failure.is_none() && b.failure.is_none());
        assert_eq!(a.schedules_run, b.schedules_run);
    }

    #[test]
    fn next_prefix_respects_the_preemption_budget() {
        let cp = |eligible: usize, chosen: usize, cur: bool, before: usize| ChoicePoint {
            eligible: (0..eligible).collect(),
            chosen,
            current_eligible: cur,
            preemptions_before: before,
        };
        // Last point has an alternative but it would exceed bound 0;
        // the earlier free switch (current not eligible) is taken.
        let schedule = vec![cp(2, 0, false, 0), cp(2, 0, true, 0)];
        assert_eq!(next_prefix(&schedule, 0), Some(vec![1]));
        // With bound 1 the deeper alternative is affordable.
        assert_eq!(next_prefix(&schedule, 1), Some(vec![0, 1]));
        // Fully exhausted.
        let done = vec![cp(1, 0, true, 0)];
        assert_eq!(next_prefix(&done, 2), None);
    }
}
