//! Model of the checkpoint **drain protocol**: workers quiesce at the
//! quantum barrier, the main thread takes a single-threaded snapshot,
//! then releases the next quantum
//! (`califorms-sim/src/multicore.rs::run_loop`'s checkpoint hook).
//!
//! Checkpoint capture has no locking of its own — its entire safety
//! argument is *ordering*: the snapshot runs strictly after
//! `wait_all_done` returned (every worker parked, `running == 0`,
//! tasks reclaimed) and strictly before the next `release`. This model
//! checks exactly that argument. Per-core progress counters stand in
//! for the simulated state (L1s, stats, replay cursors): each worker
//! advances its counter by one during the bound phase, and the
//! snapshot asserts it observes every counter at the *post-quantum*
//! value with the barrier drained — a snapshot overlapping any
//! worker's bound phase would capture torn state that can never resume
//! bit-identically.
//!
//! [`DrainVariant::SnapshotBeforeDrain`] re-introduces the tempting
//! bug: capturing right after `release` without waiting for the drain
//! ("the workers have probably finished by now"). The explorer
//! catches it with a counterexample schedule in which the snapshot
//! reads a counter its worker has not yet advanced.

use super::explorer::{explore, ExploreReport, ModelFn, Sched, SchedConfig};
use super::models::{Barrier, BarrierVariant};
use super::shim::Mutex;
use std::sync::Arc;

/// Drain-protocol variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainVariant {
    /// The production order: release → workers run → `wait_all_done`
    /// (drain) → snapshot → next release.
    Correct,
    /// BUG: the snapshot is taken after `release` but *before*
    /// `wait_all_done` — it races the bound phase it should follow.
    SnapshotBeforeDrain,
}

/// Builds the drain model: `workers` persistent workers driven through
/// `quanta` epochs with a snapshot every `interval` quanta — the exact
/// lifecycle of `run_loop` with a checkpoint sink installed.
pub fn drain_model(
    workers: usize,
    quanta: usize,
    interval: usize,
    variant: DrainVariant,
) -> ModelFn {
    assert!(interval > 0, "checkpoint interval must be positive");
    Arc::new(move |s: Sched| {
        let barrier = Arc::new(Barrier::new(&s));
        // Per-core bound-phase progress, the stand-in for all state a
        // checkpoint serializes.
        let counters: Arc<Vec<Mutex<u64>>> = Arc::new(
            (0..workers)
                .map(|c| Mutex::new(&s, &format!("counters{c}"), 0))
                .collect(),
        );
        let mut handles = Vec::new();
        for c in 0..workers {
            let b = Arc::clone(&barrier);
            let cnt = Arc::clone(&counters);
            // analyze::allow(thread-spawn): model threads run under the virtual scheduler, not the runtime pool
            handles.push(s.spawn(move |s2| {
                let mut seen = 0u64;
                while b.wait_for_quantum(&s2, &mut seen, BarrierVariant::Correct) {
                    // Bound phase: advance this core's state.
                    *cnt[c].lock() += 1;
                    b.worker_done();
                }
            }));
        }
        // Snapshot: the single-threaded capture. Asserts the two drain
        // invariants — no worker still running, and every core's state
        // at the post-quantum value.
        let snapshot = |q: usize| {
            s.check(
                barrier.state.lock().running == 0,
                "drain must complete before the checkpoint snapshot",
            );
            for c in 0..workers {
                let v = *counters[c].lock();
                s.check(
                    v == (q as u64) + 1,
                    "snapshot observed a worker mid-bound-phase (torn checkpoint)",
                );
            }
        };
        for q in 0..quanta {
            barrier.release(workers, BarrierVariant::Correct);
            if variant == DrainVariant::SnapshotBeforeDrain && (q + 1) % interval == 0 {
                // BUG (modelled): capture before the quantum drains.
                snapshot(q);
            }
            barrier.wait_all_done();
            if variant == DrainVariant::Correct && (q + 1) % interval == 0 {
                snapshot(q);
            }
        }
        barrier.stop();
        for h in handles {
            h.join();
        }
        for c in 0..workers {
            s.check(
                *counters[c].lock() == quanta as u64,
                "every core ran every quantum exactly once",
            );
        }
    })
}

/// Explores the drain model exhaustively up to `bound` preemptions.
pub fn check_drain(
    workers: usize,
    quanta: usize,
    interval: usize,
    variant: DrainVariant,
    bound: usize,
    max_schedules: usize,
) -> ExploreReport {
    explore(
        &SchedConfig {
            preemption_bound: bound,
            max_schedules,
        },
        drain_model(workers, quanta, interval, variant),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_drain_is_clean_and_complete_at_bound_2() {
        let rep = check_drain(2, 2, 1, DrainVariant::Correct, 2, 200_000);
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete, "bounded space must be exhausted");
        assert!(rep.schedules_run > 100, "non-trivial schedule space");
    }

    #[test]
    fn snapshot_before_drain_is_caught() {
        let rep = check_drain(2, 1, 1, DrainVariant::SnapshotBeforeDrain, 2, 200_000);
        let f = rep.failure.expect("torn snapshot must be detected");
        assert_eq!(f.kind, "assertion");
        assert!(
            f.message.contains("drain") || f.message.contains("mid-bound-phase"),
            "message names the hazard: {}",
            f.message
        );
        assert!(!f.trace.is_empty(), "counterexample trace captured");
    }
}
