//! Model of the speculative-weave commit protocol: per-bank
//! claim → execute → commit/abort across an epoch boundary.
//!
//! The protocol under test is the optimistic execution path the
//! multicore engine now ships (`MulticoreConfig::with_speculative_weave`,
//! DESIGN.md §15): workers speculate against a shared memory bank
//! without holding its lock for the whole quantum. The production
//! engine *strengthens* the commit rule modelled here — it commits an
//! epoch only if **every** stream validated (all-private outcomes,
//! pairwise-disjoint bank sets) and otherwise demotes the whole epoch
//! to the serial residue path, whereas the model commits per
//! speculation; all-or-nothing is a refinement (it commits a subset of
//! the schedules the model admits), so the model's safety argument and
//! its lost-update counterexample carry over. Per epoch, a worker
//!
//! 1. reads the bank's base value under a read lock (the *speculation
//!    snapshot*),
//! 2. tries to claim the bank with a single `compare_exchange(FREE, w)`
//!    on the bank's claim word — success means the speculation is
//!    *registered* (and the claim is released immediately after); a
//!    failed claim means another worker is registering right now, so
//!    the update is demoted to the *residue* (serial) path,
//! 3. reports all its speculations and residues to the coordinator over
//!    a channel.
//!
//! The coordinator (single-threaded — this is the commit point) drains
//! exactly one report per worker, sorts them by worker id for
//! determinism, then for each speculation **validates before
//! committing**: the bank value must still equal the speculation's
//! snapshot, otherwise an earlier commit already changed the bank and
//! the update is demoted to the residue path. Residues are applied last,
//! serially, under the write lock — they read the current value, so they
//! can never lose an update.
//!
//! [`WeaveVariant::CommitBeforeCheck`] re-introduces the classic
//! optimistic-concurrency bug: committing the speculated value without
//! validating the snapshot. Two workers that both registered against the
//! same bank then overwrite each other — the second commit silently
//! discards the first (a lost update). The per-(worker, bank, epoch)
//! deltas are distinct powers of two, so any lost update makes the final
//! bank value verifiably wrong and the checker reports exactly which
//! schedule loses it.

use super::explorer::{explore, ExploreReport, ModelFn, Sched, SchedConfig};
use super::shim::{channel, AtomicUsize, RwLock};
use std::sync::Arc;

/// Claim word value meaning "no worker is registering a speculation".
const FREE: usize = usize::MAX;

/// Memory banks under speculation.
const BANKS: usize = 2;

/// Weave commit-protocol variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeaveVariant {
    /// The production protocol: validate the snapshot, then commit.
    Correct,
    /// BUG: commit the speculated value without validating — lost
    /// updates when two workers speculate against the same bank.
    CommitBeforeCheck,
}

/// One shared memory bank: a claim word guarding speculation
/// registration, and the data cell itself.
struct Bank {
    claim: AtomicUsize,
    data: RwLock<u64>,
}

/// A registered speculation: "I read `base` from `bank` and want to
/// make it `base + add`".
struct Spec {
    bank: usize,
    base: u64,
    add: u64,
}

/// Everything one worker did in one epoch.
struct WorkerReport {
    worker: usize,
    specs: Vec<Spec>,
    /// Updates demoted at claim time: (bank, add).
    residue: Vec<(usize, u64)>,
}

/// The delta worker `w` applies to bank `b` in epoch `e` — distinct
/// powers of two, so the final sum pinpoints any lost update.
fn delta(workers: usize, w: usize, b: usize, e: usize) -> u64 {
    1u64 << (w + workers * (b + BANKS * e))
}

/// Reads a bank's committed value. Its own function so the read guard
/// demonstrably ends here — `let x = *bank.data.read();` at a call site
/// would be scoped to the caller's block by the lock-order pass's
/// conservative guard heuristic and flagged as held across later calls.
fn bank_value(bank: &Bank) -> u64 {
    *bank.data.read()
}

/// Builds the weave model: per epoch, `workers` fresh speculating
/// workers plus the committing coordinator (the model's main thread).
pub fn weave_model(workers: usize, epochs: usize, variant: WeaveVariant) -> ModelFn {
    Arc::new(move |s: Sched| {
        let banks: Arc<Vec<Bank>> = Arc::new(
            (0..BANKS)
                .map(|b| Bank {
                    claim: AtomicUsize::new(&s, &format!("claim{b}"), FREE),
                    data: RwLock::new(&s, &format!("bank{b}"), 0),
                })
                .collect(),
        );
        let (tx, rx) = channel::<WorkerReport>(&s, "reports");
        for e in 0..epochs {
            let epoch_start: Vec<u64> = (0..BANKS).map(|b| bank_value(&banks[b])).collect();
            let mut handles = Vec::new();
            for w in 0..workers {
                let bk = Arc::clone(&banks);
                let tx = tx.clone();
                // analyze::allow(thread-spawn): model threads run under the virtual scheduler, not the runtime pool
                handles.push(s.spawn(move |_| {
                    let mut specs = Vec::new();
                    let mut residue = Vec::new();
                    for (b, bank) in bk.iter().enumerate() {
                        let add = delta(workers, w, b, e);
                        // 1. Speculation snapshot under the read lock.
                        let base = bank_value(bank);
                        // 2. Register the speculation: claim the bank.
                        match bank.claim.compare_exchange(FREE, w) {
                            Ok(_) => {
                                specs.push(Spec { bank: b, base, add });
                                bank.claim.store(FREE);
                            }
                            // Claim contended: demote to the serial path.
                            Err(_) => residue.push((b, add)),
                        }
                    }
                    // 3. Hand everything to the commit point.
                    tx.send(WorkerReport {
                        worker: w,
                        specs,
                        residue,
                    });
                }));
            }
            // Commit point: exactly one report per worker, then quiesce.
            let mut reports = Vec::new();
            for _ in 0..workers {
                reports.push(rx.recv().expect("worker reports before exiting"));
            }
            for h in handles {
                h.join();
            }
            // Deterministic commit order regardless of arrival order.
            reports.sort_by_key(|r| r.worker);
            let mut residue: Vec<(usize, u64)> = Vec::new();
            for r in &reports {
                residue.extend(r.residue.iter().copied());
                for sp in &r.specs {
                    let mut g = banks[sp.bank].data.write();
                    match variant {
                        WeaveVariant::Correct => {
                            if *g == sp.base {
                                *g = sp.base + sp.add;
                            } else {
                                // Snapshot stale: an earlier commit won
                                // the bank this epoch. Serial path.
                                drop(g);
                                residue.push((sp.bank, sp.add));
                            }
                        }
                        WeaveVariant::CommitBeforeCheck => {
                            // BUG (modelled): no validation — overwrites
                            // whatever an earlier speculation committed.
                            *g = sp.base + sp.add;
                        }
                    }
                }
            }
            // Residue path: serial read-modify-write, cannot lose updates.
            for (b, add) in residue {
                let mut g = banks[b].data.write();
                *g += add;
            }
            // Epoch invariants: every delta landed exactly once, and no
            // claim leaked past the quiesce point.
            for b in 0..BANKS {
                let expect: u64 =
                    epoch_start[b] + (0..workers).map(|w| delta(workers, w, b, e)).sum::<u64>();
                let got = bank_value(&banks[b]);
                s.check(
                    got == expect,
                    "every worker's update committed exactly once per bank per epoch",
                );
                s.check(
                    banks[b].claim.load() == FREE,
                    "no speculation claim held across the epoch boundary",
                );
            }
        }
    })
}

/// Explores the weave model exhaustively up to `bound` preemptions.
pub fn check_weave(
    workers: usize,
    epochs: usize,
    variant: WeaveVariant,
    bound: usize,
    max_schedules: usize,
) -> ExploreReport {
    explore(
        &SchedConfig {
            preemption_bound: bound,
            max_schedules,
        },
        weave_model(workers, epochs, variant),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_weave_is_clean_and_complete_at_bound_2() {
        let rep = check_weave(2, 1, WeaveVariant::Correct, 2, 100_000);
        assert!(rep.failure.is_none(), "failure: {:?}", rep.failure);
        assert!(rep.complete, "bounded space must be exhausted");
        assert!(rep.schedules_run > 10, "non-trivial schedule space");
    }

    #[test]
    fn commit_before_check_loses_an_update() {
        let rep = check_weave(2, 1, WeaveVariant::CommitBeforeCheck, 2, 100_000);
        let f = rep.failure.expect("lost update must be detected");
        assert_eq!(f.kind, "assertion");
        assert!(f.message.contains("exactly once"), "message: {}", f.message);
        assert!(!f.trace.is_empty(), "counterexample trace captured");
    }

    #[test]
    fn deltas_are_distinct_powers_of_two() {
        let mut seen = std::collections::BTreeSet::new();
        for e in 0..2 {
            for b in 0..BANKS {
                for w in 0..2 {
                    let d = delta(2, w, b, e);
                    assert!(d.is_power_of_two());
                    assert!(seen.insert(d), "duplicate delta {d}");
                }
            }
        }
    }
}
