//! Protocol models of the parallel runtime's two concurrency cores:
//! the `QuantumBarrier` epoch protocol and the worker-slot task
//! handoff (`califorms-sim/src/runtime.rs` / `multicore.rs`).
//!
//! Each model mirrors the production control flow statement for
//! statement over the shim sync types, with the simulated payloads
//! (cycle bounds, replay cursors, L1s) reduced to counters. Deliberately
//! broken variants re-introduce the classic bug in each protocol so the
//! test suite can prove the detectors fire:
//!
//! * [`BarrierVariant::NotifyOneRelease`] — `release()` wakes only one
//!   worker; with ≥2 workers the rest sleep through the epoch and
//!   `wait_all_done` deadlocks (a lost wakeup, surfacing as deadlock).
//! * [`BarrierVariant::UnlockedWaitGap`] — the worker checks the epoch,
//!   drops the lock, reacquires, then waits *without rechecking*: a
//!   release in the gap is missed forever (check-then-wait race).
//! * [`SlotVariant::DoneBeforeReturn`] — the worker reports
//!   `worker_done` *before* putting its task back in the slot, so the
//!   main thread can reclaim an empty slot (the exact hazard the
//!   production `missing_slot` path guards against).

use super::explorer::{explore, explore_random, ExploreReport, ModelFn, Sched, SchedConfig};
use super::shim::{Condvar, Mutex};
use std::sync::Arc;

/// Barrier protocol variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierVariant {
    /// The production protocol.
    Correct,
    /// `release()` uses `notify_one` — loses wakeups for ≥2 workers.
    NotifyOneRelease,
    /// Worker re-waits without rechecking the epoch after an
    /// unlock/relock gap.
    UnlockedWaitGap,
}

/// Worker-slot handoff variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotVariant {
    /// The production order: task returned to the slot, then
    /// `worker_done`.
    Correct,
    /// `worker_done` signalled before the task is returned.
    DoneBeforeReturn,
}

/// Mirror of the production `BarrierState` (quantum_end elided — its
/// value doesn't affect the protocol).
pub(super) struct BarrierState {
    pub(super) epoch: u64,
    pub(super) running: usize,
    pub(super) stop: bool,
}

pub(super) struct Barrier {
    pub(super) state: Mutex<BarrierState>,
    start: Condvar,
    done: Condvar,
}

impl Barrier {
    pub(super) fn new(s: &Sched) -> Self {
        Self {
            state: Mutex::new(
                s,
                "state",
                BarrierState {
                    epoch: 0,
                    running: 0,
                    stop: false,
                },
            ),
            start: Condvar::new(s, "start"),
            done: Condvar::new(s, "done"),
        }
    }

    /// Worker side: mirrors `QuantumBarrier::wait_for_quantum`,
    /// asserting epoch monotonicity (each worker sees every epoch
    /// exactly once, in order).
    pub(super) fn wait_for_quantum(
        &self,
        s: &Sched,
        seen: &mut u64,
        variant: BarrierVariant,
    ) -> bool {
        let mut g = self.state.lock();
        loop {
            if g.stop {
                return false;
            }
            if g.epoch != *seen {
                s.check(
                    g.epoch == *seen + 1,
                    "epoch must advance by exactly one per observed quantum",
                );
                *seen = g.epoch;
                return true;
            }
            g = if variant == BarrierVariant::UnlockedWaitGap {
                // BUG (modelled): drop the lock and reacquire before
                // waiting. A release() landing in the gap is missed —
                // the epoch already changed, but the worker commits to
                // sleeping anyway.
                drop(g);
                let relocked = self.state.lock();
                self.start.wait(relocked)
            } else {
                self.start.wait(g)
            };
        }
    }

    /// Worker side: mirrors `QuantumBarrier::worker_done`.
    pub(super) fn worker_done(&self) {
        let mut g = self.state.lock();
        g.running -= 1;
        if g.running == 0 {
            // Like production: notify while still holding the lock.
            self.done.notify_all();
        }
    }

    /// Main side: mirrors `QuantumBarrier::release`.
    pub(super) fn release(&self, workers: usize, variant: BarrierVariant) {
        let mut g = self.state.lock();
        g.epoch += 1;
        g.running = workers;
        drop(g);
        if variant == BarrierVariant::NotifyOneRelease {
            // BUG (modelled): only one worker wakes.
            self.start.notify_one();
        } else {
            self.start.notify_all();
        }
    }

    /// Main side: mirrors `QuantumBarrier::wait_all_done`.
    pub(super) fn wait_all_done(&self) {
        let mut g = self.state.lock();
        while g.running > 0 {
            g = self.done.wait(g);
        }
    }

    /// Main side: mirrors `QuantumBarrier::stop`.
    pub(super) fn stop(&self) {
        let mut g = self.state.lock();
        g.stop = true;
        drop(g);
        self.start.notify_all();
    }
}

/// Builds the barrier model: `workers` persistent workers driven through
/// `quanta` epochs, then shut down and joined — the exact lifecycle of
/// `run_sources`.
pub fn barrier_model(workers: usize, quanta: usize, variant: BarrierVariant) -> ModelFn {
    Arc::new(move |s: Sched| {
        let barrier = Arc::new(Barrier::new(&s));
        let mut handles = Vec::new();
        for _ in 0..workers {
            let b = Arc::clone(&barrier);
            // analyze::allow(thread-spawn): model threads run under the virtual scheduler, not the runtime pool
            handles.push(s.spawn(move |s2| {
                let mut seen = 0u64;
                while b.wait_for_quantum(&s2, &mut seen, variant) {
                    b.worker_done();
                }
                s2.check(
                    seen as usize == quanta,
                    "worker observed every quantum before shutdown",
                );
            }));
        }
        for _ in 0..quanta {
            barrier.release(workers, variant);
            barrier.wait_all_done();
        }
        barrier.stop();
        for h in handles {
            h.join();
        }
        let g = barrier.state.lock();
        s.check(g.epoch as usize == quanta, "final epoch equals quanta run");
        s.check(g.running == 0, "no worker still counted running");
    })
}

/// Builds the worker-slot handoff model: per-worker `Mutex<Option<u64>>`
/// slots, tasks lent before each quantum and reclaimed after
/// `wait_all_done` — mirroring `run_sources`' lend/reclaim loops with
/// the task reduced to a counter the worker increments each quantum.
pub fn slot_model(workers: usize, quanta: usize, variant: SlotVariant) -> ModelFn {
    Arc::new(move |s: Sched| {
        let barrier = Arc::new(Barrier::new(&s));
        let slots: Arc<Vec<Mutex<Option<u64>>>> = Arc::new(
            (0..workers)
                .map(|c| Mutex::new(&s, &format!("slot{c}"), None))
                .collect(),
        );
        let mut handles = Vec::new();
        for c in 0..workers {
            let b = Arc::clone(&barrier);
            let sl = Arc::clone(&slots);
            // analyze::allow(thread-spawn): model threads run under the virtual scheduler, not the runtime pool
            handles.push(s.spawn(move |s2| {
                let mut seen = 0u64;
                while b.wait_for_quantum(&s2, &mut seen, BarrierVariant::Correct) {
                    let task = sl[c].lock().take();
                    if let Some(t) = task {
                        // "Run" the task: one unit of bound-phase work.
                        let done = t + 1;
                        if variant == SlotVariant::DoneBeforeReturn {
                            // BUG (modelled): completion signalled while
                            // the slot is still empty — the main thread
                            // may reclaim before the task is returned.
                            b.worker_done();
                            *sl[c].lock() = Some(done);
                        } else {
                            *sl[c].lock() = Some(done);
                            b.worker_done();
                        }
                    } else {
                        b.worker_done();
                    }
                }
            }));
        }
        // Main side: lend → release → wait → reclaim, once per quantum.
        let mut tasks: Vec<u64> = vec![0; workers];
        for q in 0..quanta {
            for (c, t) in tasks.iter().enumerate() {
                *slots[c].lock() = Some(*t);
            }
            barrier.release(workers, BarrierVariant::Correct);
            barrier.wait_all_done();
            for (c, t) in tasks.iter_mut().enumerate() {
                let got = slots[c].lock().take();
                match got {
                    Some(v) => *t = v,
                    None => s.check(
                        false,
                        "worker slot empty at reclaim (task not returned before worker_done)",
                    ),
                }
            }
            for t in &tasks {
                s.check(
                    *t == (q as u64) + 1,
                    "each task ran exactly once per quantum",
                );
            }
        }
        barrier.stop();
        for h in handles {
            h.join();
        }
    })
}

/// Explores the barrier model exhaustively up to `bound` preemptions.
pub fn check_barrier(
    workers: usize,
    quanta: usize,
    variant: BarrierVariant,
    bound: usize,
    max_schedules: usize,
) -> ExploreReport {
    explore(
        &SchedConfig {
            preemption_bound: bound,
            max_schedules,
        },
        barrier_model(workers, quanta, variant),
    )
}

/// Explores the worker-slot model exhaustively up to `bound` preemptions.
pub fn check_worker_slots(
    workers: usize,
    quanta: usize,
    variant: SlotVariant,
    bound: usize,
    max_schedules: usize,
) -> ExploreReport {
    explore(
        &SchedConfig {
            preemption_bound: bound,
            max_schedules,
        },
        slot_model(workers, quanta, variant),
    )
}

/// Seeded-random large-schedule sweep of both correct models.
pub fn random_sweep(workers: usize, quanta: usize, seed: u64, schedules: usize) -> ExploreReport {
    let rep = explore_random(
        seed,
        schedules,
        barrier_model(workers, quanta, BarrierVariant::Correct),
    );
    if rep.failure.is_some() {
        return rep;
    }
    let slots = explore_random(
        seed ^ 0x5107_AB1E,
        schedules,
        slot_model(workers, quanta, SlotVariant::Correct),
    );
    ExploreReport {
        schedules_run: rep.schedules_run + slots.schedules_run,
        failure: slots.failure,
        complete: false,
    }
}
