//! Loom-style concurrency model checking for the parallel runtime's
//! protocols.
//!
//! Real OS threads run the model code, but a virtual scheduler
//! serializes them: exactly one model thread holds the "baton" at a
//! time, and every *visible operation* (mutex acquire, condvar
//! wait/notify, atomic access, spawn, join, yield) is a schedule point
//! where the explorer decides who runs next. Because the interleaving
//! is chosen by the explorer rather than the OS, an execution can be
//! replayed exactly from its decision sequence — which is what makes
//! exhaustive enumeration and counterexample reporting possible.
//!
//! * [`shim`] — drop-in `Mutex`/`RwLock`/`Condvar`/`AtomicU64`/
//!   `AtomicBool`/`AtomicUsize`/mpsc-style channel/spawn/join types
//!   mirroring the `std::sync` API, each routing its visible operations
//!   through the scheduler.
//! * [`explorer`] — the controller itself: DFS over all interleavings
//!   up to a preemption bound (Musuvathi & Qadeer-style iterative
//!   context bounding), plus a seeded-random large-schedule mode.
//!   Detects deadlocks (no eligible thread while unfinished threads
//!   remain — which is also how a lost wakeup manifests) and model
//!   assertion failures, and reports the failing schedule as an event
//!   trace.
//! * [`models`] — faithful state-machine models of the
//!   `QuantumBarrier` epoch protocol and the worker-slot task handoff
//!   from `califorms-sim`, with deliberately-broken variants
//!   (`notify_one` release, check-then-wait gap, done-before-return)
//!   that prove the detectors actually fire.
//! * [`drain`] — the checkpoint drain protocol (workers quiesce at the
//!   quantum barrier → single-threaded snapshot → next release), with a
//!   `SnapshotBeforeDrain` variant whose torn snapshot the explorer
//!   catches with a counterexample trace.
//! * [`weave`] — the speculative-weave commit protocol now shipped as
//!   the optimistic execution path of `MulticoreEngine` (DESIGN.md
//!   §15): per-bank claim → execute → commit/abort across an epoch
//!   boundary, with a `CommitBeforeCheck` variant whose lost update the
//!   explorer catches with a counterexample trace.
//!
//! ## Granularity
//!
//! Scheduling decisions happen at visible-op boundaries, not between
//! arbitrary instructions; mutex *release* is not a schedule point (it
//! only widens the eligible set, which the next schedule point
//! observes), and the model condvars have no spurious wakeups. These
//! choices shrink the schedule space without hiding the failure modes
//! this suite exists to catch: every blocking edge (acquire, wait,
//! join) and every wakeup edge (notify) is still explored.

pub mod drain;
pub mod explorer;
pub mod models;
pub mod shim;
pub mod weave;

pub use drain::{check_drain, DrainVariant};
pub use explorer::{explore, explore_random, ExploreReport, Failure, ModelFn, Sched, SchedConfig};
pub use models::{check_barrier, check_worker_slots, BarrierVariant, SlotVariant};
pub use weave::{check_weave, WeaveVariant};
