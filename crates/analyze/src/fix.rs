//! `--fix` support: mechanical auto-fixes for findings with an
//! unambiguous remediation. Currently that is exactly one lint,
//! `missing-forbid-unsafe` — the fix inserts `#![forbid(unsafe_code)]`
//! into the crate root, after any leading inner doc comments (`//!`)
//! and inner attributes (`#![...]`) so rustc's "inner attributes must
//! precede items" rule is respected.

use crate::diagnostics::Report;
use std::fs;
use std::path::Path;

/// Returns `source` with `#![forbid(unsafe_code)]` inserted at the
/// first position after leading inner doc comments, inner attributes,
/// and blank lines. A blank line is added after the attribute when the
/// next line is not already blank.
pub fn insert_forbid_unsafe(source: &str) -> String {
    let lines: Vec<&str> = source.split_inclusive('\n').collect();
    let mut at = 0usize;
    let mut in_attr = false;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim();
        if in_attr {
            // A multi-line inner attribute continues until its `]`.
            if t.ends_with(']') {
                in_attr = false;
            }
            at = i + 1;
            continue;
        }
        if t.starts_with("//!") || t.is_empty() {
            at = i + 1;
            continue;
        }
        if t.starts_with("#![") {
            if !t.ends_with(']') {
                in_attr = true;
            }
            at = i + 1;
            continue;
        }
        break;
    }
    let mut out = String::with_capacity(source.len() + 32);
    for l in &lines[..at] {
        out.push_str(l);
    }
    // Separate the attribute from a doc-comment header with a blank line.
    if at > 0 && lines[at - 1].trim().starts_with("//!") {
        out.push('\n');
    }
    out.push_str("#![forbid(unsafe_code)]\n");
    if lines.get(at).is_some_and(|l| !l.trim().is_empty()) {
        out.push('\n');
    }
    for l in &lines[at..] {
        out.push_str(l);
    }
    out
}

/// Applies every auto-fixable finding in `report` to the tree under
/// `root`. Returns the repo-relative paths that were rewritten.
pub fn apply_fixes(root: &Path, report: &Report) -> std::io::Result<Vec<String>> {
    let mut fixed = Vec::new();
    for f in &report.findings {
        if f.lint != "missing-forbid-unsafe" {
            continue;
        }
        let abs = root.join(&f.path);
        let source = fs::read_to_string(&abs)?;
        fs::write(&abs, insert_forbid_unsafe(&source))?;
        fixed.push(f.path.clone());
    }
    fixed.sort();
    fixed.dedup();
    Ok(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint_source, SourceContext};
    use crate::LintConfig;

    fn is_clean_root(src: &str) -> bool {
        let config = LintConfig::default();
        lint_source(
            &SourceContext {
                path: "crates/x/src/lib.rs",
                config: &config,
            },
            src,
        )
        .findings
        .is_empty()
    }

    #[test]
    fn inserts_after_doc_comments_and_inner_attrs() {
        let src = "//! Crate docs.\n//! More docs.\n\n#![warn(missing_docs)]\n\npub fn f() {}\n";
        let fixed = insert_forbid_unsafe(src);
        let pos_attr = fixed.find("#![forbid(unsafe_code)]").unwrap();
        let pos_item = fixed.find("pub fn f").unwrap();
        let pos_warn = fixed.find("#![warn").unwrap();
        assert!(pos_warn < pos_attr && pos_attr < pos_item, "{fixed}");
        assert!(is_clean_root(&fixed));
    }

    #[test]
    fn inserts_at_top_of_a_bare_file() {
        let fixed = insert_forbid_unsafe("pub fn f() {}\n");
        assert!(
            fixed.starts_with("#![forbid(unsafe_code)]\n\npub fn f"),
            "{fixed}"
        );
        assert!(is_clean_root(&fixed));
    }

    #[test]
    fn round_trips_to_clean() {
        let src = "//! Docs.\npub fn f() {}\n";
        assert!(!is_clean_root(src));
        assert!(is_clean_root(&insert_forbid_unsafe(src)));
    }
}
