//! Fixture: thread spawns outside the parallel runtime.

pub fn run() {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().ok();
    let b = std::thread::Builder::new();
    let h2 = b.spawn(|| 2);
    drop(h2);
}
