//! Fixture: a telemetry-style span timer. Legal in the allowlisted
//! span-clock module, a `host-time` violation anywhere else in the
//! telemetry crate (counters must stay deterministic).

pub fn span_start() -> Instant {
    Instant::now()
}
