//! Clean negative for the workspace passes: consistent lock order,
//! allocation only on the cold path, and a justified relaxed access.

pub fn worker_loop(state: &M, panics: &M) {
    let _gs = state.lock();
    let _gp = panics.lock();
    step();
}

pub fn reporter(state: &M, panics: &M) {
    let _gs = state.lock();
    let _gp = panics.lock();
}

fn step() {
    let x = 1;
    touch(x);
}

pub fn cold_summary() -> String {
    format!("not reachable from a worker root")
}

pub fn seq_cst(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}
