//! Fixture: crate root missing the forbid(unsafe_code) attribute.

pub fn nothing() {}
