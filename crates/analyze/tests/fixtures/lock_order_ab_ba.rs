//! Seeded AB-BA deadlock across the runtime's named lock classes:
//! `forward` takes barrier-state then panic-list, `backward` the
//! reverse. The lock-order pass must report one cycle naming both
//! acquisition sites.

pub fn forward(state: &M, panics: &M) {
    let _gs = state.lock();
    let _gp = panics.lock();
}

pub fn backward(state: &M, panics: &M) {
    let _gp = panics.lock();
    let _gs = state.lock();
}
