//! Fixture: suppression directives, one valid and one malformed.

pub struct Cache {
    // analyze::allow(nondet-map): scratch map, never iterated in results
    pub scratch: HashMap<u64, u32>,
    // analyze::allow(nondet-map)
    pub other: HashMap<u64, u32>,
}
