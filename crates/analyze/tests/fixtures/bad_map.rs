//! Fixture: default-hasher maps in a result-bearing crate.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    pub by_line: HashMap<u64, u32>,
    pub seen: HashSet<u64>,
}

pub fn build() -> HashMap<u64, u32, std::collections::hash_map::RandomState> {
    HashMap::new()
}
