//! Seeded hot-path violations one call away from the worker root: the
//! old per-function name heuristic only saw `worker_loop`'s own body;
//! the reachability pass must follow the call into `helper`.

pub fn worker_loop(src: &S) {
    helper(src);
}

fn helper(src: &S) {
    let v = src.next().unwrap();
    let label = format!("step {v}");
    push(label);
}
