//! Fixture: iterating a default-hasher map.

pub fn total() -> u64 {
    let mut counts = HashMap::new();
    counts.insert(1u64, 2u64);
    let mut sum = 0;
    for k in counts.keys() {
        sum += *k;
    }
    sum
}
