//! Fixture: a clean result-bearing crate root — deterministic hasher,
//! full three-parameter map type, forbid attribute present.
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

pub struct LineHasher(u64);

pub type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

pub fn sum(map: &LineMap<u64>) -> u64 {
    map.values().sum()
}
