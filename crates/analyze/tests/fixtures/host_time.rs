//! Fixture: host clock and OS entropy in a simulated-result path.

pub fn stamp() -> u64 {
    let t = Instant::now();
    let s = SystemTime::now();
    let r = thread_rng().next_u64();
    t.elapsed().as_nanos() as u64 ^ r
}
