//! Seeded atomic-ordering violation: the first relaxed access has no
//! `analyze::order` justification; the second does and must not fire.

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed);
    // analyze::order(monotonic counter; readers tolerate staleness)
    c.load(Ordering::Relaxed)
}
