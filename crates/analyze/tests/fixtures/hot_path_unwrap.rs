//! Fixture: bare unwrap/expect inside a hot-path function.

fn worker_loop(slot: &std::sync::Mutex<u64>) -> u64 {
    let g = slot.lock().unwrap();
    let v = std::env::var("X").expect("env");
    *g + v.len() as u64
}

fn elsewhere(slot: &std::sync::Mutex<u64>) -> u64 {
    *slot.lock().unwrap()
}
