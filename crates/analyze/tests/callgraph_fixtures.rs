//! Fixture-driven regression tests for the workspace passes (lock-order,
//! hot-path reachability, atomic-ordering): each seeded-violation file
//! must produce exactly the expected `(lint, line, col)` spans when
//! analyzed as a synthetic workspace, and the clean fixture must produce
//! nothing. Driving [`analyze_sources`] end-to-end also locks in the
//! JSON report shape (schema version, deterministic ordering).

use califorms_analyze::config::LintConfig;
use califorms_analyze::diagnostics::{Report, SCHEMA_VERSION};
use califorms_analyze::workspace::analyze_sources;
use std::path::Path;

fn fixture(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn analyze(files: &[(&str, &str)]) -> Report {
    analyze_sources(
        files
            .iter()
            .map(|(p, f)| ((*p).to_string(), fixture(f)))
            .collect(),
        &LintConfig::default(),
    )
}

/// (lint, line, col) triples, in report order.
fn spans(report: &Report) -> Vec<(String, u32, u32)> {
    report
        .findings
        .iter()
        .map(|f| (f.lint.clone(), f.line, f.col))
        .collect()
}

#[test]
fn ab_ba_fixture_yields_one_lock_order_cycle_naming_both_sites() {
    let report = analyze(&[("crates/sim/src/fixture_locks.rs", "lock_order_ab_ba.rs")]);
    assert_eq!(
        spans(&report),
        vec![("lock-order".to_string(), 7, 21)] // state.lock() in `forward`
    );
    let f = &report.findings[0];
    assert_eq!(
        f.message,
        "lock-order cycle: `barrier-state` → `panic-list` → `barrier-state`"
    );
    // The witness must name both acquisition sites of the inversion:
    // forward's nested acquire and backward's reversed one.
    assert!(
        f.help.contains("crates/sim/src/fixture_locks.rs:7:21"),
        "{}",
        f.help
    );
    assert!(
        f.help.contains("crates/sim/src/fixture_locks.rs:12:22"),
        "{}",
        f.help
    );
    assert!(f.help.contains("; and back: "), "{}", f.help);
}

#[test]
fn hot_path_violations_are_caught_one_call_from_the_root() {
    let report = analyze(&[("crates/sim/src/multicore.rs", "hot_path_indirect.rs")]);
    assert_eq!(
        spans(&report),
        vec![
            ("hot-path-unwrap".to_string(), 10, 24), // .unwrap() in helper
            ("hot-path-alloc".to_string(), 11, 17),  // format! in helper
        ]
    );
    // The chain proves the reachability pass (not the old per-function
    // name heuristic) found these: the violations are in `helper`, not
    // in the root itself.
    for f in &report.findings {
        assert!(
            f.help.contains("worker_loop") && f.help.contains("helper"),
            "{}",
            f.help
        );
    }
}

#[test]
fn unjustified_weak_ordering_is_flagged_and_justified_one_is_not() {
    let report = analyze(&[("crates/core/src/fixture_atomics.rs", "atomic_order.rs")]);
    assert_eq!(
        spans(&report),
        vec![("atomic-ordering".to_string(), 5, 20)] // fetch_add's Relaxed
    );
    assert!(report.findings[0].message.contains("Ordering::Relaxed"));
}

#[test]
fn clean_fixture_produces_no_findings_across_all_passes() {
    let report = analyze(&[("crates/sim/src/multicore.rs", "callgraph_clean.rs")]);
    assert!(report.clean, "clean fixture flagged: {:?}", spans(&report));
    assert!(report.suppressions.is_empty());
}

#[test]
fn report_is_schema_versioned_and_byte_stable() {
    let run = || {
        analyze(&[
            // Deliberately passed out of path order; the report must
            // sort findings by (path, line, col, lint) regardless.
            ("crates/sim/src/multicore.rs", "hot_path_indirect.rs"),
            ("crates/core/src/fixture_atomics.rs", "atomic_order.rs"),
        ])
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "identical inputs, identical bytes"
    );
    assert!(
        a.to_json()
            .contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
        "schema version stamped"
    );
    let order = spans(&a);
    // Path-major order: the core finding (alphabetically first path)
    // leads even though its file was passed second.
    assert_eq!(order[0].0, "atomic-ordering", "order: {order:?}");
    assert_eq!(
        order[1..]
            .iter()
            .map(|(l, ..)| l.as_str())
            .collect::<Vec<_>>(),
        vec!["hot-path-unwrap", "hot-path-alloc"]
    );
}
