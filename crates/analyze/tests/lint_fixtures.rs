//! Fixture-driven lint regression tests: each seeded-violation file in
//! `tests/fixtures/` must produce exactly the expected lint names at the
//! expected file:line:col spans — and the clean fixture must produce
//! nothing. The fixtures are linted under synthetic repo-relative paths
//! so the path-scoped rules (result-bearing crates, hot-path functions,
//! crate roots) engage deterministically.

use califorms_analyze::config::LintConfig;
use califorms_analyze::lint::{lint_source, LintOutcome, SourceContext};
use std::path::Path;

fn lint_fixture(file: &str, as_path: &str) -> LintOutcome {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(file);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let config = LintConfig::default();
    lint_source(
        &SourceContext {
            path: as_path,
            config: &config,
        },
        &src,
    )
}

/// (lint, line, col) triples, in report order.
fn spans(out: &LintOutcome) -> Vec<(String, u32, u32)> {
    out.findings
        .iter()
        .map(|f| (f.lint.clone(), f.line, f.col))
        .collect()
}

#[test]
fn bad_map_flags_fields_ctor_and_random_state() {
    let out = lint_fixture("bad_map.rs", "crates/sim/src/fixture.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("nondet-map".to_string(), 6, 18),  // HashMap<u64, u32> field
            ("nondet-map".to_string(), 7, 15),  // HashSet<u64> field
            ("nondet-map".to_string(), 10, 65), // explicit RandomState
            ("nondet-map".to_string(), 11, 5),  // HashMap::new()
        ]
    );
    assert!(out.suppressions.is_empty());
}

#[test]
fn bad_map_is_ignored_outside_result_bearing_crates() {
    let out = lint_fixture("bad_map.rs", "crates/bench/src/fixture.rs");
    assert!(out.findings.is_empty());
}

#[test]
fn map_iter_flags_the_ctor_and_the_iteration() {
    let out = lint_fixture("map_iter.rs", "crates/alloc/src/fixture.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("nondet-map".to_string(), 4, 22),      // HashMap::new()
            ("nondet-map-iter".to_string(), 7, 21), // counts.keys()
        ]
    );
}

#[test]
fn host_time_flags_clock_and_entropy() {
    let out = lint_fixture("host_time.rs", "crates/oracle/src/fixture.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("host-time".to_string(), 4, 13), // Instant
            ("host-time".to_string(), 5, 13), // SystemTime
            ("host-rand".to_string(), 6, 13), // thread_rng
        ]
    );
}

#[test]
fn host_time_is_allowed_in_the_runtime_timing_modules() {
    let out = lint_fixture("host_time.rs", "crates/sim/src/runtime.rs");
    assert!(
        out.findings.is_empty(),
        "allowlisted module: {:?}",
        spans(&out)
    );
}

#[test]
fn telemetry_span_clock_is_allowed_only_in_the_span_module() {
    // The span clock's home module is allowlisted host time...
    let out = lint_fixture("telemetry.rs", "crates/telemetry/src/span.rs");
    assert!(
        out.findings.is_empty(),
        "span module is allowlisted: {:?}",
        spans(&out)
    );
    // ...but the same timer in the counter path still trips the lint:
    // counters are result-bearing and must never read host time.
    let out = lint_fixture("telemetry.rs", "crates/telemetry/src/counters.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("host-time".to_string(), 5, 24), // Instant return type
            ("host-time".to_string(), 6, 5),  // Instant::now()
        ]
    );
}

#[test]
fn stray_spawn_flags_both_spawn_forms() {
    let out = lint_fixture("stray_spawn.rs", "crates/trace/src/fixture.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("thread-spawn".to_string(), 4, 18), // std::thread::spawn
            ("thread-spawn".to_string(), 7, 16), // Builder .spawn(
        ]
    );
}

#[test]
fn stray_spawn_is_allowed_in_the_runtime() {
    let out = lint_fixture("stray_spawn.rs", "crates/sim/src/multicore.rs");
    assert!(out.findings.is_empty());
}

#[test]
fn hot_path_unwrap_flags_only_the_hot_function() {
    let out = lint_fixture("hot_path_unwrap.rs", "crates/sim/src/multicore.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("hot-path-unwrap".to_string(), 4, 25), // .unwrap() in worker_loop
            ("hot-path-unwrap".to_string(), 5, 32), // .expect() in worker_loop
        ]
    );
}

#[test]
fn missing_forbid_anchors_at_file_start() {
    let out = lint_fixture("missing_forbid.rs", "crates/fixture/src/lib.rs");
    assert_eq!(
        spans(&out),
        vec![("missing-forbid-unsafe".to_string(), 1, 1)]
    );
    // Non-root files in the same crate are exempt.
    let out = lint_fixture("missing_forbid.rs", "crates/fixture/src/other.rs");
    assert!(out.findings.is_empty());
}

#[test]
fn suppressed_fixture_applies_the_valid_directive_only() {
    let out = lint_fixture("suppressed.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        spans(&out),
        vec![
            ("malformed-allow".to_string(), 6, 1), // directive missing reason
            ("nondet-map".to_string(), 7, 16),     // not covered by malformed directive
        ]
    );
    assert_eq!(out.suppressions.len(), 1);
    assert_eq!(out.suppressions[0].lint, "nondet-map");
    assert_eq!(out.suppressions[0].line, 4);
    assert_eq!(
        out.suppressions[0].reason,
        "scratch map, never iterated in results"
    );
}

#[test]
fn clean_fixture_produces_nothing() {
    let out = lint_fixture("clean.rs", "crates/core/src/lib.rs");
    assert!(out.findings.is_empty(), "clean fixture: {:?}", spans(&out));
    assert!(out.suppressions.is_empty());
}

#[test]
fn renderings_carry_the_fixture_span() {
    let out = lint_fixture("bad_map.rs", "crates/sim/src/fixture.rs");
    let rendered = out.findings[0].render();
    assert!(rendered.contains("--> crates/sim/src/fixture.rs:6:18"));
    assert!(rendered.contains("error[nondet-map]"));
    assert!(rendered.contains("by_line"));
}
