//! Model-checker acceptance tests: the faithful QuantumBarrier and
//! worker-slot models must pass *exhaustively* (every interleaving up to
//! the preemption bound, `complete == true`) for ≥2 workers, and each
//! deliberately-broken variant must be caught with a counterexample —
//! proving the deadlock/lost-wakeup/assertion detectors actually fire.

use califorms_analyze::sched::models::random_sweep;
use califorms_analyze::sched::{
    check_barrier, check_drain, check_weave, check_worker_slots, BarrierVariant, DrainVariant,
    SlotVariant, WeaveVariant,
};

const MAX: usize = 200_000;

#[test]
fn barrier_two_workers_two_quanta_is_exhaustively_clean() {
    let r = check_barrier(2, 2, BarrierVariant::Correct, 2, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete, "DFS must exhaust the bounded schedule space");
    assert!(
        r.schedules_run > 500,
        "a real interleaving space was explored, not a single trace ({} schedules)",
        r.schedules_run
    );
}

#[test]
fn barrier_three_workers_is_exhaustively_clean_at_bound_one() {
    let r = check_barrier(3, 1, BarrierVariant::Correct, 1, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete);
}

#[test]
fn notify_one_release_loses_a_wakeup_and_deadlocks() {
    let r = check_barrier(2, 1, BarrierVariant::NotifyOneRelease, 2, MAX);
    let f = r.failure.expect("lost wakeup must be detected");
    assert_eq!(
        f.kind, "deadlock",
        "lost wakeup surfaces as deadlock: {}",
        f.message
    );
    // The counterexample shows the sleeping worker and the stuck main.
    assert!(
        f.message.contains("wait("),
        "deadlock report names the blocked waits: {}",
        f.message
    );
    assert!(!f.trace.is_empty(), "counterexample schedule captured");
}

#[test]
fn unlocked_check_then_wait_gap_misses_the_release() {
    let r = check_barrier(2, 1, BarrierVariant::UnlockedWaitGap, 1, MAX);
    let f = r.failure.expect("check-then-wait race must be detected");
    assert_eq!(f.kind, "deadlock", "missed release surfaces as deadlock");
}

#[test]
fn slot_handoff_two_workers_is_exhaustively_clean() {
    let r = check_worker_slots(2, 2, SlotVariant::Correct, 2, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete);
    assert!(r.schedules_run > 500, "{} schedules", r.schedules_run);
}

#[test]
fn done_before_return_lets_main_reclaim_an_empty_slot() {
    let r = check_worker_slots(2, 1, SlotVariant::DoneBeforeReturn, 2, MAX);
    let f = r.failure.expect("premature worker_done must be detected");
    assert_eq!(f.kind, "assertion");
    assert!(
        f.message.contains("slot empty at reclaim"),
        "assertion names the hazard: {}",
        f.message
    );
}

#[test]
fn weave_commit_two_workers_is_exhaustively_clean_at_bound_two() {
    let r = check_weave(2, 1, WeaveVariant::Correct, 2, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete, "DFS must exhaust the bounded schedule space");
    // The exact count is also asserted by CI (`--weave-schedules`); here
    // we only require a real interleaving space.
    assert!(r.schedules_run > 100, "{} schedules", r.schedules_run);
}

#[test]
fn weave_two_epochs_stay_clean() {
    let r = check_weave(2, 2, WeaveVariant::Correct, 1, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete);
}

#[test]
fn weave_commit_before_check_is_caught_with_a_counterexample() {
    let r = check_weave(2, 1, WeaveVariant::CommitBeforeCheck, 2, MAX);
    let f = r.failure.expect("lost update must be detected");
    assert_eq!(f.kind, "assertion");
    assert!(
        f.message.contains("exactly once"),
        "assertion names the hazard: {}",
        f.message
    );
    // The counterexample trace shows the double registration: both
    // workers claimed the same bank before either commit validated.
    assert!(
        f.trace.iter().any(|e| e.contains("compare_exchange")),
        "trace records the claim CASes: {:?}",
        f.trace
    );
}

#[test]
fn drain_two_workers_two_quanta_is_exhaustively_clean() {
    let r = check_drain(2, 2, 1, DrainVariant::Correct, 2, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete, "DFS must exhaust the bounded schedule space");
    // The exact count is also asserted by CI (`--drain-schedules`);
    // here we only require a real interleaving space.
    assert!(r.schedules_run > 100, "{} schedules", r.schedules_run);
}

#[test]
fn drain_snapshot_every_other_quantum_stays_clean() {
    let r = check_drain(2, 2, 2, DrainVariant::Correct, 2, MAX);
    assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
    assert!(r.complete);
}

#[test]
fn snapshot_before_drain_captures_torn_state() {
    let r = check_drain(2, 1, 1, DrainVariant::SnapshotBeforeDrain, 2, MAX);
    let f = r.failure.expect("torn snapshot must be detected");
    assert_eq!(f.kind, "assertion");
    assert!(
        f.message.contains("drain") || f.message.contains("mid-bound-phase"),
        "assertion names the hazard: {}",
        f.message
    );
    assert!(!f.trace.is_empty(), "counterexample schedule captured");
}

#[test]
fn random_large_schedule_sweep_is_clean_and_seed_deterministic() {
    let a = random_sweep(3, 3, 0xDEC0DE, 150);
    assert!(a.failure.is_none(), "random sweep failure: {:?}", a.failure);
    let b = random_sweep(3, 3, 0xDEC0DE, 150);
    assert_eq!(
        a.schedules_run, b.schedules_run,
        "same seed, same exploration"
    );
}
