//! The real workspace must be lint-clean: `--check` in CI exits zero
//! because this property holds. If a change trips a lint, either fix it
//! or add an inline `// analyze::allow(<lint>): <reason>` with a real
//! justification (which will show up in `suppressions` here).

use califorms_analyze::config::LintConfig;
use califorms_analyze::workspace::scan_workspace;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn real_workspace_is_lint_clean() {
    let report = scan_workspace(&repo_root(), &LintConfig::default()).expect("scan");
    let rendered = report.render_human();
    assert!(report.clean, "workspace has lint findings:\n{rendered}");
    assert!(
        report.files_scanned >= 90,
        "expected the full crates/*/src tree, saw {} files",
        report.files_scanned
    );
}

#[test]
fn workspace_suppressions_follow_the_policy() {
    let report = scan_workspace(&repo_root(), &LintConfig::default()).expect("scan");
    // Every suppression must carry a real justification, and only the
    // expected lint kinds may be suppressed at all: model thread spawns
    // (the sched models run threads under the virtual scheduler) and the
    // individually-reasoned hot-path invariants the reachability passes
    // surfaced. Nothing may suppress the determinism lints.
    const SUPPRESSIBLE: &[&str] = &["thread-spawn", "hot-path-unwrap", "hot-path-alloc"];
    for s in &report.suppressions {
        assert!(
            SUPPRESSIBLE.contains(&s.lint.as_str()),
            "lint `{}` must never be suppressed: {s:?}",
            s.lint
        );
        assert!(!s.reason.is_empty(), "empty justification: {s:?}");
        if s.lint == "thread-spawn" {
            assert!(
                s.path.starts_with("crates/analyze/src/sched/"),
                "thread-spawn suppression outside the sched models: {s:?}"
            );
        }
    }
    // The two original model-spawn suppressions are still present.
    let spawns = report
        .suppressions
        .iter()
        .filter(|s| s.lint == "thread-spawn")
        .count();
    assert!(spawns >= 2, "model spawn suppressions missing");
    // Suppressions are a budget, not a dumping ground: if this number
    // grows, each new entry needs the same per-site scrutiny these got.
    // Raised 30 → 40 for the speculative weave (DESIGN.md §15): its
    // exec path carries nine invariant-backed entries — bank-claim
    // Option accesses whose panics are confined by the epoch's
    // catch_unwind and re-surface through the serial residue path, plus
    // two per-epoch (not per-op) allocations.
    assert!(
        report.suppressions.len() <= 40,
        "suppression budget exceeded ({}): fix findings instead of annotating them",
        report.suppressions.len()
    );
}

#[test]
fn json_report_round_trips_the_gate_fields() {
    let report = scan_workspace(&repo_root(), &LintConfig::default()).expect("scan");
    let json = report.to_json();
    assert!(json.contains("\"clean\": true"));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("crates/analyze/src/sched/models.rs"));
}
