//! The real workspace must be lint-clean: `--check` in CI exits zero
//! because this property holds. If a change trips a lint, either fix it
//! or add an inline `// analyze::allow(<lint>): <reason>` with a real
//! justification (which will show up in `suppressions` here).

use califorms_analyze::config::LintConfig;
use califorms_analyze::workspace::scan_workspace;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn real_workspace_is_lint_clean() {
    let report = scan_workspace(&repo_root(), &LintConfig::default()).expect("scan");
    let rendered = report.render_human();
    assert!(report.clean, "workspace has lint findings:\n{rendered}");
    assert!(
        report.files_scanned >= 90,
        "expected the full crates/*/src tree, saw {} files",
        report.files_scanned
    );
}

#[test]
fn workspace_suppressions_are_the_known_model_spawns() {
    let report = scan_workspace(&repo_root(), &LintConfig::default()).expect("scan");
    // The sched model builders spawn model threads under the virtual
    // scheduler; those two sites carry inline justifications.
    assert_eq!(
        report.suppressions.len(),
        2,
        "unexpected suppression set: {:?}",
        report.suppressions
    );
    for s in &report.suppressions {
        assert_eq!(s.lint, "thread-spawn");
        assert_eq!(s.path, "crates/analyze/src/sched/models.rs");
        assert!(!s.reason.is_empty());
    }
}

#[test]
fn json_report_round_trips_the_gate_fields() {
    let report = scan_workspace(&repo_root(), &LintConfig::default()).expect("scan");
    let json = report.to_json();
    assert!(json.contains("\"clean\": true"));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("crates/analyze/src/sched/models.rs"));
}
