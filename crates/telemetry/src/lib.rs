//! Engine-wide observability for the Califorms reproduction: deterministic
//! counters, host-time phase spans, and a Chrome-trace-event/Perfetto
//! exporter (DESIGN.md §13).
//!
//! The layer is split along the repo's determinism boundary:
//!
//! * [`CounterRegistry`] / [`CounterSnapshot`] — named counters with
//!   per-lane values (lane = core, directory shard, or a single global
//!   lane). They are populated exclusively from **simulated** state, so a
//!   snapshot is bit-identical across runs, host thread schedules, and
//!   packed/unpacked replay — it can be asserted in tests and diffed by
//!   the differential oracle like any other result.
//! * [`LogHistogram`] — power-of-two-bucketed histograms. Deterministic
//!   when fed simulated values (weave batch sizes), host-side when fed
//!   span durations (weave-turn latency, barrier waits).
//! * [`TelemetryClock`] / [`TrackRecorder`] / [`SpanEvent`] — host
//!   wall-clock phase spans (bound/weave/barrier/decode, per core, per
//!   quantum). Host time is scheduling-dependent by nature, so spans are
//!   confined to telemetry-only output and never feed a simulated result;
//!   the `califorms-analyze` determinism linter allowlists exactly one
//!   file for the clock ([`span`]) and keeps flagging host time anywhere
//!   else in this crate.
//! * [`perfetto`] — renders spans as Chrome trace-event JSON
//!   (`chrome://tracing`, <https://ui.perfetto.dev>).
//! * [`TelemetryReport`] — what an instrumented run hands back: the
//!   counter snapshot, the span timeline, and the latency histograms,
//!   with `metrics_json()` / `trace_json()` / `summary()` renderers.
//!
//! When telemetry is disabled the engines allocate none of this — the
//! recording paths are `Option`-gated and compile down to a branch on a
//! `None`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod hist;
pub mod perfetto;
pub mod report;
pub mod span;

pub use counters::{CounterRegistry, CounterSnapshot};
pub use hist::LogHistogram;
pub use report::TelemetryReport;
pub use span::{Phase, SpanEvent, TelemetryClock, TrackRecorder};

/// Escapes a string for inclusion in a JSON string literal. Counter and
/// track names are internal ASCII identifiers, but the exporters escape
/// anyway so a hostile name cannot corrupt the document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t"), "x\\n\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
