//! Chrome trace-event / Perfetto JSON export.
//!
//! The output is the classic trace-event format both `chrome://tracing`
//! and <https://ui.perfetto.dev> open directly: a top-level object with a
//! `traceEvents` array of complete (`"ph": "X"`) duration events plus
//! metadata (`"ph": "M"`) events naming the process and one thread per
//! track. `pid` is always 0 (one simulated machine); `tid` is the track
//! id, so each core renders as its own row and the serial weave phase is
//! visible as a band hopping across rows.
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision kept in the fraction. Events are sorted by `(tid, ts)`, so
//! `ts` is monotonically non-decreasing within every track — the schema
//! property the tests assert.

use crate::json_escape;
use crate::span::SpanEvent;

/// Renders spans and track names as a Chrome trace-event JSON document.
///
/// `track_names` maps a track id to its display name (e.g. `(0, "core
/// 0")`, `(4, "runtime")`); tracks appearing in `events` without a name
/// entry render with a generic `track N` name.
pub fn render_trace_json(events: &[SpanEvent], track_names: &[(u32, String)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };

    push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"califorms replay\"}}"
            .to_string(),
        &mut out,
    );

    // Name every track that appears, in track order, so the timeline rows
    // are labelled and stably ordered.
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.extend(track_names.iter().map(|(t, _)| *t));
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        let name = track_names
            .iter()
            .find(|(id, _)| id == t)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("track {t}"));
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&name)
            ),
            &mut out,
        );
    }

    // Complete events, sorted so ts is monotonic per track.
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.track, e.start_ns, e.dur_ns));
    for e in sorted {
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
                 \"args\":{{\"quantum\":{}}}}}",
                e.phase.as_str(),
                micros(e.start_ns),
                micros(e.dur_ns),
                e.track,
                e.quantum,
            ),
            &mut out,
        );
    }

    out.push_str("]}");
    out
}

/// Nanoseconds rendered as a decimal microsecond literal with the
/// nanosecond fraction preserved exactly (`1234` ns → `1.234`). Integer
/// formatting — not `f64` — so huge timestamps don't lose precision.
fn micros(ns: u64) -> String {
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        whole.to_string()
    } else {
        format!("{whole}.{frac:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn ev(track: u32, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            track,
            phase: Phase::Bound,
            quantum: 0,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn micros_preserves_nanosecond_fraction() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1000), "1");
        assert_eq!(micros(1234), "1.234");
        assert_eq!(micros(5), "0.005");
    }

    #[test]
    fn document_has_trace_events_and_metadata() {
        let events = [ev(0, 10_000, 2_000), ev(1, 5_000, 1_000)];
        let names = [(0, "core 0".to_string()), (1, "core 1".to_string())];
        let json = render_trace_json(&events, &names);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("{\"name\":\"core 0\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn unnamed_tracks_get_a_generic_label() {
        let json = render_trace_json(&[ev(7, 0, 1)], &[]);
        assert!(json.contains("track 7"), "{json}");
    }
}
