//! The run-level telemetry report: everything an instrumented replay
//! hands back, with JSON and human-readable renderers.
//!
//! The report keeps the determinism split explicit: `counters` (and the
//! deterministic `weave_batch_sizes` histogram) are bit-identical across
//! runs; `spans` and the latency histograms are host time and vary run to
//! run. `metrics_json()` groups them accordingly so a consumer can diff
//! the `counters` object byte-for-byte while ignoring `host`.

use crate::counters::CounterSnapshot;
use crate::hist::LogHistogram;
use crate::perfetto::render_trace_json;
use crate::span::SpanEvent;

/// Everything one instrumented run recorded.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Deterministic counter snapshot (bit-identical across runs).
    pub counters: CounterSnapshot,
    /// Deterministic histogram of weave-turn batch sizes (transactions
    /// retired per weave turn).
    pub weave_batch_sizes: LogHistogram,
    /// Host-time phase spans, all tracks merged.
    pub spans: Vec<SpanEvent>,
    /// Track id → display name for the Perfetto export.
    pub track_names: Vec<(u32, String)>,
    /// Host-time histogram of weave-turn latencies (ns).
    pub weave_turn_ns: LogHistogram,
    /// Host-time histogram of per-core barrier waits (ns).
    pub barrier_wait_ns: LogHistogram,
    /// Spans dropped after a track filled up (never silent).
    pub dropped_spans: u64,
}

impl TelemetryReport {
    /// Renders the span timeline as Chrome trace-event / Perfetto JSON
    /// (the `--trace-out` artifact).
    pub fn trace_json(&self) -> String {
        render_trace_json(&self.spans, &self.track_names)
    }

    /// Renders counters and histograms as a JSON document (the
    /// `--metrics-out` artifact). The `counters` and `weave_batch_sizes`
    /// members are deterministic; everything under `host` is wall-clock.
    pub fn metrics_json(&self) -> String {
        format!(
            "{{\n  \"counters\": {},\n  \"weave_batch_sizes\": {},\n  \"host\": {{\n    \
             \"weave_turn_ns\": {},\n    \"barrier_wait_ns\": {},\n    \
             \"span_count\": {},\n    \"dropped_spans\": {}\n  }}\n}}\n",
            self.counters.to_json(),
            self.weave_batch_sizes.to_json(),
            self.weave_turn_ns.to_json(),
            self.barrier_wait_ns.to_json(),
            self.spans.len(),
            self.dropped_spans,
        )
    }

    /// A short human-readable block for bench stdout.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry: {} counters, {} spans ({} dropped)\n",
            self.counters.rows().len(),
            self.spans.len(),
            self.dropped_spans,
        ));
        for name in [
            "weave.transactions",
            "weave.contended",
            "dir.lookups",
            "spill.bytes",
            "fill.bytes",
        ] {
            if let Some(total) = self.counters.total(name) {
                out.push_str(&format!("  {name}: {total}\n"));
            }
        }
        if self.weave_turn_ns.count() > 0 {
            out.push_str(&format!(
                "  weave turn: p50 {} ns, p99 {} ns, max {} ns over {} turns\n",
                self.weave_turn_ns.percentile(0.5),
                self.weave_turn_ns.percentile(0.99),
                self.weave_turn_ns.max(),
                self.weave_turn_ns.count(),
            ));
        }
        if self.barrier_wait_ns.count() > 0 {
            out.push_str(&format!(
                "  barrier wait: p50 {} ns, p99 {} ns\n",
                self.barrier_wait_ns.percentile(0.5),
                self.barrier_wait_ns.percentile(0.99),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterRegistry;
    use crate::span::Phase;

    fn sample() -> TelemetryReport {
        let mut reg = CounterRegistry::new();
        reg.add("weave.transactions", 0, 12);
        reg.add("dir.lookups", 1, 3);
        let mut weave_batch_sizes = LogHistogram::new();
        weave_batch_sizes.record(4);
        let mut weave_turn_ns = LogHistogram::new();
        weave_turn_ns.record(900);
        TelemetryReport {
            counters: reg.snapshot(),
            weave_batch_sizes,
            spans: vec![SpanEvent {
                track: 0,
                phase: Phase::Weave,
                quantum: 1,
                start_ns: 10,
                dur_ns: 5,
            }],
            track_names: vec![(0, "core 0".into())],
            weave_turn_ns,
            barrier_wait_ns: LogHistogram::new(),
            dropped_spans: 0,
        }
    }

    #[test]
    fn metrics_json_separates_deterministic_and_host_sections() {
        let j = sample().metrics_json();
        assert!(j.contains("\"counters\": {\"dir.lookups\":[0,3]"), "{j}");
        assert!(j.contains("\"host\": {"), "{j}");
        assert!(j.contains("\"dropped_spans\": 0"), "{j}");
    }

    #[test]
    fn trace_json_contains_the_span() {
        let j = sample().trace_json();
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"name\":\"weave\""));
    }

    #[test]
    fn summary_mentions_counters_and_latencies() {
        let s = sample().summary();
        assert!(s.contains("weave.transactions: 12"), "{s}");
        assert!(s.contains("weave turn: p50"), "{s}");
    }
}
