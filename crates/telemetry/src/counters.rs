//! The deterministic counter registry: named counters with per-lane
//! values.
//!
//! A *lane* is whatever axis the counter is attributed to — core id for
//! per-core counters (`l1d.hits`), directory-shard id for per-shard
//! counters (`dir.lookups`), or lane 0 for machine-wide totals
//! (`runtime.quanta`). Lanes grow on demand, so one registry can mix
//! counters of different widths.
//!
//! Everything here is backed by plain `Vec`s and populated from simulated
//! state only: a [`CounterSnapshot`] is bit-identical across runs, host
//! schedules, and packed/unpacked replay. `to_bytes()` gives the
//! canonical serialization the cross-run determinism tests compare, and
//! `diff()` names the first counters two snapshots disagree on — the
//! same shape the differential oracle reports.

use crate::json_escape;

/// One named counter and its per-lane values.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CounterRow {
    name: String,
    lanes: Vec<u64>,
}

/// A registry of named, lane-attributed counters.
///
/// Registration order does not matter: snapshots are sorted by name, so
/// two registries filled in different orders with the same values
/// snapshot identically.
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    rows: Vec<CounterRow>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn row_mut(&mut self, name: &str) -> &mut CounterRow {
        if let Some(i) = self.rows.iter().position(|r| r.name == name) {
            return &mut self.rows[i];
        }
        self.rows.push(CounterRow {
            name: name.to_string(),
            lanes: Vec::new(),
        });
        self.rows.last_mut().expect("row just pushed")
    }

    /// Adds `delta` to `name`'s lane `lane`, creating the counter and
    /// growing its lane vector as needed.
    pub fn add(&mut self, name: &str, lane: usize, delta: u64) {
        let row = self.row_mut(name);
        if row.lanes.len() <= lane {
            row.lanes.resize(lane + 1, 0);
        }
        row.lanes[lane] += delta;
    }

    /// Sets `name`'s lane `lane` to `value` (creating/growing as needed).
    pub fn set(&mut self, name: &str, lane: usize, value: u64) {
        let row = self.row_mut(name);
        if row.lanes.len() <= lane {
            row.lanes.resize(lane + 1, 0);
        }
        row.lanes[lane] = value;
    }

    /// Number of distinct counters registered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no counter has been registered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Freezes the registry into a canonical (name-sorted) snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut rows: Vec<(String, Vec<u64>)> = self
            .rows
            .iter()
            .map(|r| (r.name.clone(), r.lanes.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        CounterSnapshot { rows }
    }
}

/// An immutable, canonically ordered view of a [`CounterRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// `(name, per-lane values)`, sorted by name.
    rows: Vec<(String, Vec<u64>)>,
}

impl CounterSnapshot {
    /// The rows, sorted by name.
    pub fn rows(&self) -> &[(String, Vec<u64>)] {
        &self.rows
    }

    /// Per-lane values of one counter.
    pub fn lanes_of(&self, name: &str) -> Option<&[u64]> {
        self.rows
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.rows[i].1.as_slice())
    }

    /// Sum of one counter across its lanes (`None` if absent).
    pub fn total(&self, name: &str) -> Option<u64> {
        self.lanes_of(name).map(|l| l.iter().sum())
    }

    /// Canonical byte serialization: for each row (already name-sorted),
    /// the name bytes, a NUL, the lane count as little-endian `u64`, then
    /// each lane value as little-endian `u64`. Two snapshots are equal iff
    /// their `to_bytes()` are equal — this is what the cross-run
    /// determinism tests compare byte-for-byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, lanes) in &self.rows {
            out.extend_from_slice(name.as_bytes());
            out.push(0);
            out.extend_from_slice(&(lanes.len() as u64).to_le_bytes());
            for v in lanes {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Names (with lane index) on which the two snapshots disagree —
    /// first few mismatches, in name order. Empty iff the snapshots are
    /// identical.
    pub fn diff(&self, other: &CounterSnapshot) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = 0;
        let mut j = 0;
        let push = |out: &mut Vec<String>, msg: String| {
            if out.len() < 16 {
                out.push(msg);
            }
        };
        while i < self.rows.len() || j < other.rows.len() {
            match (self.rows.get(i), other.rows.get(j)) {
                (Some((a, _)), None) => {
                    push(&mut out, format!("{a}: only in left"));
                    i += 1;
                }
                (None, Some((b, _))) => {
                    push(&mut out, format!("{b}: only in right"));
                    j += 1;
                }
                (Some((a, la)), Some((b, lb))) => match a.cmp(b) {
                    std::cmp::Ordering::Less => {
                        push(&mut out, format!("{a}: only in left"));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        push(&mut out, format!("{b}: only in right"));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        if la != lb {
                            let lane = la
                                .iter()
                                .zip(lb.iter())
                                .position(|(x, y)| x != y)
                                .unwrap_or_else(|| la.len().min(lb.len()));
                            let (x, y) = (la.get(lane), lb.get(lane));
                            push(&mut out, format!("{a}[{lane}]: {x:?} != {y:?}"));
                        }
                        i += 1;
                        j += 1;
                    }
                },
                (None, None) => break,
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object `{"name": [lane values]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (k, (name, lanes)) in self.rows.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":[", json_escape(name)));
            for (i, v) in lanes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_set_grow_lanes_on_demand() {
        let mut reg = CounterRegistry::new();
        reg.add("l1d.hits", 3, 7);
        reg.set("l1d.hits", 1, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.lanes_of("l1d.hits"), Some(&[0, 2, 0, 7][..]));
        assert_eq!(snap.total("l1d.hits"), Some(9));
        assert_eq!(snap.total("absent"), None);
    }

    #[test]
    fn snapshots_are_registration_order_independent() {
        let mut a = CounterRegistry::new();
        a.add("zz", 0, 1);
        a.add("aa", 1, 2);
        let mut b = CounterRegistry::new();
        b.add("aa", 1, 2);
        b.add("zz", 0, 1);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
    }

    #[test]
    fn to_bytes_distinguishes_values_and_shapes() {
        let mut a = CounterRegistry::new();
        a.add("x", 0, 1);
        let mut b = CounterRegistry::new();
        b.add("x", 0, 2);
        assert_ne!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
        let mut c = CounterRegistry::new();
        c.add("x", 1, 1); // same value, different lane
        assert_ne!(a.snapshot().to_bytes(), c.snapshot().to_bytes());
    }

    #[test]
    fn diff_names_the_first_divergent_lane() {
        let mut a = CounterRegistry::new();
        a.add("dir.lookups", 0, 5);
        a.add("only.left", 0, 1);
        let mut b = CounterRegistry::new();
        b.add("dir.lookups", 0, 6);
        let d = a.snapshot().diff(&b.snapshot());
        assert!(d.iter().any(|m| m.contains("dir.lookups[0]")), "{d:?}");
        assert!(d.iter().any(|m| m.contains("only.left")), "{d:?}");
        assert!(a.snapshot().diff(&a.snapshot()).is_empty());
    }

    #[test]
    fn json_renders_sorted_rows() {
        let mut reg = CounterRegistry::new();
        reg.add("b", 0, 2);
        reg.add("a", 1, 3);
        assert_eq!(reg.snapshot().to_json(), "{\"a\":[0,3],\"b\":[2]}");
    }
}
