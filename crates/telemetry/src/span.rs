//! Host-time phase spans: the clock, the per-track recorder, and the
//! span event the Perfetto exporter renders.
//!
//! **This is the one file in `califorms-telemetry` allowed to read host
//! time** (`std::time::Instant`), and the `califorms-analyze` determinism
//! linter enforces exactly that: span *timers* are telemetry-only output,
//! while anything that could feed a counter — and through it a simulated
//! result — must stay off the host clock. Durations recorded here never
//! flow back into `RuntimeStats`, `SimStats`, or a [`crate::counters`]
//! registry.

use std::time::Instant;

/// The engine phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Parallel bound phase: private-L1-completable replay on a worker.
    Bound,
    /// Serial weave phase: coherence transactions on the main thread.
    Weave,
    /// Speculative weave epoch: optimistic parallel coherence
    /// transactions on the workers (DESIGN.md §15).
    SpecWeave,
    /// Barrier wait / quantum bookkeeping.
    Barrier,
    /// Trace-pack batch decode.
    Decode,
}

impl Phase {
    /// Stable lowercase name (the Perfetto event name).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Bound => "bound",
            Phase::Weave => "weave",
            Phase::SpecWeave => "spec-weave",
            Phase::Barrier => "barrier",
            Phase::Decode => "decode",
        }
    }
}

/// One recorded span: a phase on a track, within a quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Track id (core id; the runtime track uses the first id past the
    /// cores).
    pub track: u32,
    /// Which phase the span covers.
    pub phase: Phase,
    /// Cycle-quantum index the span belongs to.
    pub quantum: u64,
    /// Start, in nanoseconds since the run's [`TelemetryClock`] origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A shared time origin: every recorder in a run copies the same clock so
/// spans from different threads land on one timeline.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryClock {
    origin: Instant,
}

impl TelemetryClock {
    /// Starts the run clock.
    pub fn start() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since the clock started. Saturates at `u64::MAX`
    /// (≈ 584 years).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Spans one track keeps before dropping new ones (a multi-hour replay
/// must not grow the timeline without bound; drops are counted, never
/// silent).
pub const MAX_EVENTS_PER_TRACK: usize = 1 << 18;

/// Records spans for one track (one core, or the runtime track). Owned by
/// exactly one thread at a time — the multicore engine lends a core's
/// recorder to its worker for the bound phase and takes it back for the
/// weave, so no synchronisation is ever needed.
#[derive(Debug, Clone)]
pub struct TrackRecorder {
    track: u32,
    clock: TelemetryClock,
    events: Vec<SpanEvent>,
    dropped: u64,
}

impl TrackRecorder {
    /// A recorder for `track` on the run clock `clock`.
    pub fn new(track: u32, clock: TelemetryClock) -> Self {
        Self {
            track,
            clock,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The track id.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Reads the run clock (nanoseconds since origin) — the start stamp
    /// for a later [`Self::record_since`].
    #[inline]
    pub fn start(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Records a span from `start_ns` (a previous [`Self::start`]) to
    /// now, returning its duration in nanoseconds. Past
    /// [`MAX_EVENTS_PER_TRACK`] events the span is counted as dropped
    /// instead of stored.
    pub fn record_since(&mut self, phase: Phase, quantum: u64, start_ns: u64) -> u64 {
        let end = self.clock.now_ns();
        let dur = end.saturating_sub(start_ns);
        self.push(SpanEvent {
            track: self.track,
            phase,
            quantum,
            start_ns,
            dur_ns: dur,
        });
        dur
    }

    /// Records a fully formed span (the caller computed both stamps, e.g.
    /// a barrier-wait span derived from two other spans' endpoints).
    pub fn record(&mut self, phase: Phase, quantum: u64, start_ns: u64, dur_ns: u64) {
        self.push(SpanEvent {
            track: self.track,
            phase,
            quantum,
            start_ns,
            dur_ns,
        });
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < MAX_EVENTS_PER_TRACK {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// End stamp (`start_ns + dur_ns`) of the most recent span, if any.
    pub fn last_end_ns(&self) -> Option<u64> {
        self.events.last().map(|e| e.start_ns + e.dur_ns)
    }

    /// The recorded spans, in recording order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Spans dropped after the track filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the recorder, returning its spans and drop count.
    pub fn into_parts(self) -> (Vec<SpanEvent>, u64) {
        (self.events, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_since_measures_nonnegative_durations() {
        let clock = TelemetryClock::start();
        let mut rec = TrackRecorder::new(2, clock);
        let t0 = rec.start();
        let dur = rec.record_since(Phase::Bound, 7, t0);
        assert_eq!(rec.events().len(), 1);
        let ev = rec.events()[0];
        assert_eq!(ev.track, 2);
        assert_eq!(ev.phase, Phase::Bound);
        assert_eq!(ev.quantum, 7);
        assert_eq!(ev.dur_ns, dur);
        assert_eq!(rec.last_end_ns(), Some(ev.start_ns + ev.dur_ns));
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let clock = TelemetryClock::start();
        let mut rec = TrackRecorder::new(0, clock);
        for q in 0..(MAX_EVENTS_PER_TRACK as u64 + 10) {
            rec.record(Phase::Weave, q, q, 1);
        }
        assert_eq!(rec.events().len(), MAX_EVENTS_PER_TRACK);
        assert_eq!(rec.dropped(), 10);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Bound.as_str(), "bound");
        assert_eq!(Phase::Weave.as_str(), "weave");
        assert_eq!(Phase::Barrier.as_str(), "barrier");
        assert_eq!(Phase::Decode.as_str(), "decode");
    }
}
