//! Log-bucketed histograms: power-of-two buckets over `u64` samples.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
//! 65 buckets therefore cover the whole `u64` range with no saturation.
//! Recording is one `leading_zeros` and one array increment — cheap
//! enough for per-weave-turn latencies.
//!
//! The histogram itself is deterministic plain data; whether its
//! *contents* are deterministic depends on what is fed in (weave batch
//! sizes: yes; span durations: no, host time).

/// Number of buckets ([`LogHistogram::BUCKETS`]).
const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Number of buckets: bucket `0` for the value `0`, buckets `1..=64`
    /// for `[2^(i-1), 2^i)`.
    pub const BUCKETS: usize = BUCKETS;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for a value.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Half-open range `[lo, hi)` of bucket `i`; `hi` is `None` for the
    /// last bucket (whose upper bound, 2^64, overflows `u64`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
        assert!(i < BUCKETS, "bucket index {i} out of range");
        match i {
            0 => (0, Some(1)),
            64 => (1 << 63, None),
            _ => (1 << (i - 1), Some(1 << i)),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BUCKETS`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Upper bound (exclusive) of the bucket containing the `p`-quantile,
    /// `p` in `[0, 1]` — a conservative percentile estimate. Returns the
    /// recorded max for an empty histogram or when the quantile lands in
    /// the unbounded last bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match Self::bucket_bounds(i).1 {
                    Some(hi) => hi - 1,
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket lower bound, count)` pairs, in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bounds(i).0, c))
            .collect()
    }

    /// Renders as a JSON object with count/mean/max/percentiles and the
    /// non-empty `[lower bound, count]` buckets.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"mean\":{:.1},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.mean(),
            self.max,
            self.percentile(0.50),
            self.percentile(0.99),
        );
        for (i, (lo, c)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lo},{c}]"));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite-mandated boundary test: values on each side of every
    /// power of two land in the right bucket.
    #[test]
    fn bucket_boundaries_are_half_open_powers_of_two() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(LogHistogram::bucket_index(lo), i, "lower bound of {i}");
            let hi_minus_1 = (1u64 << i) - 1;
            assert_eq!(LogHistogram::bucket_index(hi_minus_1), i, "top of {i}");
        }
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_bounds(0), (0, Some(1)));
        assert_eq!(LogHistogram::bucket_bounds(1), (1, Some(2)));
        assert_eq!(LogHistogram::bucket_bounds(5), (16, Some(32)));
        assert_eq!(LogHistogram::bucket_bounds(64), (1 << 63, None));
    }

    #[test]
    fn bounds_and_index_agree_everywhere() {
        for i in 0..LogHistogram::BUCKETS {
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            assert_eq!(LogHistogram::bucket_index(lo), i);
            if let Some(hi) = hi {
                assert_eq!(LogHistogram::bucket_index(hi - 1), i);
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 3, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 204);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(2), 1); // 3 ∈ [2, 4)
        assert_eq!(h.bucket_count(7), 2); // 100 ∈ [64, 128)
        assert!((h.mean() - 40.8).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_a_bucket_upper_bound() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1000); // bucket [512, 1024)
        assert_eq!(h.percentile(0.50), 15);
        assert_eq!(h.percentile(0.99), 15);
        assert_eq!(h.percentile(1.0), 1023);
        assert_eq!(LogHistogram::new().percentile(0.5), 0);
    }

    #[test]
    fn merge_folds_counts() {
        let mut a = LogHistogram::new();
        a.record(5);
        let mut b = LogHistogram::new();
        b.record(5);
        b.record(70);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 70);
        assert_eq!(a.nonzero_buckets(), vec![(4, 2), (64, 1)]);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = LogHistogram::new();
        h.record(2);
        let j = h.to_json();
        assert!(j.starts_with("{\"count\":1,"), "{j}");
        assert!(j.contains("\"buckets\":[[2,1]]"), "{j}");
    }
}
