//! Schema validation of the Chrome trace-event / Perfetto export.
//!
//! The workspace's `serde_json` shim only serialises, so these tests
//! carry a minimal recursive-descent JSON parser — enough to check the
//! exporter emits a *parseable* document of the right shape, not just a
//! string that contains the right substrings: a `traceEvents` array of
//! objects, every event `ph:"X"` or `ph:"M"`, complete events with
//! numeric `ts`/`dur` and `ts` monotonically non-decreasing within each
//! `tid` track, and metadata naming the process and every track.

use califorms_telemetry::perfetto::render_trace_json;
use califorms_telemetry::{Phase, SpanEvent};

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings w/ escapes, f64 numbers,
// literals). Errors carry the byte offset so a schema break is findable.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(src: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            b: src.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            let v = self.value()?;
            kv.push((k, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let s = self
                        .b
                        .get(self.i..self.i + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(s).map_err(|e| e.to_string())?);
                    self.i += len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }
}

// ---------------------------------------------------------------------
// Fixtures and schema assertions.
// ---------------------------------------------------------------------

fn ev(track: u32, phase: Phase, quantum: u64, start_ns: u64, dur_ns: u64) -> SpanEvent {
    SpanEvent {
        track,
        phase,
        quantum,
        start_ns,
        dur_ns,
    }
}

/// A two-core + runtime timeline, deliberately out of track/time order to
/// exercise the exporter's sort.
fn sample_events() -> Vec<SpanEvent> {
    vec![
        ev(1, Phase::Bound, 0, 2_500, 900),
        ev(0, Phase::Bound, 0, 1_234, 1_000),
        ev(2, Phase::Weave, 0, 4_000, 2_000),
        ev(0, Phase::Barrier, 0, 2_234, 700),
        ev(1, Phase::Barrier, 0, 3_400, 600),
        ev(0, Phase::Bound, 1, 7_000, 1_100),
        ev(2, Phase::Bound, 0, 1_000, 2_900),
        ev(1, Phase::Decode, 1, 8_000, 50),
    ]
}

fn sample_names() -> Vec<(u32, String)> {
    vec![
        (0, "core 0".to_string()),
        (1, "core 1".to_string()),
        (2, "runtime".to_string()),
    ]
}

fn parse_trace(json: &str) -> Json {
    Parser::parse(json).unwrap_or_else(|e| panic!("trace JSON must parse: {e}\n{json}"))
}

#[test]
fn document_parses_with_trace_events_array() {
    let doc = parse_trace(&render_trace_json(&sample_events(), &sample_names()));
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents is an array");
    // 1 process_name + 3 thread_name metadata + 8 complete events.
    assert_eq!(events.len(), 12);
}

#[test]
fn every_event_is_a_complete_or_metadata_record_with_required_fields() {
    let doc = parse_trace(&render_trace_json(&sample_events(), &sample_names()));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph present");
        assert_eq!(e.get("pid").and_then(Json::as_num), Some(0.0));
        match ph {
            "M" => {
                let name = e.get("name").and_then(Json::as_str).unwrap();
                assert!(
                    name == "process_name" || name == "thread_name",
                    "metadata kind: {name}"
                );
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" => {
                let name = e.get("name").and_then(Json::as_str).unwrap();
                assert!(
                    ["bound", "weave", "barrier", "decode"].contains(&name),
                    "phase name: {name}"
                );
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("phase"));
                assert!(e.get("ts").and_then(Json::as_num).is_some_and(|v| v >= 0.0));
                assert!(e
                    .get("dur")
                    .and_then(Json::as_num)
                    .is_some_and(|v| v >= 0.0));
                assert!(e.get("tid").and_then(Json::as_num).is_some());
                assert!(e
                    .get("args")
                    .and_then(|a| a.get("quantum"))
                    .and_then(Json::as_num)
                    .is_some());
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
}

#[test]
fn ts_is_monotonic_within_every_track() {
    let doc = parse_trace(&render_trace_json(&sample_events(), &sample_names()));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut last_ts: Vec<(u32, f64)> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_num).unwrap() as u32;
        let ts = e.get("ts").and_then(Json::as_num).unwrap();
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, prev)) => {
                assert!(
                    ts >= *prev,
                    "track {tid}: ts {ts} went backwards from {prev}"
                );
                *prev = ts;
            }
            None => last_ts.push((tid, ts)),
        }
    }
    assert_eq!(last_ts.len(), 3, "complete events on every track");
}

#[test]
fn every_track_is_named_and_timestamps_keep_ns_precision() {
    let doc = parse_trace(&render_trace_json(&sample_events(), &sample_names()));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let thread_names: Vec<(u32, String)> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| {
            (
                e.get("tid").and_then(Json::as_num).unwrap() as u32,
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            )
        })
        .collect();
    assert_eq!(thread_names, sample_names());

    // start_ns = 1234 must survive as 1.234 µs exactly.
    let ts: Vec<f64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| e.get("ts").and_then(Json::as_num).unwrap())
        .collect();
    assert!(
        ts.iter().any(|&t| (t - 1.234).abs() < 1e-9),
        "ns fraction lost: {ts:?}"
    );
}

#[test]
fn track_names_with_json_metacharacters_round_trip() {
    let names = vec![(0, "core \"zero\" \\ weave".to_string())];
    let doc = parse_trace(&render_trace_json(&[ev(0, Phase::Bound, 0, 0, 1)], &names));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let name = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .and_then(|e| e.get("args"))
        .and_then(|a| a.get("name"))
        .and_then(Json::as_str)
        .expect("escaped track name parses");
    assert_eq!(name, "core \"zero\" \\ weave");
}

#[test]
fn metrics_json_of_a_report_parses_too() {
    use califorms_telemetry::{CounterRegistry, TelemetryReport};
    let mut reg = CounterRegistry::new();
    reg.add("weave.transactions", 0, 7);
    reg.add("dir.lookups", 3, 9);
    let report = TelemetryReport {
        counters: reg.snapshot(),
        ..TelemetryReport::default()
    };
    let doc = Parser::parse(&report.metrics_json()).expect("metrics JSON parses");
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("weave.transactions"))
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );
    assert!(doc.get("host").and_then(|h| h.get("span_count")).is_some());
}
