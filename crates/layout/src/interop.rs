//! Interoperability with uninstrumented modules (Sections 6.2 and 7.3).
//!
//! The full/intelligent policies modify type layouts, so objects crossing
//! into an external module compiled without Califorms support must be
//! **marshalled**: serialised into the natural layout on the way out and
//! re-inserted on the way back. The window in which the data exists in
//! natural form is the "lucrative point in execution" the paper's
//! coverage-based-attack discussion warns about — this module makes the
//! conversion explicit and measurable. Two safe cases need no
//! marshalling: the opportunistic policy (layout unchanged) and opaque
//! pointers (the external module never dereferences the fields; the
//! implicit hardware checks keep protecting the object).

use crate::califormed::CaliformedLayout;
use crate::layout::StructLayout;

/// How an object may cross a module boundary under a given policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryStrategy {
    /// Layout identical to natural: pass the pointer through unchanged
    /// (opportunistic / no policy).
    PassThrough,
    /// Layout differs but the callee treats the pointer as opaque:
    /// pass through, protection persists (the paper's "persistent
    /// tampering protection … across binary module boundaries").
    OpaquePointer,
    /// Layout differs and the callee reads fields: marshal out/in, with a
    /// temporary unprotected window.
    Marshal,
}

/// Picks the boundary strategy for a layout and callee behaviour: pass
/// through when the ABI is bit-identical to the natural layout, otherwise
/// opaque-pointer or full marshalling depending on whether the callee
/// reads fields.
pub fn boundary_strategy(
    layout: &CaliformedLayout,
    natural: &StructLayout,
    callee_dereferences: bool,
) -> BoundaryStrategy {
    let abi_identical = layout.size == natural.size
        && layout
            .fields
            .iter()
            .zip(&natural.fields)
            .all(|(a, b)| a.offset == b.offset && a.size == b.size);
    if abi_identical {
        BoundaryStrategy::PassThrough
    } else if !callee_dereferences {
        BoundaryStrategy::OpaquePointer
    } else {
        BoundaryStrategy::Marshal
    }
}

/// Serialises a califormed object image into its natural layout
/// (security bytes stripped): the out-marshalling step.
///
/// `image` is the object's raw bytes in califormed layout. The natural
/// layout must come from the same struct definition.
///
/// # Panics
///
/// Panics if the image size does not match the califormed layout, or the
/// layouts' field lists disagree (caller mixed up types).
pub fn marshal_out(califormed: &CaliformedLayout, natural: &StructLayout, image: &[u8]) -> Vec<u8> {
    assert_eq!(image.len(), califormed.size, "image size mismatch");
    assert_eq!(
        califormed.fields.len(),
        natural.fields.len(),
        "field count mismatch"
    );
    let mut out = vec![0u8; natural.size];
    for (cf, nf) in califormed.fields.iter().zip(&natural.fields) {
        assert_eq!(cf.name, nf.name, "field order mismatch");
        assert_eq!(cf.size, nf.size, "field size mismatch");
        out[nf.offset..nf.offset + nf.size].copy_from_slice(&image[cf.offset..cf.offset + cf.size]);
    }
    out
}

/// Re-inserts natural-layout data into a califormed image: the
/// in-marshalling step after the external call returns. Security-byte
/// positions are (re)zeroed — the caller re-arms them with `CFORM`s.
pub fn marshal_in(califormed: &CaliformedLayout, natural: &StructLayout, data: &[u8]) -> Vec<u8> {
    assert_eq!(data.len(), natural.size, "data size mismatch");
    assert_eq!(
        califormed.fields.len(),
        natural.fields.len(),
        "field count mismatch"
    );
    let mut image = vec![0u8; califormed.size];
    for (cf, nf) in califormed.fields.iter().zip(&natural.fields) {
        image[cf.offset..cf.offset + cf.size]
            .copy_from_slice(&data[nf.offset..nf.offset + nf.size]);
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctype::StructDef;
    use crate::policy::InsertionPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(policy: InsertionPolicy) -> (CaliformedLayout, StructLayout) {
        let def = StructDef::paper_example();
        let mut rng = SmallRng::seed_from_u64(9);
        (policy.apply(&def, &mut rng), StructLayout::natural(&def))
    }

    #[test]
    fn opportunistic_passes_through() {
        let (l, nat) = setup(InsertionPolicy::Opportunistic);
        assert_eq!(
            boundary_strategy(&l, &nat, true),
            BoundaryStrategy::PassThrough
        );
        assert_eq!(
            boundary_strategy(&l, &nat, false),
            BoundaryStrategy::PassThrough
        );
    }

    #[test]
    fn modified_layouts_marshal_only_when_dereferenced() {
        let (l, nat) = setup(InsertionPolicy::full_1_to(7));
        assert_eq!(boundary_strategy(&l, &nat, true), BoundaryStrategy::Marshal);
        assert_eq!(
            boundary_strategy(&l, &nat, false),
            BoundaryStrategy::OpaquePointer
        );
    }

    #[test]
    fn marshal_round_trip_preserves_fields() {
        let (cf, nat) = setup(InsertionPolicy::full_1_to(5));
        // Build a califormed image with recognisable field contents.
        let mut image = vec![0u8; cf.size];
        for (k, f) in cf.fields.iter().enumerate() {
            for (j, b) in image[f.offset..f.offset + f.size].iter_mut().enumerate() {
                *b = (k as u8) << 4 | (j as u8 & 0xF);
            }
        }
        let natural_form = marshal_out(&cf, &nat, &image);
        assert_eq!(natural_form.len(), nat.size);
        // The external module sees fields at their natural offsets.
        for (k, f) in nat.fields.iter().enumerate() {
            assert_eq!(natural_form[f.offset], (k as u8) << 4);
        }
        let back = marshal_in(&cf, &nat, &natural_form);
        assert_eq!(back, image, "round trip preserves every field byte");
    }

    #[test]
    fn marshalled_output_contains_no_span_artifacts() {
        let (cf, nat) = setup(InsertionPolicy::intelligent_1_to(7));
        // Poison the span bytes in the image; they must not leak out.
        let mut image = vec![0u8; cf.size];
        for s in &cf.security_spans {
            for b in &mut image[s.offset..s.offset + s.len] {
                *b = 0xEE;
            }
        }
        let natural_form = marshal_out(&cf, &nat, &image);
        assert!(
            natural_form.iter().all(|&b| b != 0xEE),
            "span bytes never cross the boundary"
        );
    }

    #[test]
    fn marshal_in_zeroes_span_positions() {
        let (cf, nat) = setup(InsertionPolicy::full_1_to(3));
        let data = vec![0xFFu8; nat.size];
        let image = marshal_in(&cf, &nat, &data);
        for s in &cf.security_spans {
            assert!(
                image[s.offset..s.offset + s.len].iter().all(|&b| b == 0),
                "span positions come back zeroed, ready for CFORM"
            );
        }
        for f in &cf.fields {
            assert!(image[f.offset..f.offset + f.size]
                .iter()
                .all(|&b| b == 0xFF));
        }
    }

    #[test]
    #[should_panic(expected = "image size mismatch")]
    fn size_mismatch_is_rejected() {
        let (cf, nat) = setup(InsertionPolicy::full_1_to(3));
        marshal_out(&cf, &nat, &vec![0u8; cf.size + 1]);
    }
}
