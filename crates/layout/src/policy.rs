//! Security-byte insertion policies (Listing 1, Sections 2 and 6.2).
//!
//! | policy | layout change | what becomes a security byte |
//! |---|---|---|
//! | [`InsertionPolicy::None`] | none | nothing (baseline) |
//! | [`InsertionPolicy::Opportunistic`] | none | existing compiler padding |
//! | [`InsertionPolicy::Full`] | grows | random 1–N B spans before the first field, between every pair, and after the last |
//! | [`InsertionPolicy::Intelligent`] | grows | random 1–N B spans around arrays and pointers only |
//! | [`InsertionPolicy::FixedPad`] | grows | a fixed-size span after every field (the Figure 4 motivation sweep) |
//!
//! Random span sizes make the layout unpredictable (the derandomisation
//! analysis of Section 7.3 relies on the 1–7 B span distribution); fixed
//! sizes could be jumped over once learned. Alignment fill created by an
//! inserted span is absorbed into the span — those bytes are dead anyway
//! and califorming them costs nothing extra — whereas natural padding
//! *not* adjacent to an inserted span is left unprotected under the
//! intelligent policy (califorming it would cost extra `CFORM` work for
//! little security, Section 2).

use crate::califormed::{CaliformedLayout, SecuritySpan};
use crate::ctype::StructDef;
use crate::layout::StructLayout;
use rand::Rng;

/// A security-byte insertion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertionPolicy {
    /// No security bytes at all (the un-califormed baseline).
    None,
    /// Harvest existing padding; layout (and ABI) unchanged.
    Opportunistic,
    /// Random-sized spans around every field.
    Full {
        /// Minimum span size in bytes (the paper uses 1).
        min: u8,
        /// Maximum span size in bytes (3, 5 or 7 in the evaluation).
        max: u8,
    },
    /// Random-sized spans around arrays and pointers only.
    Intelligent {
        /// Minimum span size in bytes.
        min: u8,
        /// Maximum span size in bytes.
        max: u8,
    },
    /// Fixed `n`-byte span after every field — the Figure 4 sweep. Not a
    /// deployment policy (predictable), only a measurement device.
    FixedPad(u8),
}

impl InsertionPolicy {
    /// The evaluation's three random-size variants: 1–3 B, 1–5 B, 1–7 B.
    pub const fn full_1_to(max: u8) -> Self {
        InsertionPolicy::Full { min: 1, max }
    }

    /// Intelligent counterpart of [`Self::full_1_to`].
    pub const fn intelligent_1_to(max: u8) -> Self {
        InsertionPolicy::Intelligent { min: 1, max }
    }

    /// Whether this policy modifies the type layout (breaking binary
    /// interoperability with uninstrumented modules, Section 6.2).
    pub fn changes_layout(&self) -> bool {
        !matches!(self, InsertionPolicy::None | InsertionPolicy::Opportunistic)
    }

    /// Applies the policy to a struct definition, producing the califormed
    /// layout. Random span sizes are drawn from `rng` (the compiler's
    /// per-build randomness; see the BROP discussion in Section 7.3).
    pub fn apply<R: Rng + ?Sized>(&self, def: &StructDef, rng: &mut R) -> CaliformedLayout {
        match *self {
            InsertionPolicy::None => from_natural(def, false),
            InsertionPolicy::Opportunistic => from_natural(def, true),
            InsertionPolicy::Full { min, max } => {
                rebuild(def, rng, SpanRule::Around, SpanSize::Random { min, max })
            }
            InsertionPolicy::Intelligent { min, max } => rebuild(
                def,
                rng,
                SpanRule::AttackProne,
                SpanSize::Random { min, max },
            ),
            InsertionPolicy::FixedPad(n) => {
                rebuild(def, rng, SpanRule::AfterEach, SpanSize::Fixed(n))
            }
        }
    }
}

#[derive(Clone, Copy)]
enum SpanRule {
    /// Before the first field, between every pair, after the last (full).
    Around,
    /// Only next to attack-prone fields (intelligent).
    AttackProne,
    /// After every field only (Figure 4's fixed padding sweep).
    AfterEach,
}

#[derive(Clone, Copy)]
enum SpanSize {
    Fixed(u8),
    Random { min: u8, max: u8 },
}

impl SpanSize {
    fn draw<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        match self {
            SpanSize::Fixed(n) => n as usize,
            SpanSize::Random { min, max } => {
                assert!(min >= 1 && min <= max, "invalid span range");
                rng.gen_range(min..=max) as usize
            }
        }
    }
}

fn from_natural(def: &StructDef, harvest_padding: bool) -> CaliformedLayout {
    let natural = StructLayout::natural(def);
    let spans = if harvest_padding {
        natural
            .paddings
            .iter()
            .map(|p| SecuritySpan {
                offset: p.offset,
                len: p.len,
            })
            .collect()
    } else {
        Vec::new()
    };
    CaliformedLayout {
        name: natural.name.clone(),
        fields: natural.fields.clone(),
        security_spans: spans,
        size: natural.size,
        align: natural.align,
        natural_size: natural.size,
    }
}

fn rebuild<R: Rng + ?Sized>(
    def: &StructDef,
    rng: &mut R,
    rule: SpanRule,
    size: SpanSize,
) -> CaliformedLayout {
    use crate::layout::{pack_run, placement_items, Item};

    let natural = StructLayout::natural(def);
    let align = natural.align;
    let mut fields = Vec::with_capacity(def.fields.len());
    let mut spans: Vec<SecuritySpan> = Vec::new();
    let mut cursor = 0usize;

    // Spans are decided per placement *item*: a bit-field run is an
    // indivisible composite (Section 7.2 — security bytes go around
    // composites of bit-fields, never inside them).
    let items = placement_items(def);
    let prone: Vec<bool> = items
        .iter()
        .map(|item| match item {
            Item::Plain(f) => f.ty.is_attack_prone(),
            Item::Run(_) => false,
        })
        .collect();
    let insert_before = |i: usize| match rule {
        SpanRule::Around => true,
        SpanRule::AttackProne => prone[i] || (i > 0 && prone[i - 1]),
        SpanRule::AfterEach => i > 0,
    };
    let insert_after_last = match rule {
        SpanRule::Around | SpanRule::AfterEach => !items.is_empty(),
        SpanRule::AttackProne => *prone.last().unwrap_or(&false),
    };

    for (i, item) in items.iter().enumerate() {
        let (item_align, item_size) = match item {
            Item::Plain(f) => (f.ty.align(), f.ty.size()),
            Item::Run(run) => {
                let packed = pack_run(run);
                (packed.align, packed.size)
            }
        };
        if insert_before(i) {
            let start = cursor;
            cursor += size.draw(rng);
            // Absorb the alignment fill into the span.
            cursor = cursor.div_ceil(item_align) * item_align;
            spans.push(SecuritySpan {
                offset: start,
                len: cursor - start,
            });
        } else {
            // Plain (unprotected) alignment padding.
            cursor = cursor.div_ceil(item_align) * item_align;
        }
        match item {
            Item::Plain(f) => {
                fields.push(crate::layout::PlacedField {
                    name: f.name.clone(),
                    offset: cursor,
                    size: f.ty.size(),
                    attack_prone: prone[i],
                });
            }
            Item::Run(run) => {
                for (name, off, covered) in pack_run(run).fields {
                    fields.push(crate::layout::PlacedField {
                        name,
                        offset: cursor + off,
                        size: covered,
                        attack_prone: false,
                    });
                }
            }
        }
        cursor += item_size;
    }

    if insert_after_last {
        let start = cursor;
        cursor += size.draw(rng);
        cursor = cursor.div_ceil(align) * align;
        spans.push(SecuritySpan {
            offset: start,
            len: cursor - start,
        });
    } else {
        cursor = cursor.div_ceil(align) * align;
    }

    CaliformedLayout {
        name: natural.name.clone(),
        fields,
        security_spans: spans,
        size: cursor.max(natural.size.min(1)),
        align,
        natural_size: natural.size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctype::{CType, Field, Scalar, StructDef};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn none_policy_is_the_natural_layout() {
        let def = StructDef::paper_example();
        let l = InsertionPolicy::None.apply(&def, &mut rng());
        assert_eq!(l.size, 88);
        assert!(l.security_spans.is_empty());
        assert_eq!(l.memory_overhead(), 1.0);
    }

    #[test]
    fn opportunistic_harvests_padding_without_moving_fields() {
        let def = StructDef::paper_example();
        let l = InsertionPolicy::Opportunistic.apply(&def, &mut rng());
        assert_eq!(l.size, 88, "layout unchanged");
        assert_eq!(l.security_spans.len(), 1);
        assert_eq!(l.security_spans[0].offset, 1);
        assert_eq!(l.security_spans[0].len, 3);
        let natural = StructLayout::natural(&def);
        for (a, b) in l.fields.iter().zip(natural.fields.iter()) {
            assert_eq!(a.offset, b.offset);
        }
    }

    #[test]
    fn full_policy_fences_every_field() {
        let def = StructDef::paper_example();
        let l = InsertionPolicy::full_1_to(3).apply(&def, &mut rng());
        // Spans: before each of 5 fields + after the last = 6.
        assert_eq!(l.security_spans.len(), 6);
        assert!(l.size > 88);
        assert!(l.memory_overhead() > 1.0);
        // Every span is at least one byte.
        assert!(l.security_spans.iter().all(|s| s.len >= 1));
        // Fields never overlap spans.
        for f in &l.fields {
            for s in &l.security_spans {
                assert!(
                    f.offset + f.size <= s.offset || s.offset + s.len <= f.offset,
                    "field {} overlaps span at {}",
                    f.name,
                    s.offset
                );
            }
        }
    }

    #[test]
    fn intelligent_policy_fences_only_prone_fields() {
        let def = StructDef::paper_example(); // c, i, buf, fp, d
        let l = InsertionPolicy::intelligent_1_to(7).apply(&def, &mut rng());
        // Spans: before buf (prone), between buf and fp (both prone → one),
        // after fp (prone, d not) = 3. Nothing before c or i, none after d.
        assert_eq!(l.security_spans.len(), 3);
        // c and i keep their natural offsets (nothing inserted before them).
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 4);
        // buf moved right by the first span.
        assert!(l.fields[2].offset > 8);
    }

    #[test]
    fn intelligent_on_scalar_only_struct_inserts_nothing() {
        let def = StructDef::new(
            "S",
            vec![
                Field::new("a", CType::Scalar(Scalar::Int)),
                Field::new("b", CType::Scalar(Scalar::Double)),
            ],
        );
        let l = InsertionPolicy::intelligent_1_to(7).apply(&def, &mut rng());
        assert!(l.security_spans.is_empty());
        assert_eq!(l.size, StructLayout::natural(&def).size);
    }

    #[test]
    fn fixed_pad_grows_monotonically() {
        let def = StructDef::paper_example();
        let mut last = 0usize;
        for n in 1..=7u8 {
            let l = InsertionPolicy::FixedPad(n).apply(&def, &mut rng());
            assert!(l.size >= last, "size must grow with padding");
            last = l.size;
        }
    }

    #[test]
    fn random_spans_vary_between_builds() {
        let def = StructDef::paper_example();
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(2);
        let a = InsertionPolicy::full_1_to(7).apply(&def, &mut r1);
        let b = InsertionPolicy::full_1_to(7).apply(&def, &mut r2);
        assert_ne!(
            a.security_spans, b.security_spans,
            "different build seeds must randomise the layout"
        );
    }

    #[test]
    fn layout_change_classification() {
        assert!(!InsertionPolicy::None.changes_layout());
        assert!(!InsertionPolicy::Opportunistic.changes_layout());
        assert!(InsertionPolicy::full_1_to(3).changes_layout());
        assert!(InsertionPolicy::intelligent_1_to(3).changes_layout());
        assert!(InsertionPolicy::FixedPad(1).changes_layout());
    }

    #[test]
    fn alignment_is_preserved_under_insertion() {
        let def = StructDef::paper_example();
        for policy in [
            InsertionPolicy::full_1_to(7),
            InsertionPolicy::intelligent_1_to(5),
            InsertionPolicy::FixedPad(3),
        ] {
            let l = policy.apply(&def, &mut rng());
            for f in &l.fields {
                let natural_field = &StructLayout::natural(&def)
                    .fields
                    .iter()
                    .find(|nf| nf.name == f.name)
                    .unwrap()
                    .clone();
                // Natural alignment of each field (infer from def).
                let fa = def
                    .fields
                    .iter()
                    .find(|df| df.name == f.name)
                    .unwrap()
                    .ty
                    .align();
                assert_eq!(f.offset % fa, 0, "field {} misaligned", f.name);
                assert_eq!(f.size, natural_field.size);
            }
            assert_eq!(l.size % l.align, 0, "struct size must stay aligned");
        }
    }
}
