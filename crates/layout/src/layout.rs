//! Natural (compiler) struct layout: field offsets and padding spans.
//!
//! This is the layout a C compiler produces from alignment rules alone —
//! the starting point for every insertion policy, and the source of the
//! "dead spaces" the opportunistic policy harvests (Section 2).

use crate::ctype::StructDef;

/// Where a padding span sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingKind {
    /// Between two fields (alignment of the following field).
    Interior,
    /// After the last field (struct size rounded to its alignment).
    Tail,
}

/// A run of compiler-inserted padding bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddingSpan {
    /// Byte offset of the first padding byte.
    pub offset: usize,
    /// Number of padding bytes.
    pub len: usize,
    /// Interior or tail.
    pub kind: PaddingKind,
}

/// A field placed at its natural offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedField {
    /// Field name.
    pub name: String,
    /// Byte offset within the struct.
    pub offset: usize,
    /// Field size in bytes.
    pub size: usize,
    /// Whether the intelligent policy fences this field.
    pub attack_prone: bool,
}

/// The natural layout of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct name.
    pub name: String,
    /// Fields at their offsets, in declaration order.
    pub fields: Vec<PlacedField>,
    /// Compiler-inserted padding spans, ascending by offset.
    pub paddings: Vec<PaddingSpan>,
    /// Total size including tail padding.
    pub size: usize,
    /// Struct alignment.
    pub align: usize,
}

/// A placement item: a plain field, or a run of consecutive bit-fields
/// packed into shared storage units. Califorms fences around runs, never
/// inside them (byte granularity cannot split a bit, Section 7.2).
pub(crate) enum Item<'a> {
    /// An ordinary field.
    Plain(&'a crate::ctype::Field),
    /// A maximal run of consecutive bit-fields.
    Run(Vec<&'a crate::ctype::Field>),
}

/// Groups a definition's fields into placement items.
pub(crate) fn placement_items(def: &StructDef) -> Vec<Item<'_>> {
    let mut items = Vec::new();
    let mut run: Vec<&crate::ctype::Field> = Vec::new();
    for f in &def.fields {
        if f.bits.is_some() {
            run.push(f);
        } else {
            if !run.is_empty() {
                items.push(Item::Run(std::mem::take(&mut run)));
            }
            items.push(Item::Plain(f));
        }
    }
    if !run.is_empty() {
        items.push(Item::Run(run));
    }
    items
}

/// A packed bit-field run (packed from bit 0; the run itself is placed at
/// a boundary aligned to its strictest base type).
pub(crate) struct PackedRun {
    /// `(name, byte offset within the run, bytes covered)` per bit-field.
    pub fields: Vec<(String, usize, usize)>,
    /// Run alignment (max base-type alignment).
    pub align: usize,
    /// Run size in bytes (bits rounded up; trailing dead bits are not
    /// harvestable padding).
    pub size: usize,
}

/// Packs a run of bit-fields GCC-style: consecutive bit-fields share a
/// base-type storage unit while they fit; a field that would cross a unit
/// boundary starts the next unit.
pub(crate) fn pack_run(run: &[&crate::ctype::Field]) -> PackedRun {
    let mut fields = Vec::with_capacity(run.len());
    let mut bit = 0usize;
    let mut align = 1usize;
    for f in run {
        let width = usize::from(f.bits.expect("run contains only bit-fields"));
        let unit = f.ty.size() * 8;
        align = align.max(f.ty.align());
        if bit % unit + width > unit {
            bit = bit.div_ceil(unit) * unit;
        }
        let first_byte = bit / 8;
        let last_byte = (bit + width - 1) / 8;
        fields.push((f.name.clone(), first_byte, last_byte - first_byte + 1));
        bit += width;
    }
    PackedRun {
        fields,
        align,
        size: bit.div_ceil(8),
    }
}

impl StructLayout {
    /// Computes the natural C layout of `def`.
    pub fn natural(def: &StructDef) -> Self {
        let align = def.align();
        let mut fields = Vec::with_capacity(def.fields.len());
        let mut paddings = Vec::new();
        let mut cursor = 0usize;
        let pad_to = |paddings: &mut Vec<PaddingSpan>, cursor: usize, aligned: usize| {
            if aligned > cursor {
                paddings.push(PaddingSpan {
                    offset: cursor,
                    len: aligned - cursor,
                    kind: PaddingKind::Interior,
                });
            }
        };
        for item in placement_items(def) {
            match item {
                Item::Plain(f) => {
                    let fa = f.ty.align();
                    let aligned = cursor.div_ceil(fa) * fa;
                    pad_to(&mut paddings, cursor, aligned);
                    fields.push(PlacedField {
                        name: f.name.clone(),
                        offset: aligned,
                        size: f.ty.size(),
                        attack_prone: f.ty.is_attack_prone(),
                    });
                    cursor = aligned + f.ty.size();
                }
                Item::Run(run) => {
                    let packed = pack_run(&run);
                    let aligned = cursor.div_ceil(packed.align) * packed.align;
                    pad_to(&mut paddings, cursor, aligned);
                    for (name, off, covered) in &packed.fields {
                        fields.push(PlacedField {
                            name: name.clone(),
                            offset: aligned + off,
                            size: *covered,
                            attack_prone: false,
                        });
                    }
                    cursor = aligned + packed.size;
                }
            }
        }
        let size = cursor.div_ceil(align) * align;
        if size > cursor {
            paddings.push(PaddingSpan {
                offset: cursor,
                len: size - cursor,
                kind: PaddingKind::Tail,
            });
        }
        Self {
            name: def.name.clone(),
            fields,
            paddings,
            size: size.max(if def.fields.is_empty() { 1 } else { 0 }),
            align,
        }
    }

    /// Sum of field sizes (no padding).
    pub fn payload_bytes(&self) -> usize {
        self.fields.iter().map(|f| f.size).sum()
    }

    /// Total padding bytes.
    pub fn padding_bytes(&self) -> usize {
        self.paddings.iter().map(|p| p.len).sum()
    }

    /// The paper's *struct density*: payload over total size (Section 2).
    /// An empty struct has density 0.
    pub fn density(&self) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            self.payload_bytes() as f64 / self.size as f64
        }
    }

    /// Whether the struct has at least one byte of harvestable padding.
    pub fn has_padding(&self) -> bool {
        !self.paddings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctype::{CType, Field, Scalar, StructDef};

    fn s(name: &str, fields: Vec<Field>) -> StructLayout {
        StructLayout::natural(&StructDef::new(name, fields))
    }

    #[test]
    fn paper_example_places_padding_after_char() {
        let layout = StructLayout::natural(&StructDef::paper_example());
        assert_eq!(layout.size, 88);
        assert_eq!(layout.paddings.len(), 1);
        assert_eq!(
            layout.paddings[0],
            PaddingSpan {
                offset: 1,
                len: 3,
                kind: PaddingKind::Interior
            }
        );
        assert_eq!(layout.fields[1].offset, 4); // int i
        assert_eq!(layout.fields[2].offset, 8); // buf
        assert_eq!(layout.fields[3].offset, 72); // fp
        assert_eq!(layout.fields[4].offset, 80); // d
        let density = layout.density();
        assert!((density - 85.0 / 88.0).abs() < 1e-12);
    }

    #[test]
    fn tail_padding_is_detected() {
        // struct { long l; char c; } → 8 + 1 + 7 tail = 16.
        let layout = s(
            "T",
            vec![
                Field::new("l", CType::Scalar(Scalar::Long)),
                Field::new("c", CType::Scalar(Scalar::Char)),
            ],
        );
        assert_eq!(layout.size, 16);
        assert_eq!(layout.paddings.len(), 1);
        assert_eq!(layout.paddings[0].kind, PaddingKind::Tail);
        assert_eq!(layout.paddings[0].offset, 9);
        assert_eq!(layout.paddings[0].len, 7);
    }

    #[test]
    fn dense_struct_has_no_padding() {
        let layout = s(
            "D",
            vec![
                Field::new("a", CType::Scalar(Scalar::Int)),
                Field::new("b", CType::Scalar(Scalar::Int)),
            ],
        );
        assert_eq!(layout.size, 8);
        assert!(!layout.has_padding());
        assert_eq!(layout.density(), 1.0);
    }

    #[test]
    fn nested_struct_uses_inner_alignment() {
        let inner = StructDef::new(
            "I",
            vec![
                Field::new("c", CType::Scalar(Scalar::Char)),
                Field::new("d", CType::Scalar(Scalar::Double)),
            ],
        );
        // inner: char + 7 pad + double = 16, align 8.
        assert_eq!(inner.layout_size(), 16);
        let outer = s(
            "O",
            vec![
                Field::new("c", CType::Scalar(Scalar::Char)),
                Field::new("in", CType::Struct(inner)),
            ],
        );
        assert_eq!(outer.fields[1].offset, 8);
        assert_eq!(outer.size, 24);
    }

    #[test]
    fn char_only_struct_is_fully_dense() {
        let layout = s("C", vec![Field::new("b", CType::char_array(13))]);
        assert_eq!(layout.size, 13);
        assert_eq!(layout.align, 1);
        assert_eq!(layout.density(), 1.0);
    }

    #[test]
    fn density_counts_all_paddings() {
        // char, int, char, long → 1+3pad+4+1+7pad+8 = 24; payload 14.
        let layout = s(
            "P",
            vec![
                Field::new("a", CType::Scalar(Scalar::Char)),
                Field::new("b", CType::Scalar(Scalar::Int)),
                Field::new("c", CType::Scalar(Scalar::Char)),
                Field::new("d", CType::Scalar(Scalar::Long)),
            ],
        );
        assert_eq!(layout.size, 24);
        assert_eq!(layout.payload_bytes(), 14);
        assert_eq!(layout.padding_bytes(), 10);
    }
}
