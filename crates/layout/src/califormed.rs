//! Califormed layouts: where fields and security bytes land after a policy
//! runs, and the `CFORM` operations an allocator must issue (Section 6.1).

use califorms_core::LINE_BYTES;

/// A run of security bytes within a califormed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecuritySpan {
    /// Byte offset of the first security byte.
    pub offset: usize,
    /// Span length in bytes.
    pub len: usize,
}

/// A struct layout after security-byte insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct CaliformedLayout {
    /// Struct name.
    pub name: String,
    /// Fields at their (possibly shifted) offsets.
    pub fields: Vec<crate::layout::PlacedField>,
    /// Security-byte spans, ascending, non-overlapping.
    pub security_spans: Vec<SecuritySpan>,
    /// Total object size including security bytes.
    pub size: usize,
    /// Struct alignment (unchanged by insertion).
    pub align: usize,
    /// The natural (pre-insertion) size, for overhead accounting.
    pub natural_size: usize,
}

/// One `CFORM` the allocator issues: a line address plus the byte mask to
/// set (or unset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CformOp {
    /// Cache-line-aligned address.
    pub line_addr: u64,
    /// Bit `i` set ⇒ byte `i` of the line is a security byte of this object.
    pub mask: u64,
}

impl CaliformedLayout {
    /// Total security bytes in the object.
    pub fn security_bytes(&self) -> usize {
        self.security_spans.iter().map(|s| s.len).sum()
    }

    /// Memory overhead factor vs the natural layout (1.0 = free).
    pub fn memory_overhead(&self) -> f64 {
        if self.natural_size == 0 {
            1.0
        } else {
            self.size as f64 / self.natural_size as f64
        }
    }

    /// Whether byte `offset` within the object is a security byte.
    pub fn is_security_offset(&self, offset: usize) -> bool {
        self.security_spans
            .iter()
            .any(|s| (s.offset..s.offset + s.len).contains(&offset))
    }

    /// Fraction of the object that is blacklisted (the `P/N` of the
    /// Section 7.3 derandomisation analysis).
    pub fn blacklist_fraction(&self) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            self.security_bytes() as f64 / self.size as f64
        }
    }

    /// The per-line `CFORM` set operations for an object allocated at
    /// `base` (which the paper's `malloc` issues after allocation;
    /// one `CFORM` covers one line). Lines without security bytes get no
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not at least 8-byte aligned — heap allocators
    /// guarantee ABI alignment, and the mask math assumes in-line offsets.
    pub fn cform_ops(&self, base: u64) -> Vec<CformOp> {
        assert_eq!(base % 8, 0, "allocation base must be ABI-aligned");
        let mut ops: Vec<CformOp> = Vec::new();
        for span in &self.security_spans {
            for i in 0..span.len {
                let addr = base + (span.offset + i) as u64;
                let line_addr = addr & !(LINE_BYTES as u64 - 1);
                let bit = (addr - line_addr) as u32;
                match ops.iter_mut().find(|op| op.line_addr == line_addr) {
                    Some(op) => op.mask |= 1 << bit,
                    None => ops.push(CformOp {
                        line_addr,
                        mask: 1 << bit,
                    }),
                }
            }
        }
        ops.sort_by_key(|op| op.line_addr);
        ops
    }

    /// Byte offset of a named field, if present.
    pub fn field_offset(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctype::StructDef;
    use crate::policy::InsertionPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn layout() -> CaliformedLayout {
        let mut rng = SmallRng::seed_from_u64(7);
        InsertionPolicy::Opportunistic.apply(&StructDef::paper_example(), &mut rng)
    }

    #[test]
    fn security_byte_accounting() {
        let l = layout();
        assert_eq!(l.security_bytes(), 3);
        assert!(l.is_security_offset(1));
        assert!(l.is_security_offset(3));
        assert!(!l.is_security_offset(0));
        assert!(!l.is_security_offset(4));
        assert!((l.blacklist_fraction() - 3.0 / 88.0).abs() < 1e-12);
    }

    #[test]
    fn cform_ops_single_line() {
        let l = layout();
        let ops = l.cform_ops(0x1000);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].line_addr, 0x1000);
        assert_eq!(ops[0].mask, 0b1110); // bytes 1..4
    }

    #[test]
    fn cform_ops_span_multiple_lines() {
        let l = layout();
        // Base at 8 bytes below a line boundary puts offsets 1..4 in the
        // same line; shift so the span crosses: base = line end - 2.
        let base = (0x1000 + 62) & !7u64; // 0x1038: offsets 1..4 → 0x1039..0x103C, same line
        let ops = l.cform_ops(base);
        assert_eq!(ops.len(), 1);
        // Now force a cross: security span at offsets 1,2,3 from base 0x103E
        // isn't ABI-aligned; craft a layout instead.
        let cross = CaliformedLayout {
            name: "X".into(),
            fields: vec![],
            security_spans: vec![SecuritySpan { offset: 62, len: 4 }],
            size: 72,
            align: 8,
            natural_size: 64,
        };
        let ops = cross.cform_ops(0x1000);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].line_addr, 0x1000);
        assert_eq!(ops[0].mask, 1 << 62 | 1 << 63);
        assert_eq!(ops[1].line_addr, 0x1040);
        assert_eq!(ops[1].mask, 0b11);
    }

    #[test]
    fn no_spans_no_ops() {
        let mut rng = SmallRng::seed_from_u64(7);
        let l = InsertionPolicy::None.apply(&StructDef::paper_example(), &mut rng);
        assert!(l.cform_ops(0x2000).is_empty());
        assert_eq!(l.blacklist_fraction(), 0.0);
    }

    #[test]
    fn field_offsets_are_queryable() {
        let l = layout();
        assert_eq!(l.field_offset("c"), Some(0));
        assert_eq!(l.field_offset("i"), Some(4));
        assert_eq!(l.field_offset("buf"), Some(8));
        assert_eq!(l.field_offset("nope"), None);
    }

    #[test]
    fn full_policy_mask_bits_match_span_bytes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let l = InsertionPolicy::full_1_to(7).apply(&StructDef::paper_example(), &mut rng);
        let total_bits: u32 = l.cform_ops(0).iter().map(|op| op.mask.count_ones()).sum();
        assert_eq!(total_bits as usize, l.security_bytes());
    }
}
