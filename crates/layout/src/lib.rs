//! # califorms-layout
//!
//! The software half of Califorms' compiler support (Sections 2 and 6.2):
//! a C-ABI struct-layout engine and the three security-byte insertion
//! policies.
//!
//! * [`ctype`] — a model IR of C types (scalars, pointers, arrays, nested
//!   structs) with x86-64 sizes and alignments.
//! * [`layout`] — natural struct layout: field offsets, compiler-inserted
//!   padding spans, tail padding (what the paper's opportunistic policy
//!   harvests).
//! * [`policy`] — the insertion policies of Listing 1: *opportunistic*
//!   (padding bytes become security bytes, layout unchanged), *full*
//!   (random-sized spans around every field), *intelligent* (spans around
//!   arrays and pointers), plus the fixed-size padding used by the
//!   motivation study (Figure 4).
//! * [`califormed`] — the resulting califormed layout: where fields landed,
//!   where security bytes sit, and the per-line `CFORM` masks an allocator
//!   must issue.
//! * [`census`] — struct-density statistics over synthetic corpora (the
//!   Figure 3 histograms).
//! * [`interop`] — marshalling across uninstrumented-module boundaries
//!   (the Sections 6.2/7.3 interoperability story).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod califormed;
pub mod census;
pub mod ctype;
pub mod interop;
pub mod layout;
pub mod policy;

pub use califormed::CaliformedLayout;
pub use ctype::{CType, Field, Scalar, StructDef};
pub use layout::{PaddingSpan, StructLayout};
pub use policy::InsertionPolicy;
