//! Struct-density census — the Figure 3 study.
//!
//! The paper runs a compiler pass over SPEC CPU2006 and the V8 engine and
//! reports the histogram of *struct densities* (payload bytes over total
//! size): 45.7 % of SPEC structs and 41.0 % of V8 structs have at least one
//! byte of padding. We cannot ship those codebases, so this module
//! generates synthetic struct corpora from field-type mixes chosen to
//! match the published statistics (the substitution is recorded in
//! DESIGN.md §2): a C-heavy mix (many `char`/`short` fields, long structs)
//! for SPEC and an object-oriented mix (pointer-rich, more uniform 8-byte
//! fields) for V8.

use crate::ctype::{CType, Field, Scalar, StructDef};
use crate::layout::StructLayout;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A corpus profile: the field-type mix of a codebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusProfile {
    /// SPEC CPU2006-like C/C++ mix.
    SpecCpu2006,
    /// V8 JavaScript-engine-like mix (pointer-heavy objects).
    V8,
}

impl CorpusProfile {
    /// Weighted scalar mix: `(scalar, weight)`.
    fn scalar_weights(self) -> &'static [(Scalar, u32)] {
        match self {
            // C code: many small integers and chars alongside word-sized
            // fields — frequent alignment holes.
            CorpusProfile::SpecCpu2006 => &[
                (Scalar::Char, 16),
                (Scalar::Short, 10),
                (Scalar::Int, 34),
                (Scalar::Long, 8),
                (Scalar::Float, 6),
                (Scalar::Double, 8),
                (Scalar::Ptr, 16),
                (Scalar::FnPtr, 2),
            ],
            // Engine objects: pointer/word dominated, fewer sub-word
            // fields, so slightly fewer structs have holes.
            CorpusProfile::V8 => &[
                (Scalar::Char, 9),
                (Scalar::Short, 7),
                (Scalar::Int, 30),
                (Scalar::Long, 12),
                (Scalar::Float, 2),
                (Scalar::Double, 6),
                (Scalar::Ptr, 30),
                (Scalar::FnPtr, 4),
            ],
        }
    }

    /// Probability (in percent) that a field is a small array instead of a
    /// scalar.
    fn array_percent(self) -> u32 {
        match self {
            CorpusProfile::SpecCpu2006 => 12,
            CorpusProfile::V8 => 6,
        }
    }

    /// Field-count range for generated structs.
    fn field_count_range(self) -> (usize, usize) {
        match self {
            CorpusProfile::SpecCpu2006 => (1, 12),
            CorpusProfile::V8 => (1, 10),
        }
    }

    /// Probability (in percent) that a struct is *homogeneous* — all fields
    /// share one scalar type, hence no padding. Real codebases are full of
    /// these (coordinate pairs, pointer tables, packed records), which is
    /// why only ~46 % of SPEC structs have holes despite C's alignment
    /// rules; these constants are calibrated to the paper's 45.7 % / 41.0 %.
    fn homogeneous_percent(self) -> u32 {
        match self {
            CorpusProfile::SpecCpu2006 => 46,
            CorpusProfile::V8 => 48,
        }
    }
}

/// A generated corpus of struct definitions.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The struct definitions.
    pub structs: Vec<StructDef>,
    /// Which profile generated them.
    pub profile: CorpusProfile,
}

impl Corpus {
    /// Generates `count` structs from a profile, deterministically from
    /// `seed`.
    pub fn generate(profile: CorpusProfile, count: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights = profile.scalar_weights();
        let total_weight: u32 = weights.iter().map(|(_, w)| w).sum();
        let (min_fields, max_fields) = profile.field_count_range();
        let structs = (0..count)
            .map(|si| {
                let n = rng.gen_range(min_fields..=max_fields);
                let homogeneous = rng.gen_range(0..100) < profile.homogeneous_percent();
                let uniform = pick_scalar(&mut rng, weights, total_weight);
                let fields = (0..n)
                    .map(|fi| {
                        let scalar = if homogeneous {
                            uniform
                        } else {
                            pick_scalar(&mut rng, weights, total_weight)
                        };
                        let ty = if rng.gen_range(0..100) < profile.array_percent() {
                            let len = rng.gen_range(2..=32);
                            CType::Array(Box::new(CType::Scalar(scalar)), len)
                        } else {
                            CType::Scalar(scalar)
                        };
                        Field::new(format!("f{fi}"), ty)
                    })
                    .collect();
                StructDef::new(format!("s{si}"), fields)
            })
            .collect();
        Self { structs, profile }
    }

    /// Densities of every struct in the corpus.
    pub fn densities(&self) -> Vec<f64> {
        self.structs
            .iter()
            .map(|s| StructLayout::natural(s).density())
            .collect()
    }

    /// Fraction of structs with at least one padding byte — the paper's
    /// headline statistic (45.7 % SPEC, 41.0 % V8).
    pub fn fraction_with_padding(&self) -> f64 {
        if self.structs.is_empty() {
            return 0.0;
        }
        let padded = self
            .structs
            .iter()
            .filter(|s| StructLayout::natural(s).has_padding())
            .count();
        padded as f64 / self.structs.len() as f64
    }

    /// Histogram of struct densities over `bins` equal-width bins spanning
    /// `(0, 1]`, as fractions of the corpus (the Figure 3 y-axis).
    pub fn density_histogram(&self, bins: usize) -> Vec<f64> {
        assert!(bins > 0);
        let mut hist = vec![0usize; bins];
        let densities = self.densities();
        for d in &densities {
            // Density 1.0 lands in the last bin; clamp the pathological 0.
            let idx = ((d * bins as f64).ceil() as usize).clamp(1, bins) - 1;
            hist[idx] += 1;
        }
        let n = densities.len().max(1) as f64;
        hist.into_iter().map(|c| c as f64 / n).collect()
    }

    /// Mean padding bytes per struct.
    pub fn mean_padding_bytes(&self) -> f64 {
        if self.structs.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .structs
            .iter()
            .map(|s| StructLayout::natural(s).padding_bytes())
            .sum();
        total as f64 / self.structs.len() as f64
    }
}

fn pick_scalar<R: Rng + ?Sized>(rng: &mut R, weights: &[(Scalar, u32)], total: u32) -> Scalar {
    let mut roll = rng.gen_range(0..total);
    for &(s, w) in weights {
        if roll < w {
            return s;
        }
        roll -= w;
    }
    unreachable!("weights sum to total")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = Corpus::generate(CorpusProfile::SpecCpu2006, 100, 3);
        let b = Corpus::generate(CorpusProfile::SpecCpu2006, 100, 3);
        assert_eq!(a.structs, b.structs);
        let c = Corpus::generate(CorpusProfile::SpecCpu2006, 100, 4);
        assert_ne!(a.structs, c.structs);
    }

    #[test]
    fn spec_padding_fraction_matches_paper() {
        let corpus = Corpus::generate(CorpusProfile::SpecCpu2006, 20_000, 1);
        let frac = corpus.fraction_with_padding();
        assert!(
            (frac - 0.457).abs() < 0.05,
            "SPEC-like corpus: {frac:.3} should be near the paper's 0.457"
        );
    }

    #[test]
    fn v8_padding_fraction_matches_paper() {
        let corpus = Corpus::generate(CorpusProfile::V8, 20_000, 1);
        let frac = corpus.fraction_with_padding();
        assert!(
            (frac - 0.410).abs() < 0.05,
            "V8-like corpus: {frac:.3} should be near the paper's 0.410"
        );
    }

    #[test]
    fn histogram_sums_to_one_and_is_top_heavy() {
        let corpus = Corpus::generate(CorpusProfile::SpecCpu2006, 5_000, 2);
        let hist = corpus.density_histogram(10);
        assert_eq!(hist.len(), 10);
        let sum: f64 = hist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Figure 3 shape: the densest bin dominates (most structs are
        // fully dense or nearly so).
        let max = hist.iter().cloned().fold(0.0, f64::max);
        assert_eq!(hist[9], max, "densities cluster in the (0.9, 1.0] bin");
    }

    #[test]
    fn histogram_bins_capture_extremes() {
        // A single fully dense struct lands in the top bin.
        let corpus = Corpus {
            structs: vec![StructDef::new(
                "d",
                vec![Field::new("x", CType::Scalar(Scalar::Int))],
            )],
            profile: CorpusProfile::SpecCpu2006,
        };
        let hist = corpus.density_histogram(10);
        assert_eq!(hist[9], 1.0);
    }

    #[test]
    fn mean_padding_is_positive_for_c_mix() {
        let corpus = Corpus::generate(CorpusProfile::SpecCpu2006, 2_000, 9);
        assert!(corpus.mean_padding_bytes() > 0.5);
    }
}
