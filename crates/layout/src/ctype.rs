//! A model IR of C/C++ types with x86-64 (LP64) sizes and alignments.
//!
//! This is what the paper's source-to-source LLVM pass sees when it
//! examines "each compound data type, a struct or a class" (Section 3).
//! The model covers what the insertion policies need: scalar kinds (to
//! tell which fields are attack-prone), arrays, pointers, and nesting.

/// C scalar types under the LP64 data model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// `char` / `signed char` / `unsigned char` — 1 byte.
    Char,
    /// `short` — 2 bytes.
    Short,
    /// `int` — 4 bytes.
    Int,
    /// `long` / `long long` / `size_t` — 8 bytes.
    Long,
    /// `float` — 4 bytes.
    Float,
    /// `double` — 8 bytes.
    Double,
    /// Data pointer — 8 bytes.
    Ptr,
    /// Function pointer — 8 bytes; the *intelligent* policy treats it as
    /// the most security-critical scalar.
    FnPtr,
}

impl Scalar {
    /// Size in bytes.
    pub const fn size(self) -> usize {
        match self {
            Scalar::Char => 1,
            Scalar::Short => 2,
            Scalar::Int | Scalar::Float => 4,
            Scalar::Long | Scalar::Double | Scalar::Ptr | Scalar::FnPtr => 8,
        }
    }

    /// Alignment in bytes (natural alignment on x86-64).
    pub const fn align(self) -> usize {
        self.size()
    }

    /// Whether the intelligent policy considers this scalar a pointer
    /// (data or function) worth fencing.
    pub const fn is_pointer(self) -> bool {
        matches!(self, Scalar::Ptr | Scalar::FnPtr)
    }
}

/// A C type: scalar, array, or (possibly nested) struct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// A scalar field.
    Scalar(Scalar),
    /// `T[n]`.
    Array(Box<CType>, usize),
    /// A nested struct (by value).
    Struct(StructDef),
}

impl CType {
    /// Shorthand for `char buf[n]`.
    pub fn char_array(n: usize) -> Self {
        CType::Array(Box::new(CType::Scalar(Scalar::Char)), n)
    }

    /// Size in bytes, including internal and tail padding for structs.
    pub fn size(&self) -> usize {
        match self {
            CType::Scalar(s) => s.size(),
            CType::Array(elem, n) => elem.size() * n,
            CType::Struct(def) => def.layout_size(),
        }
    }

    /// Alignment in bytes.
    pub fn align(&self) -> usize {
        match self {
            CType::Scalar(s) => s.align(),
            CType::Array(elem, _) => elem.align(),
            CType::Struct(def) => def.align(),
        }
    }

    /// Whether the intelligent policy fences this type: arrays (overflow
    /// sources) and pointers (overflow targets).
    pub fn is_attack_prone(&self) -> bool {
        match self {
            CType::Scalar(s) => s.is_pointer(),
            CType::Array(..) => true,
            CType::Struct(_) => false,
        }
    }
}

/// A named struct field, optionally a bit-field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name (diagnostics only).
    pub name: String,
    /// Field type (for a bit-field, the declared base type).
    pub ty: CType,
    /// `Some(width)` makes this a bit-field of `width` bits packed into
    /// units of the base type (GCC-style packing: consecutive bit-fields
    /// share a unit while they fit). Califorms cannot blacklist at bit
    /// granularity (Section 7.2) — the policies fence around the packed
    /// *unit*, never inside it.
    pub bits: Option<u8>,
}

impl Field {
    /// Convenience constructor for an ordinary field.
    pub fn new(name: impl Into<String>, ty: CType) -> Self {
        Self {
            name: name.into(),
            ty,
            bits: None,
        }
    }

    /// A bit-field of `bits` bits over a scalar base type.
    ///
    /// # Panics
    ///
    /// Panics if the base type is not a scalar or `bits` exceeds the base
    /// type's width (C constraint).
    pub fn bitfield(name: impl Into<String>, base: Scalar, bits: u8) -> Self {
        assert!(bits >= 1, "zero-width anonymous bit-fields not modelled");
        assert!(
            (bits as usize) <= base.size() * 8,
            "bit-field wider than its base type"
        );
        Self {
            name: name.into(),
            ty: CType::Scalar(base),
            bits: Some(bits),
        }
    }
}

/// A struct (or class) definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

impl StructDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Self {
        Self {
            name: name.into(),
            fields,
        }
    }

    /// The struct's alignment: the maximum field alignment (1 for an empty
    /// struct).
    pub fn align(&self) -> usize {
        self.fields.iter().map(|f| f.ty.align()).max().unwrap_or(1)
    }

    /// Natural (compiler) layout size including tail padding.
    pub fn layout_size(&self) -> usize {
        crate::layout::StructLayout::natural(self).size
    }

    /// The paper's running example (Listing 1a): `struct A`.
    pub fn paper_example() -> Self {
        Self::new(
            "A",
            vec![
                Field::new("c", CType::Scalar(Scalar::Char)),
                Field::new("i", CType::Scalar(Scalar::Int)),
                Field::new("buf", CType::char_array(64)),
                Field::new("fp", CType::Scalar(Scalar::FnPtr)),
                Field::new("d", CType::Scalar(Scalar::Double)),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_lp64() {
        assert_eq!(Scalar::Char.size(), 1);
        assert_eq!(Scalar::Short.size(), 2);
        assert_eq!(Scalar::Int.size(), 4);
        assert_eq!(Scalar::Long.size(), 8);
        assert_eq!(Scalar::Float.size(), 4);
        assert_eq!(Scalar::Double.size(), 8);
        assert_eq!(Scalar::Ptr.size(), 8);
        assert_eq!(Scalar::FnPtr.size(), 8);
    }

    #[test]
    fn array_size_multiplies() {
        let a = CType::char_array(64);
        assert_eq!(a.size(), 64);
        assert_eq!(a.align(), 1);
        let ints = CType::Array(Box::new(CType::Scalar(Scalar::Int)), 10);
        assert_eq!(ints.size(), 40);
        assert_eq!(ints.align(), 4);
    }

    #[test]
    fn attack_prone_classification() {
        assert!(CType::char_array(4).is_attack_prone());
        assert!(CType::Scalar(Scalar::Ptr).is_attack_prone());
        assert!(CType::Scalar(Scalar::FnPtr).is_attack_prone());
        assert!(!CType::Scalar(Scalar::Int).is_attack_prone());
        assert!(!CType::Scalar(Scalar::Char).is_attack_prone());
    }

    #[test]
    fn paper_example_size() {
        // char(1) + pad(3) + int(4) + buf(64) + fp(8) + double(8) = 88.
        let def = StructDef::paper_example();
        assert_eq!(def.align(), 8);
        assert_eq!(def.layout_size(), 88);
    }

    #[test]
    fn empty_struct_has_align_one() {
        let def = StructDef::new("E", vec![]);
        assert_eq!(def.align(), 1);
    }
}
