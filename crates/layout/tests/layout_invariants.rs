//! Property tests on the layout engine and insertion policies: whatever
//! struct definition and policy are thrown at them, the resulting layouts
//! must keep the structural invariants a C compiler (and the allocator)
//! depend on.

use califorms_layout::ctype::{CType, Field, Scalar, StructDef};
use califorms_layout::{InsertionPolicy, StructLayout};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        Just(Scalar::Char),
        Just(Scalar::Short),
        Just(Scalar::Int),
        Just(Scalar::Long),
        Just(Scalar::Float),
        Just(Scalar::Double),
        Just(Scalar::Ptr),
        Just(Scalar::FnPtr),
    ]
}

fn arb_struct() -> impl Strategy<Value = StructDef> {
    proptest::collection::vec((arb_scalar(), 0usize..3, 1usize..24), 1..10).prop_map(|fields| {
        StructDef::new(
            "s",
            fields
                .into_iter()
                .enumerate()
                .map(|(i, (scalar, kind, n))| {
                    let ty = match kind {
                        0 => CType::Scalar(scalar),
                        1 => CType::Array(Box::new(CType::Scalar(scalar)), n),
                        _ => CType::Struct(StructDef::new(
                            format!("inner{i}"),
                            vec![
                                Field::new("a", CType::Scalar(Scalar::Char)),
                                Field::new("b", CType::Scalar(scalar)),
                            ],
                        )),
                    };
                    Field::new(format!("f{i}"), ty)
                })
                .collect(),
        )
    })
}

fn arb_policy() -> impl Strategy<Value = InsertionPolicy> {
    prop_oneof![
        Just(InsertionPolicy::None),
        Just(InsertionPolicy::Opportunistic),
        (1u8..=7).prop_map(|max| InsertionPolicy::Full { min: 1, max }),
        (1u8..=7).prop_map(|max| InsertionPolicy::Intelligent { min: 1, max }),
        (1u8..=7).prop_map(InsertionPolicy::FixedPad),
    ]
}

proptest! {
    /// Natural layout: fields are in bounds, non-overlapping, aligned;
    /// density accounting is exact.
    #[test]
    fn natural_layout_invariants(def in arb_struct()) {
        let layout = StructLayout::natural(&def);
        let mut cursor = 0usize;
        for (f, df) in layout.fields.iter().zip(&def.fields) {
            prop_assert!(f.offset >= cursor, "fields in declaration order");
            prop_assert_eq!(f.offset % df.ty.align(), 0, "field aligned");
            prop_assert!(f.offset + f.size <= layout.size, "field in bounds");
            cursor = f.offset + f.size;
        }
        prop_assert_eq!(layout.size % layout.align, 0, "size multiple of align");
        prop_assert_eq!(
            layout.payload_bytes() + layout.padding_bytes(),
            layout.size,
            "payload + padding == size"
        );
        let d = layout.density();
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// Califormed layouts: spans and fields tile without overlap, fields
    /// keep their alignment, and no span byte falls inside a field.
    #[test]
    fn califormed_layout_invariants(def in arb_struct(), policy in arb_policy(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let l = policy.apply(&def, &mut rng);
        for f in &l.fields {
            prop_assert!(f.offset + f.size <= l.size);
            for s in &l.security_spans {
                let disjoint = f.offset + f.size <= s.offset || s.offset + s.len <= f.offset;
                prop_assert!(disjoint, "span {:?} overlaps field {}", s, f.name);
            }
        }
        for s in &l.security_spans {
            prop_assert!(s.len >= 1);
            prop_assert!(s.offset + s.len <= l.size, "span in bounds");
        }
        for w in l.security_spans.windows(2) {
            prop_assert!(w[0].offset + w[0].len <= w[1].offset, "spans ordered, disjoint");
        }
        prop_assert!(l.size >= l.natural_size || !policy.changes_layout());
        prop_assert_eq!(l.size % l.align.max(1), 0);
        // Every field keeps its natural alignment.
        for (f, df) in l.fields.iter().zip(&def.fields) {
            prop_assert_eq!(f.offset % df.ty.align(), 0, "{} aligned", f.name);
        }
    }

    /// CFORM mask bits equal the span byte count, for any allocation base.
    #[test]
    fn cform_ops_cover_exactly_the_spans(
        def in arb_struct(),
        policy in arb_policy(),
        seed in any::<u64>(),
        base_block in 0u64..1024,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let l = policy.apply(&def, &mut rng);
        let base = 0x1000_0000 + base_block * 16;
        let ops = l.cform_ops(base);
        let bits: u32 = ops.iter().map(|op| op.mask.count_ones()).sum();
        prop_assert_eq!(bits as usize, l.security_bytes());
        // Masks point at the right absolute bytes.
        for op in &ops {
            for bit in 0..64u64 {
                if op.mask >> bit & 1 == 1 {
                    let addr = op.line_addr + bit;
                    let off = (addr - base) as usize;
                    prop_assert!(l.is_security_offset(off), "offset {off}");
                }
            }
        }
    }
}
