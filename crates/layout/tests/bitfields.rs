//! Bit-field layout and the Section 7.2 bit-granularity limitation:
//! Califorms fences around bit-field composites, never inside them.

use califorms_layout::ctype::{CType, Field, Scalar, StructDef};
use califorms_layout::{InsertionPolicy, StructLayout};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn flags_struct() -> StructDef {
    // struct { char tag; unsigned a:3; unsigned b:7; unsigned c:30; void (*fp)(); }
    StructDef::new(
        "flags",
        vec![
            Field::new("tag", CType::Scalar(Scalar::Char)),
            Field::bitfield("a", Scalar::Int, 3),
            Field::bitfield("b", Scalar::Int, 7),
            Field::bitfield("c", Scalar::Int, 30),
            Field::new("fp", CType::Scalar(Scalar::FnPtr)),
        ],
    )
}

#[test]
fn bitfields_pack_into_shared_units() {
    let layout = StructLayout::natural(&flags_struct());
    let off = |n: &str| layout.fields.iter().find(|f| f.name == n).unwrap().offset;
    // tag at 0; the run is int-aligned at 4.
    assert_eq!(off("tag"), 0);
    assert_eq!(off("a"), 4, "run starts at the next int boundary");
    assert_eq!(
        off("b"),
        4,
        "a(3)+b(7)=10 bits share the first unit byte-range"
    );
    // c:30 cannot fit after bit 10 of a 32-bit unit → next unit at byte 8.
    assert_eq!(off("c"), 8);
    assert_eq!(off("fp"), 16, "run consumes bytes 4..12, fp aligns to 16");
    assert_eq!(layout.size, 24);
}

#[test]
fn adjacent_small_bitfields_share_one_unit() {
    let def = StructDef::new(
        "small",
        vec![
            Field::bitfield("x", Scalar::Int, 5),
            Field::bitfield("y", Scalar::Int, 11),
            Field::bitfield("z", Scalar::Int, 16),
        ],
    );
    let layout = StructLayout::natural(&def);
    // 5+11+16 = 32 bits exactly: one int unit.
    assert_eq!(layout.size, 4);
    for f in &layout.fields {
        assert!(f.offset < 4);
    }
}

#[test]
fn full_policy_fences_around_the_run_not_inside() {
    let mut rng = SmallRng::seed_from_u64(3);
    let l = InsertionPolicy::full_1_to(7).apply(&flags_struct(), &mut rng);
    // Items: tag, run(a,b,c), fp → spans before each of the 3 items + one
    // after the last = 4.
    assert_eq!(l.security_spans.len(), 4);
    // No span byte may fall between the run's first and last covered byte.
    let run_start = l.field_offset("a").unwrap();
    let c = l.fields.iter().find(|f| f.name == "c").unwrap();
    let run_end = c.offset + c.size;
    for s in &l.security_spans {
        let inside = s.offset >= run_start && s.offset < run_end;
        assert!(
            !inside,
            "span at {} lands inside the bit-field run",
            s.offset
        );
    }
}

#[test]
fn intelligent_policy_ignores_bitfields_but_fences_the_pointer() {
    let mut rng = SmallRng::seed_from_u64(4);
    let l = InsertionPolicy::intelligent_1_to(7).apply(&flags_struct(), &mut rng);
    // Only fp is attack-prone: one span before it, one after.
    assert_eq!(l.security_spans.len(), 2);
    let fp = l.field_offset("fp").unwrap();
    assert!(l.security_spans[0].offset < fp);
    assert!(l.security_spans[1].offset >= fp + 8);
}

#[test]
fn bitfield_runs_keep_their_base_alignment_under_insertion() {
    let mut rng = SmallRng::seed_from_u64(5);
    let l = InsertionPolicy::full_1_to(7).apply(&flags_struct(), &mut rng);
    let a = l.field_offset("a").unwrap();
    assert_eq!(a % 4, 0, "int-based run stays int-aligned");
}

#[test]
fn long_based_bitfields_use_eight_byte_units() {
    let def = StructDef::new(
        "wide",
        vec![
            Field::bitfield("lo", Scalar::Long, 40),
            Field::bitfield("hi", Scalar::Long, 30),
        ],
    );
    let layout = StructLayout::natural(&def);
    // 40 bits then 30 more cannot share a 64-bit unit → second unit.
    let hi = layout.fields.iter().find(|f| f.name == "hi").unwrap();
    assert_eq!(hi.offset, 8);
    assert_eq!(layout.size, 16);
    assert_eq!(layout.align, 8);
}

#[test]
#[should_panic(expected = "wider than its base type")]
fn oversized_bitfield_is_rejected() {
    Field::bitfield("bad", Scalar::Int, 33);
}

#[test]
fn char_bitfields_turned_functional_can_be_fenced() {
    // The paper's workaround: turn bit-fields into chars to protect them.
    let def = StructDef::new(
        "charified",
        vec![
            Field::new("a", CType::Scalar(Scalar::Char)), // was a:3
            Field::new("b", CType::Scalar(Scalar::Char)), // was b:7
        ],
    );
    let mut rng = SmallRng::seed_from_u64(6);
    let l = InsertionPolicy::full_1_to(3).apply(&def, &mut rng);
    // Now every boundary can carry a span: a | span | b.
    assert_eq!(l.security_spans.len(), 3);
    let (a, b) = (l.field_offset("a").unwrap(), l.field_offset("b").unwrap());
    assert!(
        l.security_spans
            .iter()
            .any(|s| s.offset > a && s.offset < b),
        "a span fits between the two char-ified flags"
    );
}
