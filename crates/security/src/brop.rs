//! Blind-ROP-style derandomisation (Section 7.3, "Derandomization
//! Attacks").
//!
//! The compiler's span randomness is *static* — fixed at build time, like
//! the Linux `randstruct` plugin. A BROP attacker exploits
//! restart-after-crash semantics: crash the service repeatedly, keeping
//! partial knowledge between attempts, until the layout is learned. The
//! paper's mitigation is to respawn with a **different padding layout**
//! (one of several pre-built binaries, or re-randomised spawn).
//!
//! This module simulates both worlds. With a *fixed* layout the attacker
//! learns one span width per crash or success (binary-search-free linear
//! probing is enough: guess width 1, 2, … — a crash means "too small",
//! moving on means learned), so the expected number of crashes is linear
//! in the number of spans. With *re-randomised* respawn, knowledge never
//! accumulates: each attempt is an independent `1/7ⁿ` shot.

use califorms_layout::{CType, Field, InsertionPolicy, StructDef};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The victim service: a struct with `spans` fenced boundaries and the
/// respawn policy under test.
#[derive(Debug, Clone, Copy)]
pub struct BropScenario {
    /// Number of security spans the attacker must traverse in order.
    pub spans: usize,
    /// Maximum random span width (the paper's 7).
    pub max_width: u8,
    /// Whether a crash respawns with a fresh random layout.
    pub rerandomize_on_crash: bool,
}

/// Result of a BROP campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BropResult {
    /// Whether the attacker eventually reached the target.
    pub succeeded: bool,
    /// Crashes (= detected probes) consumed.
    pub crashes: u64,
    /// Total probes sent.
    pub probes: u64,
}

fn victim_def(spans: usize) -> StructDef {
    // `spans + 1` byte-aligned buffers: a span lands between each pair.
    let fields = (0..=spans)
        .map(|i| Field::new(format!("b{i}"), CType::char_array(8)))
        .collect();
    StructDef::new("brop_victim", fields)
}

/// Draws the victim's span widths for one (re)spawn. Byte-aligned fields
/// keep the widths exactly uniform in `1..=max_width`.
fn spawn_widths(scenario: &BropScenario, rng: &mut SmallRng) -> Vec<u64> {
    let def = victim_def(scenario.spans);
    let layout = InsertionPolicy::Full {
        min: 1,
        max: scenario.max_width,
    }
    .apply(&def, rng);
    // Interior spans only (between consecutive buffers).
    (0..scenario.spans)
        .map(|i| {
            let end_of_b = layout.field_offset(&format!("b{i}")).unwrap() + 8;
            let next = layout.field_offset(&format!("b{}", i + 1)).unwrap();
            (next - end_of_b) as u64
        })
        .collect()
}

/// Runs a BROP campaign: the attacker probes span widths in order,
/// remembering what it learned, until it traverses all spans or exhausts
/// `max_crashes`.
pub fn run_brop(scenario: BropScenario, max_crashes: u64, seed: u64) -> BropResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut widths = spawn_widths(&scenario, &mut rng);
    // Attacker state: per-span minimum width not yet excluded.
    let mut known_min = vec![1u64; scenario.spans];
    let mut crashes = 0u64;
    let mut probes = 0u64;

    loop {
        // One attempt: walk the spans with current knowledge, probing the
        // smallest not-yet-excluded width for each.
        let mut advanced = true;
        for i in 0..scenario.spans {
            probes += 1;
            let guess = known_min[i];
            if guess == widths[i] {
                continue; // correct: lands on the next field, keep walking
            }
            // Wrong guess: landing inside the span (guess < width) or past
            // the field start (guess > width) — inside-span probes crash.
            crashes += 1;
            if crashes >= max_crashes {
                return BropResult {
                    succeeded: false,
                    crashes,
                    probes,
                };
            }
            if scenario.rerandomize_on_crash {
                // Fresh layout: everything learned is worthless.
                widths = spawn_widths(&scenario, &mut rng);
                known_min = vec![1; scenario.spans];
            } else {
                // Fixed layout: "width > guess" is now known.
                known_min[i] = guess + 1;
            }
            advanced = false;
            break;
        }
        if advanced {
            return BropResult {
                succeeded: true,
                crashes,
                probes,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_layout_falls_to_linear_probing() {
        // With a static layout, each crash permanently narrows one span:
        // expected crashes ≈ spans × (E[width] − 1) = 3 × 3 = 9.
        let scenario = BropScenario {
            spans: 3,
            max_width: 7,
            rerandomize_on_crash: false,
        };
        let mut total_crashes = 0u64;
        let trials = 200u64;
        for t in 0..trials {
            let r = run_brop(scenario, 10_000, t);
            assert!(r.succeeded, "static layouts are BROP-able");
            total_crashes += r.crashes;
        }
        let avg = total_crashes as f64 / trials as f64;
        assert!(
            (5.0..14.0).contains(&avg),
            "expected ~9 crashes for 3 spans, got {avg:.1}"
        );
    }

    #[test]
    fn rerandomized_respawn_resists() {
        // With re-randomisation each attempt is an independent (1/7)³
        // shot: success within a small crash budget is rare.
        let scenario = BropScenario {
            spans: 3,
            max_width: 7,
            rerandomize_on_crash: true,
        };
        let budget = 20; // the same budget that trivially breaks the fixed layout
        let trials = 300u32;
        let successes = (0..trials)
            .filter(|&t| run_brop(scenario, budget, u64::from(t) ^ 0xB0B).succeeded)
            .count();
        let rate = successes as f64 / f64::from(trials);
        // P(success in ≤20 attempts) ≈ 1 − (1 − 1/343)^20 ≈ 5.7 %.
        assert!(
            rate < 0.15,
            "re-randomisation must keep success rare, got {rate:.3}"
        );
    }

    #[test]
    fn rerandomization_needs_exponentially_more_crashes() {
        let fixed = BropScenario {
            spans: 2,
            max_width: 7,
            rerandomize_on_crash: false,
        };
        let rerand = BropScenario {
            rerandomize_on_crash: true,
            ..fixed
        };
        let trials = 100u64;
        let avg = |s: BropScenario, salt: u64| {
            (0..trials)
                .map(|t| run_brop(s, 1_000_000, t ^ salt).crashes)
                .sum::<u64>() as f64
                / trials as f64
        };
        let fixed_avg = avg(fixed, 0);
        let rerand_avg = avg(rerand, 1);
        assert!(
            rerand_avg > 3.0 * fixed_avg,
            "re-randomisation: {rerand_avg:.1} crashes vs fixed {fixed_avg:.1}"
        );
    }
}
