//! Executable attack scenarios (Sections 7.2–7.3) run against the
//! simulated Califorms machine.
//!
//! Every scenario builds a victim heap through the real allocator (so the
//! `CFORM` discipline, quarantine and zeroing are all in effect) and then
//! performs the attacker's accesses through the simulated hierarchy, where
//! the L1 Califorms checker does the detecting.

use califorms_alloc::{AllocatorConfig, CaliformsHeap};
use califorms_layout::{CaliformedLayout, InsertionPolicy, StructDef};
use califorms_sim::lsq::{ForwardResult, LoadStoreQueue};
use califorms_sim::multicore::{MulticoreConfig, MulticoreEngine};
use califorms_sim::{Engine, TraceOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How an attack ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// A Califorms exception fired.
    Detected {
        /// Faulting address.
        fault_addr: u64,
        /// Attacker accesses performed before detection (inclusive).
        after_accesses: u64,
    },
    /// The attack completed without touching a security byte.
    Undetected {
        /// Attacker accesses performed.
        accesses: u64,
    },
}

impl AttackOutcome {
    /// Whether the defence caught the attack.
    pub fn detected(&self) -> bool {
        matches!(self, AttackOutcome::Detected { .. })
    }
}

/// A named attack result.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Scenario name.
    pub name: &'static str,
    /// Outcome.
    pub outcome: AttackOutcome,
}

fn victim_heap() -> (Engine, CaliformsHeap) {
    (
        Engine::westmere(),
        CaliformsHeap::new(0x1000_0000, AllocatorConfig::default()),
    )
}

fn apply_ops(engine: &mut Engine, ops: &mut Vec<TraceOp>) {
    for op in ops.drain(..) {
        engine.step(op);
    }
}

fn layout(policy: InsertionPolicy, seed: u64) -> CaliformedLayout {
    let mut rng = SmallRng::seed_from_u64(seed);
    policy.apply(&StructDef::paper_example(), &mut rng)
}

/// Intra-object linear overflow: the attacker writes past the end of
/// `buf`, aiming at the function pointer `fp` behind it (the motivating
/// attack for byte-granular blacklisting).
pub fn intra_object_overflow(policy: InsertionPolicy, seed: u64) -> AttackReport {
    let (mut engine, mut heap) = victim_heap();
    let mut ops = Vec::new();
    let l = layout(policy, seed);
    let base = heap.malloc(&l, &mut ops);
    apply_ops(&mut engine, &mut ops);

    let buf = l.field_offset("buf").expect("paper example has buf") as u64;
    let fp = l.field_offset("fp").expect("paper example has fp") as u64;
    // Linear overflow: byte stores from buf start, past its 64 B, up to
    // and including the first byte of fp.
    let mut accesses = 0u64;
    for off in buf..=fp {
        accesses += 1;
        let before = engine.delivered_exceptions().len();
        engine.step(TraceOp::Store {
            addr: base + off,
            size: 1,
        });
        if engine.delivered_exceptions().len() > before {
            return AttackReport {
                name: "intra-object overflow",
                outcome: AttackOutcome::Detected {
                    fault_addr: engine.delivered_exceptions()[before].fault_addr,
                    after_accesses: accesses,
                },
            };
        }
    }
    AttackReport {
        name: "intra-object overflow",
        outcome: AttackOutcome::Undetected { accesses },
    }
}

/// Intra-object overread: same trajectory with loads (the case canaries
/// cannot catch — they only detect overwrites, Section 9).
pub fn intra_object_overread(policy: InsertionPolicy, seed: u64) -> AttackReport {
    let (mut engine, mut heap) = victim_heap();
    let mut ops = Vec::new();
    let l = layout(policy, seed);
    let base = heap.malloc(&l, &mut ops);
    apply_ops(&mut engine, &mut ops);

    let buf = l.field_offset("buf").unwrap() as u64;
    let fp = l.field_offset("fp").unwrap() as u64;
    let mut accesses = 0u64;
    for off in buf..=fp {
        accesses += 1;
        let before = engine.delivered_exceptions().len();
        engine.step(TraceOp::Load {
            addr: base + off,
            size: 1,
        });
        if engine.delivered_exceptions().len() > before {
            return AttackReport {
                name: "intra-object overread",
                outcome: AttackOutcome::Detected {
                    fault_addr: engine.delivered_exceptions()[before].fault_addr,
                    after_accesses: accesses,
                },
            };
        }
    }
    AttackReport {
        name: "intra-object overread",
        outcome: AttackOutcome::Undetected { accesses },
    }
}

/// Cross-core probe — the multi-core extension of the Section 7.2
/// heterogeneous-observer hazard: the victim (core 0) allocates a
/// califormed object and initialises it, leaving its lines **Modified in
/// the victim's L1**; the attacker (core 1) then sweeps the object from
/// another core. Every probed line is recalled through a cache-to-cache
/// transfer — a real bitvector→sentinel spill in the victim's L1 and a
/// sentinel→bitvector fill in the attacker's — and the attacker's L1
/// checker must trap at exactly the byte a same-core sweep would trap at.
pub fn cross_core_probe(policy: InsertionPolicy, seed: u64) -> AttackReport {
    let l = layout(policy, seed);

    // Victim shard: the instrumented allocator's CFORMs plus one store
    // per field, so the object's lines end up dirty and owned (M).
    let mut heap = CaliformsHeap::new(0x1000_0000, AllocatorConfig::default());
    let mut victim_ops = Vec::new();
    let base = heap.malloc(&l, &mut victim_ops);
    for f in &l.fields {
        victim_ops.push(TraceOp::Store {
            addr: base + f.offset as u64,
            size: f.size.min(8) as u8,
        });
    }

    // Attacker shard: sit out the victim's setup (the engine's quantum
    // barrier makes prior-quantum state visible), then sweep byte by byte
    // from `buf` towards the function pointer behind it.
    let buf = l.field_offset("buf").expect("paper example has buf") as u64;
    let fp = l.field_offset("fp").expect("paper example has fp") as u64;
    let mut attacker_ops = vec![TraceOp::Exec(1_000_000)];
    for off in buf..=fp {
        attacker_ops.push(TraceOp::Load {
            addr: base + off,
            size: 1,
        });
    }

    let engine = MulticoreEngine::new(MulticoreConfig::westmere(2));
    let out = engine.run(vec![victim_ops, attacker_ops]);
    let name = "cross-core probe";
    match out.exceptions[1].first() {
        Some(exc) => AttackReport {
            name,
            outcome: AttackOutcome::Detected {
                fault_addr: exc.fault_addr,
                after_accesses: exc.fault_addr - (base + buf) + 1,
            },
        },
        None => AttackReport {
            name,
            outcome: AttackOutcome::Undetected {
                accesses: fp - buf + 1,
            },
        },
    }
}

/// Use-after-free: read a freed object through a stale pointer. The
/// clean-before-use + quarantine heap keeps the region califormed, so the
/// very first dereference faults.
pub fn use_after_free(policy: InsertionPolicy, seed: u64) -> AttackReport {
    let (mut engine, mut heap) = victim_heap();
    let mut ops = Vec::new();
    let l = layout(policy, seed);
    let base = heap.malloc(&l, &mut ops);
    heap.free(base, &mut ops);
    apply_ops(&mut engine, &mut ops);

    let before = engine.delivered_exceptions().len();
    engine.step(TraceOp::Load {
        addr: base,
        size: 8,
    });
    if engine.delivered_exceptions().len() > before {
        AttackReport {
            name: "use-after-free",
            outcome: AttackOutcome::Detected {
                fault_addr: engine.delivered_exceptions()[before].fault_addr,
                after_accesses: 1,
            },
        }
    } else {
        AttackReport {
            name: "use-after-free",
            outcome: AttackOutcome::Undetected { accesses: 1 },
        }
    }
}

/// Memory-scan derandomisation (Section 7.3): the attacker sweeps object
/// by object looking for a target, touching every byte. Returns how many
/// **objects** were fully scanned before the first detection, for
/// comparison against the `(1 − P/N)^O` model.
pub fn heap_scan(policy: InsertionPolicy, objects: usize, seed: u64) -> AttackReport {
    let (mut engine, mut heap) = victim_heap();
    let mut ops = Vec::new();
    let l = layout(policy, seed);
    let bases: Vec<u64> = (0..objects).map(|_| heap.malloc(&l, &mut ops)).collect();
    apply_ops(&mut engine, &mut ops);

    let mut accesses = 0u64;
    for &base in &bases {
        for off in 0..l.size as u64 {
            accesses += 1;
            let before = engine.delivered_exceptions().len();
            engine.step(TraceOp::Load {
                addr: base + off,
                size: 1,
            });
            if engine.delivered_exceptions().len() > before {
                return AttackReport {
                    name: "heap scan",
                    outcome: AttackOutcome::Detected {
                        fault_addr: engine.delivered_exceptions()[before].fault_addr,
                        after_accesses: accesses,
                    },
                };
            }
        }
    }
    AttackReport {
        name: "heap scan",
        outcome: AttackOutcome::Undetected { accesses },
    }
}

/// Span-width guessing (the `1/7ⁿ` analysis): the attacker knows the field
/// order (source access) but not this build's random span widths, and
/// tries to land exactly on the first byte of the field after `buf` by
/// jumping a guessed width. Returns `(successes, detections, trials)`.
pub fn jump_over_trials(max_width: u8, trials: u32, seed: u64) -> (u32, u32, u32) {
    use califorms_layout::{CType, Field};
    // A byte-aligned boundary, so the inserted span is exactly the drawn
    // 1–max width (an 8-byte-aligned next field would fold alignment fill
    // into the span and skew the distribution the paper analyses).
    let def = StructDef::new(
        "victim",
        vec![
            Field::new("buf", CType::char_array(16)),
            Field::new("tgt", CType::char_array(8)),
        ],
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut successes = 0u32;
    let mut detections = 0u32;
    for t in 0..trials {
        // Fresh victim build with its own compile-time randomness.
        let mut build_rng = SmallRng::seed_from_u64(seed ^ u64::from(t).wrapping_mul(0x9E37));
        let l = InsertionPolicy::Full {
            min: 1,
            max: max_width,
        }
        .apply(&def, &mut build_rng);
        let (mut engine, mut heap) = victim_heap();
        let mut ops = Vec::new();
        let base = heap.malloc(&l, &mut ops);
        apply_ops(&mut engine, &mut ops);

        let buf_end = l.field_offset("buf").unwrap() as u64 + 16;
        let tgt = l.field_offset("tgt").unwrap() as u64;
        let guess = u64::from(rng.gen_range(1..=max_width));
        let target = base + buf_end + guess; // hoped to be tgt's first byte
        let before = engine.delivered_exceptions().len();
        engine.step(TraceOp::Store {
            addr: target,
            size: 1,
        });
        if engine.delivered_exceptions().len() > before {
            detections += 1;
        } else if target == base + tgt {
            successes += 1;
        }
    }
    (successes, detections, trials)
}

/// Speculative-probe resistance (Section 7.2): a speculative load of a
/// security byte must observe **zero**, not stale secret data, both from
/// the cache and from the LSQ (`CFORM` never store-forwards).
pub fn speculative_probe(seed: u64) -> AttackReport {
    let (mut engine, mut heap) = victim_heap();
    let mut ops = Vec::new();
    let l = layout(InsertionPolicy::full_1_to(7), seed);
    let base = heap.malloc(&l, &mut ops);
    apply_ops(&mut engine, &mut ops);
    // Victim writes a secret into its first field, then frees the object —
    // freeing califorms *and zeroes* the memory.
    engine.step(TraceOp::Store {
        addr: base,
        size: 1,
    });
    heap.free(base, &mut ops);
    apply_ops(&mut engine, &mut ops);

    // Attacker speculatively loads the freed secret's address. The
    // architectural value must be zero (no stale data), and the exception
    // is deferred — exactly what breaks the Spectre-style gadget.
    let r = engine.hierarchy.load(base, 1, u64::MAX);
    let leaked = r.data[0] != 0;

    // LSQ leg: a load younger than an in-flight CFORM gets zeros too.
    let mut lsq = LoadStoreQueue::new();
    lsq.push_store(base, vec![0x5E]); // older secret store in flight
    lsq.push_cform(base & !63, 1 << (base & 63)); // CFORM covering it
    let lsq_leaked = match lsq.resolve_load(base, 1) {
        ForwardResult::CformMatch { data } => data[0] != 0,
        other => panic!("expected CformMatch, got {other:?}"),
    };

    AttackReport {
        name: "speculative probe",
        outcome: if leaked || lsq_leaked {
            AttackOutcome::Undetected { accesses: 1 } // leak = defence failed
        } else {
            AttackOutcome::Detected {
                fault_addr: base,
                after_accesses: 1,
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_detected_under_full_and_intelligent() {
        for policy in [
            InsertionPolicy::full_1_to(7),
            InsertionPolicy::intelligent_1_to(7),
        ] {
            let r = intra_object_overflow(policy, 1);
            assert!(r.outcome.detected(), "{policy:?} must fence buf");
        }
    }

    #[test]
    fn overflow_missed_without_protection() {
        let r = intra_object_overflow(InsertionPolicy::None, 1);
        assert!(!r.outcome.detected());
        // buf→fp has no natural padding in the paper example, so the
        // opportunistic policy cannot catch this either (the paper's
        // "restricting the remaining attack surface" caveat).
        let r = intra_object_overflow(InsertionPolicy::Opportunistic, 1);
        assert!(!r.outcome.detected());
    }

    #[test]
    fn overread_detected_like_overwrite() {
        let r = intra_object_overread(InsertionPolicy::intelligent_1_to(7), 2);
        assert!(r.outcome.detected(), "tripwires catch overreads too");
    }

    #[test]
    fn detection_happens_at_first_span_byte() {
        let r = intra_object_overflow(InsertionPolicy::full_1_to(3), 3);
        match r.outcome {
            AttackOutcome::Detected { after_accesses, .. } => {
                // buf is 64 bytes; the 65th access is the first span byte.
                assert_eq!(after_accesses, 65);
            }
            _ => panic!("must detect"),
        }
    }

    #[test]
    fn cross_core_probe_traps_identically_to_same_core_probe() {
        for policy in [
            InsertionPolicy::full_1_to(7),
            InsertionPolicy::intelligent_1_to(7),
        ] {
            let same_core = intra_object_overread(policy, 11);
            let cross_core = cross_core_probe(policy, 11);
            assert!(cross_core.outcome.detected(), "{policy:?} must trap");
            assert_eq!(
                cross_core.outcome, same_core.outcome,
                "{policy:?}: the remote observer must fault at the same byte"
            );
        }
    }

    #[test]
    fn cross_core_probe_missed_without_protection() {
        let r = cross_core_probe(InsertionPolicy::None, 11);
        assert!(!r.outcome.detected());
    }

    #[test]
    fn uaf_detected_even_with_no_insertion_policy() {
        // Temporal safety comes from the allocator, not the spans.
        let r = use_after_free(InsertionPolicy::None, 4);
        assert!(r.outcome.detected());
    }

    #[test]
    fn heap_scan_is_caught_quickly_with_padding() {
        let r = heap_scan(InsertionPolicy::full_1_to(7), 50, 5);
        match r.outcome {
            AttackOutcome::Detected { after_accesses, .. } => {
                // The first object already contains spans; a linear scan
                // cannot cross it.
                assert!(after_accesses <= 200, "caught within ~1 object");
            }
            _ => panic!("scan must be detected"),
        }
    }

    #[test]
    fn heap_scan_survives_with_no_security_bytes() {
        let r = heap_scan(InsertionPolicy::None, 10, 6);
        assert!(!r.outcome.detected());
    }

    #[test]
    fn jump_over_success_rate_is_about_one_in_seven() {
        let (successes, detections, trials) = jump_over_trials(7, 3_000, 8);
        let rate = f64::from(successes) / f64::from(trials);
        assert!(
            (rate - 1.0 / 7.0).abs() < 0.03,
            "success rate {rate:.3} vs 1/7 ≈ 0.143"
        );
        // Guessing short lands inside the span: detected ~ 3/7 of trials.
        let det = f64::from(detections) / f64::from(trials);
        assert!(
            (det - 3.0 / 7.0).abs() < 0.04,
            "detection rate {det:.3} vs 3/7 ≈ 0.429"
        );
    }

    #[test]
    fn speculation_never_leaks() {
        let r = speculative_probe(9);
        assert!(r.outcome.detected(), "zero-return must hold on both paths");
    }
}
