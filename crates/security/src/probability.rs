//! The closed-form derandomisation analysis of Section 7.3.

/// Probability that scanning a process' memory touches **no** security
/// byte: `(1 − P/N)^O`, where `P/N` is the blacklisted fraction of each
/// object and `O` the number of objects scanned.
///
/// The paper's calibration point: with 10 % padding and `O = 250`, the
/// survival probability is ~10⁻¹² (and the attack success effectively 0 by
/// `O ≈ 250`; the paper quotes 10⁻²⁰ at a larger scan).
///
/// # Panics
///
/// Panics unless `blacklisted_fraction ∈ [0, 1]`.
pub fn scan_survival_probability(blacklisted_fraction: f64, objects: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&blacklisted_fraction),
        "fraction out of range"
    );
    (1.0 - blacklisted_fraction).powi(objects as i32)
}

/// Probability of guessing `n` independent security-span widths, each
/// uniform over `1..=max_width`: `(1/max_width)ⁿ` — the paper's `1/7ⁿ`
/// for its 1–7 B spans (the attacker's best case, `O = 1`).
///
/// # Panics
///
/// Panics if `max_width == 0`.
pub fn guess_success_probability(spans: u32, max_width: u32) -> f64 {
    assert!(max_width >= 1, "spans have at least width 1");
    (1.0 / f64::from(max_width)).powi(spans as i32)
}

/// Expected number of scanned objects before the first detection, under
/// per-object detection probability `p = P/N` (geometric distribution).
pub fn expected_objects_until_detection(blacklisted_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&blacklisted_fraction),
        "fraction out of range"
    );
    if blacklisted_fraction == 0.0 {
        f64::INFINITY
    } else {
        1.0 / blacklisted_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_point() {
        // 10 % padding, O = 250 → survival below 1e-11 (the paper's "attack
        // success goes to ~0" regime).
        let p = scan_survival_probability(0.10, 250);
        assert!(p < 1e-11, "survival {p:e}");
        // And far below 1e-20 well before O = 500.
        assert!(scan_survival_probability(0.10, 500) < 1e-20);
    }

    #[test]
    fn survival_decreases_monotonically_in_objects() {
        let mut last = 1.0;
        for o in [1u32, 10, 50, 100, 250] {
            let p = scan_survival_probability(0.10, o);
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn survival_edge_cases() {
        assert_eq!(scan_survival_probability(0.0, 1000), 1.0);
        assert_eq!(scan_survival_probability(1.0, 1), 0.0);
        assert_eq!(scan_survival_probability(0.5, 0), 1.0);
    }

    #[test]
    fn guessing_compounds_per_span() {
        // The paper's 1/7ⁿ.
        assert!((guess_success_probability(1, 7) - 1.0 / 7.0).abs() < 1e-12);
        assert!((guess_success_probability(3, 7) - (1.0f64 / 7.0).powi(3)).abs() < 1e-15);
        assert_eq!(guess_success_probability(0, 7), 1.0);
    }

    #[test]
    fn expected_detection_point_matches_geometric() {
        assert_eq!(expected_objects_until_detection(0.10), 10.0);
        assert_eq!(expected_objects_until_detection(0.0), f64::INFINITY);
    }

    #[test]
    fn monte_carlo_confirms_survival_formula() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let (frac, objects, trials) = (0.10, 20u32, 200_000u32);
        let mut survived = 0u32;
        for _ in 0..trials {
            if (0..objects).all(|_| rng.gen_range(0.0..1.0) >= frac) {
                survived += 1;
            }
        }
        let empirical = f64::from(survived) / f64::from(trials);
        let analytic = scan_survival_probability(frac, objects);
        assert!(
            (empirical - analytic).abs() < 0.005,
            "empirical {empirical:.4} vs analytic {analytic:.4}"
        );
    }
}
