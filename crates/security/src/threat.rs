//! The threat model of Section 7.1, as a typed description the attack
//! scenarios are parameterised by.

/// Attacker capabilities and assumptions (Section 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreatModel {
    /// The victim has at least one vulnerability giving the attacker
    /// arbitrary read capability in its address space.
    pub arbitrary_read: bool,
    /// …and arbitrary write capability.
    pub arbitrary_write: bool,
    /// The attacker has the program's **source** (can derive
    /// non-califormed layouts) …
    pub knows_source: bool,
    /// … but not the **host binary** (cannot read the concrete randomised
    /// span sizes of this build — server-side deployment).
    pub knows_binary: bool,
    /// Hardware is trusted (no glitching/physical attacks).
    pub hardware_trusted: bool,
    /// Side channels are in scope (the design must not leak security-byte
    /// locations through timing or speculation).
    pub side_channels_in_scope: bool,
}

impl ThreatModel {
    /// The paper's model: arbitrary R/W, source but no binary, trusted
    /// hardware, side channels considered.
    pub const fn paper() -> Self {
        Self {
            arbitrary_read: true,
            arbitrary_write: true,
            knows_source: true,
            knows_binary: false,
            hardware_trusted: true,
            side_channels_in_scope: true,
        }
    }

    /// Whether the derandomisation analysis applies (it assumes the span
    /// layout is *not* directly readable by the attacker).
    pub const fn randomisation_is_effective(&self) -> bool {
        !self.knows_binary
    }
}

impl Default for ThreatModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_assumptions() {
        let t = ThreatModel::paper();
        assert!(t.arbitrary_read && t.arbitrary_write);
        assert!(t.knows_source && !t.knows_binary);
        assert!(t.hardware_trusted && t.side_channels_in_scope);
        assert!(t.randomisation_is_effective());
    }

    #[test]
    fn binary_knowledge_defeats_randomisation() {
        let t = ThreatModel {
            knows_binary: true,
            ..ThreatModel::paper()
        };
        assert!(!t.randomisation_is_effective());
    }
}
