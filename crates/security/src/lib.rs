//! # califorms-security
//!
//! The security evaluation of Section 7: executable attack scenarios run
//! against the simulated Califorms machine, and the closed-form
//! derandomisation analysis of Section 7.3 (with Monte-Carlo
//! cross-checks).
//!
//! * [`threat`] — the paper's threat model as a typed description.
//! * [`attacks`] — intra-object overflow/overread, use-after-free against
//!   the quarantining heap, memory-scan (de)randomisation, span-width
//!   guessing, the speculative zero-return probe, and the cross-core
//!   probe (a remote core sweeping lines the victim core owns in M state
//!   must trap identically to a local sweep).
//! * [`probability`] — `(1 − P/N)^O` scan survival and `1/7ⁿ` guessing
//!   probabilities.
//! * [`brop`] — blind-ROP derandomisation campaigns against fixed vs
//!   re-randomised layouts (the Section 7.3 BROP discussion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod brop;
pub mod probability;
pub mod threat;

pub use attacks::{AttackOutcome, AttackReport};
pub use probability::{guess_success_probability, scan_survival_probability};
pub use threat::ThreatModel;
