//! Criterion micro-benchmarks of the Califorms hot paths: the operations
//! the hardware performs on every L1 boundary crossing (spill/fill), on
//! every access (bitvector check), and on every allocation (`CFORM`).
//!
//! These are software-speed sanity checks for the *simulator* (the
//! hardware latencies are the VLSI model's subject); they also document
//! the asymptotic shape: spill cost grows with security-byte count,
//! fill is flat (parallel comparator bank), checks are O(1).

use califorms_core::{fill, spill, CaliformedLine, CformInstruction, L1Line};
use califorms_sim::{Engine, HierarchyConfig, TraceOp};
use califorms_workloads::{generate, spec, WorkloadConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn line_with_n_security_bytes(n: usize) -> L1Line {
    let mut data = [0u8; 64];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(37);
    }
    let mut line = CaliformedLine::from_data(data);
    for i in 0..n {
        line.set_security_byte((i * 64 / n.max(1)).min(63));
    }
    L1Line::new(line)
}

fn bench_spill_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("spill");
    for n in [0usize, 1, 4, 16, 64] {
        let l1 = line_with_n_security_bytes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &l1, |b, l1| {
            b.iter(|| spill(black_box(l1)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fill");
    for n in [0usize, 1, 4, 16, 64] {
        let l2 = spill(&line_with_n_security_bytes(n)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &l2, |b, l2| {
            b.iter(|| fill(black_box(l2)).unwrap())
        });
    }
    group.finish();
}

fn bench_l1_check(c: &mut Criterion) {
    let l1 = line_with_n_security_bytes(8);
    c.bench_function("l1_load_check_8B", |b| {
        b.iter(|| black_box(&l1).load(black_box(16), 8))
    });
}

fn bench_cform(c: &mut Criterion) {
    c.bench_function("cform_execute_full_line", |b| {
        b.iter(|| {
            let mut line = CaliformedLine::zeroed();
            CformInstruction::set(0, black_box(u64::MAX))
                .execute(&mut line)
                .unwrap();
            line
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("engine_10k_mixed_ops", |b| {
        let w = generate(
            &spec::by_name("sjeng").unwrap(),
            &WorkloadConfig::with_policy(
                califorms_layout::InsertionPolicy::intelligent_1_to(7),
                10_000,
                1,
            ),
        );
        b.iter(|| {
            let engine = Engine::new(
                HierarchyConfig::westmere(),
                califorms_sim::CoreConfig::westmere(),
            );
            engine.run(w.ops.iter().copied()).stats.cycles
        })
    });
    c.bench_function("hierarchy_l1_hit_load", |b| {
        let mut engine = Engine::westmere();
        engine.step(TraceOp::Store {
            addr: 0x1000,
            size: 8,
        });
        b.iter(|| engine.hierarchy.load(black_box(0x1000), 8, 0).latency)
    });
}

fn bench_layout(c: &mut Criterion) {
    use califorms_layout::{InsertionPolicy, StructDef, StructLayout};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let def = StructDef::paper_example();
    c.bench_function("layout_natural", |b| {
        b.iter(|| StructLayout::natural(black_box(&def)).size)
    });
    c.bench_function("layout_full_policy", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            InsertionPolicy::full_1_to(7)
                .apply(black_box(&def), &mut rng)
                .size
        })
    });
    c.bench_function("census_1000_structs", |b| {
        use califorms_layout::census::{Corpus, CorpusProfile};
        b.iter(|| {
            Corpus::generate(CorpusProfile::SpecCpu2006, 1_000, black_box(7))
                .fraction_with_padding()
        })
    });
}

fn bench_alloc(c: &mut Criterion) {
    use califorms_alloc::{AllocatorConfig, CaliformsHeap};
    use califorms_layout::{InsertionPolicy, StructDef};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(2);
    let layout = InsertionPolicy::intelligent_1_to(7).apply(&StructDef::paper_example(), &mut rng);
    c.bench_function("heap_malloc_free_pair", |b| {
        let mut heap = CaliformsHeap::new(0x1000_0000, AllocatorConfig::default());
        let mut ops = Vec::with_capacity(64);
        b.iter(|| {
            ops.clear();
            let p = heap.malloc(black_box(&layout), &mut ops);
            heap.free(p, &mut ops);
            ops.len()
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("generate_10k_trace", |b| {
        let profile = spec::by_name("perlbench").unwrap();
        let cfg =
            WorkloadConfig::with_policy(califorms_layout::InsertionPolicy::full_1_to(7), 10_000, 3);
        b.iter(|| generate(black_box(&profile), &cfg).ops.len())
    });
}

fn bench_tracepack(c: &mut Criterion) {
    use califorms_sim::tracepack::TracePack;
    let w = generate(
        &spec::by_name("libquantum").unwrap(),
        &WorkloadConfig::with_policy(
            califorms_layout::InsertionPolicy::intelligent_1_to(7),
            10_000,
            7,
        ),
    );
    let pack = w.to_pack();

    c.bench_function("pack_encode_10k", |b| {
        b.iter(|| TracePack::from_ops(black_box(&w.ops).iter().copied()).len_ops())
    });
    c.bench_function("pack_batch_decode_10k", |b| {
        b.iter(|| {
            let mut dec = black_box(&pack).decoder();
            let mut ring = [TraceOp::Exec(0); Engine::REPLAY_BATCH];
            let mut n = 0usize;
            loop {
                let k = dec.next_batch(&mut ring).unwrap();
                if k == 0 {
                    break;
                }
                n += k;
            }
            n
        })
    });
    c.bench_function("replay_packed_10k", |b| {
        b.iter(|| Engine::westmere().run_pack(black_box(&pack)).stats.cycles)
    });
    c.bench_function("replay_iter_10k", |b| {
        b.iter(|| {
            Engine::westmere()
                .run(black_box(&w.ops).iter().copied())
                .stats
                .cycles
        })
    });
    c.bench_function("replay_legacy_10k", |b| {
        b.iter(|| {
            califorms_bench::legacy_replay::run_legacy(Box::new(black_box(&w.ops).iter().copied()))
                .0
                .cycles
        })
    });
}

criterion_group!(
    benches,
    bench_spill_fill,
    bench_l1_check,
    bench_cform,
    bench_hierarchy,
    bench_layout,
    bench_alloc,
    bench_workload_generation,
    bench_tracepack
);
criterion_main!(benches);
