//! Experiment drivers, one per paper table/figure.

use califorms_layout::census::{Corpus, CorpusProfile};
use califorms_layout::InsertionPolicy;
use califorms_sim::HierarchyConfig;
use califorms_workloads::spec::BenchmarkProfile;
use califorms_workloads::{
    fig10_benchmarks, generate, run_workload, software_eval_benchmarks, WorkloadConfig,
};
use serde::Serialize;

/// Steady-state memory operations per simulation run. The bench binaries
/// use the full budget; tests shrink it for speed.
pub const DEFAULT_STEADY_OPS: usize = 400_000;

/// Seed for all experiments (the paper runs three binaries per config; we
/// run three seeds and report the mean).
pub const SEEDS: [u64; 3] = [101, 202, 303];

/// One measured slowdown with its paper reference, as a fraction
/// (0.03 = 3 %).
#[derive(Debug, Clone, Serialize)]
pub struct SlowdownRow {
    /// Row label (benchmark name, padding size, …).
    pub label: String,
    /// The paper's value, when published per-row (fraction), if known.
    pub paper: Option<f64>,
    /// Our measured value (fraction).
    pub measured: f64,
}

/// Mean of measured slowdowns.
pub fn mean(rows: &[SlowdownRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.measured).sum::<f64>() / rows.len() as f64
}

fn mean_slowdown_over_seeds(
    profile: &BenchmarkProfile,
    variant: WorkloadConfig,
    baseline_of: impl Fn(u64) -> WorkloadConfig,
    hier_variant: HierarchyConfig,
    hier_base: HierarchyConfig,
    steady_ops: usize,
) -> f64 {
    let mut total = 0.0;
    for &seed in &SEEDS {
        let base_cfg = baseline_of(seed);
        let base = generate(
            profile,
            &WorkloadConfig {
                steady_ops,
                seed,
                ..base_cfg
            },
        );
        let with = generate(
            profile,
            &WorkloadConfig {
                steady_ops,
                seed,
                ..variant
            },
        );
        let sb = run_workload(&base, hier_base);
        let sv = run_workload(&with, hier_variant);
        total += sv.slowdown_vs(&sb);
    }
    total / SEEDS.len() as f64
}

// ---------------------------------------------------------------------
// Figure 3 — struct density histograms
// ---------------------------------------------------------------------

/// Figure 3 result: density histogram plus the headline fraction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Corpus label ("SPEC CPU2006" / "V8").
    pub corpus: String,
    /// Ten-bin histogram of struct densities, fractions summing to 1.
    pub histogram: Vec<f64>,
    /// Fraction of structs with ≥1 padding byte (paper: 0.457 / 0.410).
    pub fraction_with_padding: f64,
    /// The paper's value.
    pub paper_fraction: f64,
}

/// Runs the Figure 3 census on both corpora.
pub fn fig3(structs_per_corpus: usize) -> Vec<Fig3Result> {
    let spec = Corpus::generate(CorpusProfile::SpecCpu2006, structs_per_corpus, 0xF163);
    let v8 = Corpus::generate(CorpusProfile::V8, structs_per_corpus, 0xF163);
    vec![
        Fig3Result {
            corpus: "SPEC CPU2006 C/C++".into(),
            histogram: spec.density_histogram(10),
            fraction_with_padding: spec.fraction_with_padding(),
            paper_fraction: 0.457,
        },
        Fig3Result {
            corpus: "V8 JavaScript engine".into(),
            histogram: v8.density_histogram(10),
            fraction_with_padding: v8.fraction_with_padding(),
            paper_fraction: 0.410,
        },
    ]
}

// ---------------------------------------------------------------------
// Figure 4 — fixed-padding sweep
// ---------------------------------------------------------------------

/// Figure 4: average slowdown with 1–7 B of fixed padding inserted after
/// every field, no `CFORM`s (the pure cache-underutilisation lower bound).
/// Paper: 3.0 % at 1 B rising to 7.6 % at 7 B.
pub fn fig4(steady_ops: usize) -> Vec<SlowdownRow> {
    let paper = [0.030, 0.054, 0.056, 0.058, 0.062, 0.070, 0.076];
    (1u8..=7)
        .map(|pad| {
            let mut total = 0.0;
            let benches = software_eval_benchmarks();
            for b in &benches {
                total += mean_slowdown_over_seeds(
                    b,
                    WorkloadConfig::without_cforms(InsertionPolicy::FixedPad(pad), steady_ops, 0),
                    |seed| WorkloadConfig::baseline(steady_ops, seed),
                    HierarchyConfig::westmere(),
                    HierarchyConfig::westmere(),
                    steady_ops,
                );
            }
            SlowdownRow {
                label: format!("{pad}B"),
                paper: Some(paper[pad as usize - 1]),
                measured: total / benches.len() as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 10 — +1-cycle L2/L3 latency
// ---------------------------------------------------------------------

/// Figure 10: per-benchmark slowdown when both L2 and L3 take one extra
/// cycle. Paper: 0.24 % (hmmer) to 1.37 % (xalancbmk), average 0.83 %.
pub fn fig10(steady_ops: usize) -> Vec<SlowdownRow> {
    let paper: &[(&str, f64)] = &[
        ("astar", 0.0070),
        ("bzip2", 0.0070),
        ("dealII", 0.0087),
        ("gcc", 0.0100),
        ("gobmk", 0.0056),
        ("h264ref", 0.0060),
        ("hmmer", 0.0024),
        ("lbm", 0.0068),
        ("libquantum", 0.0110),
        ("mcf", 0.0120),
        ("milc", 0.0105),
        ("namd", 0.0031),
        ("omnetpp", 0.0096),
        ("perlbench", 0.0090),
        ("povray", 0.0038),
        ("sjeng", 0.0045),
        ("soplex", 0.0091),
        ("sphinx3", 0.0098),
        ("xalancbmk", 0.0137),
    ];
    fig10_benchmarks()
        .iter()
        .map(|b| {
            let measured = mean_slowdown_over_seeds(
                b,
                WorkloadConfig::baseline(steady_ops, 0),
                |seed| WorkloadConfig::baseline(steady_ops, seed),
                HierarchyConfig::westmere_plus_one_cycle(),
                HierarchyConfig::westmere(),
                steady_ops,
            );
            SlowdownRow {
                label: b.name.to_string(),
                paper: paper.iter().find(|(n, _)| *n == b.name).map(|(_, v)| *v),
                measured,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 11 and 12 — software overheads of the insertion policies
// ---------------------------------------------------------------------

/// One benchmark's slowdowns across the seven Figure 11 series.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Series label → measured slowdown.
    pub series: Vec<(String, f64)>,
}

/// The Figure 11 series: full policy (1–3/1–5/1–7 B) without `CFORM`s,
/// opportunistic with `CFORM`s, and full with `CFORM`s.
pub fn fig11_series() -> Vec<(&'static str, InsertionPolicy, bool)> {
    vec![
        ("1-3B", InsertionPolicy::full_1_to(3), false),
        ("1-5B", InsertionPolicy::full_1_to(5), false),
        ("1-7B", InsertionPolicy::full_1_to(7), false),
        ("Opportunistic CFORM", InsertionPolicy::Opportunistic, true),
        ("1-3B CFORM", InsertionPolicy::full_1_to(3), true),
        ("1-5B CFORM", InsertionPolicy::full_1_to(5), true),
        ("1-7B CFORM", InsertionPolicy::full_1_to(7), true),
    ]
}

/// The Figure 12 series: intelligent policy, ± `CFORM`s.
pub fn fig12_series() -> Vec<(&'static str, InsertionPolicy, bool)> {
    vec![
        ("1-3B", InsertionPolicy::intelligent_1_to(3), false),
        ("1-5B", InsertionPolicy::intelligent_1_to(5), false),
        ("1-7B", InsertionPolicy::intelligent_1_to(7), false),
        ("1-3B CFORM", InsertionPolicy::intelligent_1_to(3), true),
        ("1-5B CFORM", InsertionPolicy::intelligent_1_to(5), true),
        ("1-7B CFORM", InsertionPolicy::intelligent_1_to(7), true),
    ]
}

/// Runs a policy-series figure (11 or 12) over the 16 software-eval
/// benchmarks.
pub fn policy_figure(
    series: &[(&'static str, InsertionPolicy, bool)],
    steady_ops: usize,
) -> Vec<PolicyRow> {
    software_eval_benchmarks()
        .iter()
        .map(|b| {
            let series_results = series
                .iter()
                .map(|&(label, policy, cforms)| {
                    let variant = if cforms {
                        WorkloadConfig::with_policy(policy, steady_ops, 0)
                    } else {
                        WorkloadConfig::without_cforms(policy, steady_ops, 0)
                    };
                    let measured = mean_slowdown_over_seeds(
                        b,
                        variant,
                        |seed| WorkloadConfig::baseline(steady_ops, seed),
                        HierarchyConfig::westmere(),
                        HierarchyConfig::westmere(),
                        steady_ops,
                    );
                    (label.to_string(), measured)
                })
                .collect();
            PolicyRow {
                benchmark: b.name.to_string(),
                series: series_results,
            }
        })
        .collect()
}

/// Average of one series across a policy figure's rows.
pub fn series_average(rows: &[PolicyRow], label: &str) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.series.iter().find(|(l, _)| l == label).map(|(_, v)| *v))
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: usize = 12_000;

    #[test]
    fn fig3_reproduces_headline_fractions() {
        for r in fig3(20_000) {
            assert!(
                (r.fraction_with_padding - r.paper_fraction).abs() < 0.05,
                "{}: {:.3} vs paper {:.3}",
                r.corpus,
                r.fraction_with_padding,
                r.paper_fraction
            );
            let sum: f64 = r.histogram.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig4_slowdown_grows_with_padding() {
        let rows = fig4(QUICK);
        assert_eq!(rows.len(), 7);
        assert!(
            rows[6].measured > rows[0].measured,
            "7B ({:.3}) must cost more than 1B ({:.3})",
            rows[6].measured,
            rows[0].measured
        );
        // All overheads are positive and in a plausible band.
        for r in &rows {
            assert!(r.measured > 0.0, "{}: {:.4}", r.label, r.measured);
            assert!(r.measured < 0.30, "{}: {:.4}", r.label, r.measured);
        }
    }

    #[test]
    fn fig10_average_is_sub_two_percent_with_right_extremes() {
        let rows = fig10(QUICK);
        assert_eq!(rows.len(), 19);
        let avg = mean(&rows);
        assert!(
            (0.0..0.02).contains(&avg),
            "average +1-cycle slowdown {avg:.4} should be well under 2 %"
        );
        let get = |n: &str| rows.iter().find(|r| r.label == n).unwrap().measured;
        assert!(
            get("hmmer") < get("xalancbmk"),
            "compute-bound hmmer must be less sensitive than xalancbmk"
        );
        assert!(get("hmmer") < avg, "hmmer sits at the bottom of Figure 10");
    }
}
