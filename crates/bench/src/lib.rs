//! # califorms-bench
//!
//! The experiment harness: one function per paper table/figure, shared by
//! the `fig*`/`table*` binaries (see `src/bin/`) and the integration
//! tests. Every experiment returns typed rows carrying both the paper's
//! published value and the reproduction's measured value, and can be
//! serialised to JSON for EXPERIMENTS.md bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod legacy_replay;
pub mod report;

pub use experiments::*;
pub use report::*;
