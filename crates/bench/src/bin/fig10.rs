//! Figure 10: per-benchmark slowdown with one extra cycle of L2 **and**
//! L3 latency (the pessimistic hardware cost of Califorms conversions).
//!
//! Paper reference: 0.24 % (hmmer) – 1.37 % (xalancbmk), average 0.83 %.
//! Also prints the simulated machine's Table 3 configuration.

#![forbid(unsafe_code)]

use califorms_bench::{fig10, mean, render_slowdowns, results_dir, write_json, DEFAULT_STEADY_OPS};
use califorms_sim::HierarchyConfig;

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEADY_OPS);

    let cfg = HierarchyConfig::westmere();
    println!("Table 3 — simulated system configuration:");
    println!(
        "  L1D {} KB {}-way {}cy | L2 {} KB {}-way {}cy | L3 {} MB {}-way {}cy | DRAM {}cy",
        cfg.l1d_size / 1024,
        cfg.l1d_ways,
        cfg.l1d_latency,
        cfg.l2_size / 1024,
        cfg.l2_ways,
        cfg.l2_latency,
        cfg.l3_size / (1024 * 1024),
        cfg.l3_ways,
        cfg.l3_latency,
        cfg.dram_latency
    );
    println!();

    let rows = fig10(ops);
    print!(
        "{}",
        render_slowdowns(
            &format!("Figure 10 — +1-cycle L2/L3 latency ({ops} steady-state ops/run)"),
            &rows
        )
    );
    println!(
        "paper AVG: 0.83%  measured AVG: {:.2}%",
        mean(&rows) * 100.0
    );
    write_json(results_dir().join("fig10.json"), &rows).expect("write results");
    println!("JSON written to target/experiment-results/fig10.json");
}
