//! Table 2: VLSI area/delay/power of the baseline L1 vs L1 Califorms
//! (califorms-bitvector) plus the fill/spill modules — the analytic model
//! printed next to the paper's 65 nm synthesis numbers.

#![forbid(unsafe_code)]

use califorms_vlsi::tables::{render_comparison, table2};
use califorms_vlsi::Tech;

fn main() {
    let tech = Tech::tsmc65();
    println!("Table 2 — main synthesis results (paper: 65nm TSMC; model: structural estimate)");
    println!();
    print!("{}", render_comparison(&table2(&tech)));
    println!();
    println!("paper headline: L1 Califorms adds 1.85% delay / 2.12% power; fill fits the");
    println!("L1 access period (1.43ns vs 1.62ns); spill (5.50ns) is off the hit path.");
}
