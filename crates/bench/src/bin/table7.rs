//! Table 7 (Appendix A): the three L1 Califorms variants — 8 B, 4 B and
//! 1 B of metadata per line — modelled and printed next to the paper's
//! synthesis results.

#![forbid(unsafe_code)]

use califorms_vlsi::l1_model::{L1Design, L1Variant};
use califorms_vlsi::tables::{render_comparison, table7};
use califorms_vlsi::Tech;

fn main() {
    let tech = Tech::tsmc65();
    println!("Table 7 — L1 Califorms variants (paper vs model)");
    println!();
    print!("{}", render_comparison(&table7(&tech)));
    println!();
    println!("metadata storage per 64B line:");
    for v in L1Variant::ALL {
        let d = L1Design::model(v, &tech);
        println!(
            "  {:<13} {:>2} bits ({:.2}% of the data array)",
            v.name(),
            v.metadata_bits_per_line(),
            d.metadata_storage_percent()
        );
    }
    println!();
    println!("paper headline: 4B variant costs +49% L1 delay, 1B +22%, 8B +1.85%;");
    println!("califorms-1B dominates califorms-4B in both storage and latency.");
}
