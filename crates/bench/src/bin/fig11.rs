//! Figure 11: slowdown of the opportunistic policy (with `CFORM`s) and
//! the full insertion policy with random 1–3/1–5/1–7 B security bytes
//! (with and without `CFORM`s), over the 16 software-eval benchmarks.
//!
//! Paper reference: full-without-CFORM averages 5.5 %/5.6 %/6.5 %;
//! opportunistic+CFORM 7.9 %; full+CFORM up to 14.0–14.2 %.

#![forbid(unsafe_code)]

use califorms_bench::{
    fig11_series, policy_figure, render_policy_rows, results_dir, series_average, write_json,
    DEFAULT_STEADY_OPS,
};

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEADY_OPS);
    let series = fig11_series();
    let rows = policy_figure(&series, ops);
    print!(
        "{}",
        render_policy_rows(
            &format!("Figure 11 — opportunistic & full policies ({ops} ops/run)"),
            &rows
        )
    );
    println!();
    println!("paper averages: 1-3B 5.5% | 1-5B 5.6% | 1-7B 6.5% | Opportunistic CFORM 7.9% | full CFORM up to 14.0%");
    println!(
        "measured:       1-3B {:.1}% | 1-5B {:.1}% | 1-7B {:.1}% | Opportunistic CFORM {:.1}% | 1-7B CFORM {:.1}%",
        series_average(&rows, "1-3B") * 100.0,
        series_average(&rows, "1-5B") * 100.0,
        series_average(&rows, "1-7B") * 100.0,
        series_average(&rows, "Opportunistic CFORM") * 100.0,
        series_average(&rows, "1-7B CFORM") * 100.0,
    );
    write_json(results_dir().join("fig11.json"), &rows).expect("write results");
    println!("JSON written to target/experiment-results/fig11.json");
}
