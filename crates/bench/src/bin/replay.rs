//! Host replay-throughput study: how fast the simulator itself chews
//! through trace ops, before and after the trace-pack + parallel-runtime
//! overhauls.
//!
//! Single-core rows over the same streaming workload:
//!
//! * `legacy_iter` — the pre-overhaul path, reproduced faithfully: a
//!   boxed iterator chain feeding per-op `Hierarchy::load`/`store` calls
//!   that allocate a `Vec` per load result and a `Vec` per synthesized
//!   store payload;
//! * `engine_iter` — the current `Engine::run` over a materialised
//!   `Vec<TraceOp>` (quiet loads, stack store buffers);
//! * `packed_batched` — `Engine::run_pack`: ops batch-decoded from the
//!   compact binary pack into a fixed ring (decode cost included).
//!
//! Multi-core rows (2/4 cores by default, `--cores` to override) on the
//! persistent-worker-pool `MulticoreEngine`:
//!
//! * `mc_shared_*` — the single stream round-robin-sharded across cores
//!   (heavy artificial sharing: a worst case that stays weave-bound);
//! * `mc_disjoint_*` — one offset copy of the stream per core in a
//!   private 4 GB region (total ops = cores × trace): disjoint working
//!   sets, but stream-dominated, so throughput tracks the (serial,
//!   batched) private-miss transaction path;
//! * `mc_readmostly_*` — the `shared-table-hot` multicore workload
//!   (97 % loads over an L1-resident shared table, califormed spans):
//!   nearly every op completes in the parallel bound phase — the shape
//!   the persistent-worker runtime is built for.
//!
//! `*_iter` rows replay pre-materialised `Vec` shards; `*_packed` rows
//! replay packs through per-core decoder lanes. Every packed run is
//! asserted bit-identical (stats + exceptions) to its unpacked twin
//! before its throughput is reported, and every multicore row carries the
//! bound/weave/barrier wall-clock breakdown plus the deterministic
//! runtime counters.
//!
//! Each multicore shape additionally gets a `*_spec` row replaying the
//! same packs with the speculative weave (DESIGN.md §15) enabled; the
//! row is asserted bit-identical to the serial run after masking the
//! spec-only counters, and reports the epoch/commit/abort/residue
//! accounting so the JSON artifact tracks commit rates per shape.
//!
//! Results go to stdout and `BENCH_replay.json` in the working directory
//! (the perf-trajectory artifact CI uploads per PR). With `--check`, the
//! process exits non-zero unless (a) the best 2-core packed scaling row
//! (disjoint or read-mostly) is at least 1.0x legacy single-core
//! throughput, and (b) the speculative read-mostly rows hold ≥ 1.0x
//! legacy at 2 cores and ≥ 1.5x at 4 cores — speculation must never
//! cost throughput on the shape the runtime targets.
//!
//! With `--telemetry` (implied by `--metrics-out`/`--trace-out`), the
//! highest-core-count shared-stream packed replay is re-run instrumented:
//! its counter/latency summary plus the per-core weave wall-clock and
//! per-shard batched/contended split go to stdout, the counter snapshot +
//! histograms to `--metrics-out PATH`, and the per-core bound/weave/
//! barrier span timeline as Chrome trace-event JSON to `--trace-out PATH`
//! (open in <https://ui.perfetto.dev>). `--telemetry-check` gates that
//! two instrumented runs produce byte-identical counter snapshots and
//! that telemetry costs ≤ 3% on the best-of-3 read-mostly packed row.
//!
//! Usage:
//! `cargo run --release --bin replay [--smoke] [--check] [--cores 2,4]
//!  [--quantum N] [--adaptive] [--telemetry] [--metrics-out PATH]
//!  [--trace-out PATH] [--telemetry-check] [steady_ops]`

#![forbid(unsafe_code)]

use califorms_bench::legacy_replay::run_legacy;
use califorms_bench::{render_telemetry_summary, write_json};
use califorms_sim::multicore::shard_ops;
use califorms_sim::{
    Engine, MulticoreConfig, MulticoreEngine, MulticoreOutcome, TraceOp, TracePack,
};
use califorms_workloads::{
    generate, generate_mt, spec, MtPattern, MtWorkloadConfig, WorkloadConfig,
};
use serde::Serialize;
use std::time::Instant;

/// One measured replay mode.
#[derive(Debug, Clone, Serialize)]
struct ReplayRow {
    mode: String,
    /// Simulated cores.
    cores: u64,
    /// Host worker threads driving the replay (1 for single-core rows;
    /// the pool spawns one per simulated core otherwise).
    threads: u64,
    /// Execution runtime: `single` (one-thread engine), or `pool`
    /// (persistent worker pool + epoch barrier).
    runtime: String,
    ops: u64,
    elapsed_s: f64,
    mops_per_s: f64,
    speedup_vs_legacy: f64,
    bit_identical_to_unpacked: bool,
    /// Bound/weave/barrier wall-clock breakdown (multicore rows only;
    /// zero for single-core rows).
    bound_s: f64,
    weave_s: f64,
    barrier_s: f64,
    /// Deterministic runtime counters (multicore rows only).
    quanta: u64,
    weave_turns: u64,
    weave_transactions: u64,
    batched_transactions: u64,
    contended_transactions: u64,
    /// Speculative-weave epoch accounting (DESIGN.md §15; zero on
    /// serial rows).
    spec_epochs: u64,
    spec_commits: u64,
    spec_aborts: u64,
    spec_residue_transactions: u64,
}

/// The whole report written to `BENCH_replay.json`.
#[derive(Debug, Clone, Serialize)]
struct ReplayReport {
    workload: String,
    policy: String,
    steady_ops: u64,
    trace_ops: u64,
    pack_bytes_per_op: f64,
    /// `size_of::<TraceOp>()`, computed at runtime.
    vec_bytes_per_op: f64,
    quantum: f64,
    adaptive_quantum: bool,
    packed_vs_legacy_speedup: f64,
    rows: Vec<ReplayRow>,
}

/// Last free-standing numeric argument, skipping flags and (by
/// position) the values they consume.
fn positional_number(args: &[String]) -> Option<usize> {
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--cores" || a == "--quantum" || a == "--metrics-out" || a == "--trace-out" {
            i += 2; // skip the flag and its value
            continue;
        }
        if !a.starts_with("--") {
            if let Ok(v) = a.parse::<usize>() {
                out = Some(v);
            }
        }
        i += 1;
    }
    out
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

/// Offsets every address in the trace into core `c`'s private region, so
/// each core replays the same access *shape* over a disjoint working set.
fn offset_ops(ops: &[TraceOp], c: usize) -> Vec<TraceOp> {
    let off = c as u64 * 0x1_0000_0000;
    ops.iter()
        .map(|&op| match op {
            TraceOp::Load { addr, size } => TraceOp::Load {
                addr: addr + off,
                size,
            },
            TraceOp::Store { addr, size } => TraceOp::Store {
                addr: addr + off,
                size,
            },
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            } => TraceOp::Cform {
                line_addr: line_addr + off,
                attrs,
                mask,
            },
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => TraceOp::CformNt {
                line_addr: line_addr + off,
                attrs,
                mask,
            },
            other => other,
        })
        .collect()
}

fn mc_identical(a: &MulticoreOutcome, b: &MulticoreOutcome) -> bool {
    a.stats.combined == b.stats.combined
        && a.stats.per_core == b.stats.per_core
        && a.stats.runtime == b.stats.runtime
        && a.stats.weave == b.stats.weave
        && a.exceptions == b.exceptions
}

/// Bit-identity between a speculative-weave run and its serial twin:
/// everything must match except the spec-only epoch counters, which the
/// serial run doesn't have (DESIGN.md §15).
fn spec_identical(spec: &MulticoreOutcome, serial: &MulticoreOutcome) -> bool {
    spec.stats.combined == serial.stats.combined
        && spec.stats.per_core == serial.stats.per_core
        && spec.stats.runtime.without_spec() == serial.stats.runtime.without_spec()
        && spec.stats.weave == serial.stats.weave
        && spec.exceptions == serial.exceptions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let adaptive = args.iter().any(|a| a == "--adaptive");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let core_counts: Vec<usize> = flag_value("--cores")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--cores takes e.g. 2,4"))
                .collect()
        })
        .unwrap_or_else(|| vec![2, 4]);
    let quantum: f64 = flag_value("--quantum")
        .map(|v| v.parse().expect("--quantum takes a cycle count"))
        .unwrap_or(10_000.0);
    let metrics_out = flag_value("--metrics-out");
    let trace_out = flag_value("--trace-out");
    let telemetry =
        args.iter().any(|a| a == "--telemetry") || metrics_out.is_some() || trace_out.is_some();
    let telemetry_check = args.iter().any(|a| a == "--telemetry-check");
    let steady_ops = positional_number(&args).unwrap_or(if smoke { 100_000 } else { 2_000_000 });

    let mc_config = |cores: usize| {
        let cfg = MulticoreConfig::westmere(cores).with_quantum(quantum);
        if adaptive {
            cfg.with_adaptive_quantum()
        } else {
            cfg
        }
    };

    // The streaming workload: libquantum is the paper's most
    // stream-dominated benchmark, with spans installed so the califormed
    // checks stay on the measured path.
    let profile = spec::by_name("libquantum").expect("profile exists");
    let policy = califorms_layout::InsertionPolicy::intelligent_1_to(7);
    let w = generate(
        &profile,
        &WorkloadConfig::with_policy(policy, steady_ops, 7),
    );
    let ops = &w.ops;
    let pack = w.to_pack();
    let total_ops = ops.len() as u64;
    assert_eq!(pack.len_ops(), total_ops);

    println!(
        "Replay throughput: {} ops ({} steady), pack {:.2} B/op vs {} B/op in Vec<TraceOp>, quantum {}{}",
        total_ops,
        steady_ops,
        pack.bytes_per_op(),
        std::mem::size_of::<TraceOp>(),
        quantum,
        if adaptive { " (adaptive)" } else { "" },
    );
    println!();
    println!(
        "{:<18} | {:>5} | {:>9} | {:>11} | {:>9} | {:>8} | {:>7} | {:>7} | {:>7}",
        "mode",
        "cores",
        "elapsed s",
        "host Mops/s",
        "vs legacy",
        "ident",
        "bound s",
        "weave s",
        "barr s"
    );
    println!("{}", "-".repeat(104));

    let mut rows: Vec<ReplayRow> = Vec::new();
    let mut push = |row: ReplayRow| {
        println!(
            "{:<18} | {:>5} | {:>9.3} | {:>11.2} | {:>8.2}x | {:>8} | {:>7.3} | {:>7.3} | {:>7.3}",
            row.mode,
            row.cores,
            row.elapsed_s,
            row.mops_per_s,
            row.speedup_vs_legacy,
            row.bit_identical_to_unpacked,
            row.bound_s,
            row.weave_s,
            row.barrier_s,
        );
        rows.push(row);
    };
    let single_row =
        |mode: &str, ops_run: u64, elapsed: f64, legacy_mops: f64, identical: bool| ReplayRow {
            mode: mode.to_string(),
            cores: 1,
            threads: 1,
            runtime: "single".to_string(),
            ops: ops_run,
            elapsed_s: elapsed,
            mops_per_s: ops_run as f64 / elapsed / 1e6,
            speedup_vs_legacy: (ops_run as f64 / elapsed / 1e6) / legacy_mops,
            bit_identical_to_unpacked: identical,
            bound_s: 0.0,
            weave_s: 0.0,
            barrier_s: 0.0,
            quanta: 0,
            weave_turns: 0,
            weave_transactions: 0,
            batched_transactions: 0,
            contended_transactions: 0,
            spec_epochs: 0,
            spec_commits: 0,
            spec_aborts: 0,
            spec_residue_transactions: 0,
        };
    let mc_row = |mode: &str,
                  cores: usize,
                  ops_run: u64,
                  elapsed: f64,
                  legacy_mops: f64,
                  identical: bool,
                  out: &MulticoreOutcome| ReplayRow {
        mode: mode.to_string(),
        cores: cores as u64,
        threads: cores as u64,
        runtime: "pool".to_string(),
        ops: ops_run,
        elapsed_s: elapsed,
        mops_per_s: ops_run as f64 / elapsed / 1e6,
        speedup_vs_legacy: (ops_run as f64 / elapsed / 1e6) / legacy_mops,
        bit_identical_to_unpacked: identical,
        bound_s: out.timing.bound_s,
        weave_s: out.timing.weave_s,
        barrier_s: out.timing.barrier_s,
        quanta: out.stats.runtime.quanta,
        weave_turns: out.stats.runtime.weave_turns,
        weave_transactions: out.stats.runtime.weave_transactions,
        batched_transactions: out.stats.runtime.batched_transactions,
        contended_transactions: out.stats.runtime.contended_transactions,
        spec_epochs: out.stats.runtime.spec_epochs,
        spec_commits: out.stats.runtime.spec_commits,
        spec_aborts: out.stats.runtime.spec_aborts,
        spec_residue_transactions: out.stats.runtime.spec_residue_transactions,
    };

    // --- Single core. ---
    let ((legacy_stats, legacy_exc), legacy_elapsed) =
        time(|| run_legacy(Box::new(ops.iter().copied())));
    let legacy_mops = total_ops as f64 / legacy_elapsed / 1e6;
    push(single_row(
        "legacy_iter",
        total_ops,
        legacy_elapsed,
        legacy_mops,
        true,
    ));

    let (iter_out, iter_elapsed) = time(|| Engine::westmere().run(ops.iter().copied()));
    assert_eq!(
        iter_out.stats, legacy_stats,
        "hot-path rework must not change simulation results"
    );
    assert_eq!(iter_out.exceptions, legacy_exc);
    push(single_row(
        "engine_iter",
        total_ops,
        iter_elapsed,
        legacy_mops,
        true,
    ));

    let (packed_out, packed_elapsed) = time(|| Engine::westmere().run_pack(&pack));
    let packed_identical =
        packed_out.stats == iter_out.stats && packed_out.exceptions == iter_out.exceptions;
    assert!(packed_identical, "packed replay must be bit-identical");
    push(single_row(
        "packed_batched",
        total_ops,
        packed_elapsed,
        legacy_mops,
        true,
    ));
    let packed_speedup = (total_ops as f64 / packed_elapsed / 1e6) / legacy_mops;

    // --- Multi core. ---
    let mut disjoint_2core_packed_speedup = f64::NAN;
    let mut readmostly_2core_packed_speedup = f64::NAN;
    let mut readmostly_2core_spec_speedup = f64::NAN;
    let mut readmostly_4core_spec_speedup = f64::NAN;
    for &cores in &core_counts {
        // Shared stream, round-robin sharded: the contended worst case.
        // (Generated workloads carry no mask windows, so round-robin
        // sharding is mask-safe.)
        let shards = shard_ops(ops.iter().copied(), cores);
        let (mc_vec, mc_vec_elapsed) = time(|| MulticoreEngine::new(mc_config(cores)).run(shards));
        push(mc_row(
            "mc_shared_iter",
            cores,
            total_ops,
            mc_vec_elapsed,
            legacy_mops,
            true,
            &mc_vec,
        ));
        let (mc_pack, mc_pack_elapsed) =
            time(|| MulticoreEngine::new(mc_config(cores)).run_pack(&pack));
        let identical = mc_identical(&mc_pack, &mc_vec);
        assert!(identical, "packed multicore replay must be bit-identical");
        push(mc_row(
            "mc_shared_packed",
            cores,
            total_ops,
            mc_pack_elapsed,
            legacy_mops,
            identical,
            &mc_pack,
        ));
        // Speculative weave on the shared stream (DESIGN.md §15): the
        // conflict-heavy case — most epochs abort and re-execute as
        // serial residue, so this row bounds the speculation overhead.
        let (mc_spec, mc_spec_elapsed) = time(|| {
            MulticoreEngine::new(mc_config(cores).with_speculative_weave()).run_pack(&pack)
        });
        let identical = spec_identical(&mc_spec, &mc_vec);
        assert!(
            identical,
            "speculative shared replay must be bit-identical to serial"
        );
        push(mc_row(
            "mc_shared_spec",
            cores,
            total_ops,
            mc_spec_elapsed,
            legacy_mops,
            identical,
            &mc_spec,
        ));

        // Disjoint working sets: one offset copy of the stream per core.
        let dis_shards: Vec<Vec<TraceOp>> = (0..cores).map(|c| offset_ops(ops, c)).collect();
        let dis_packs: Vec<TracePack> = dis_shards
            .iter()
            .map(|s| TracePack::from_ops(s.iter().copied()))
            .collect();
        let dis_ops = total_ops * cores as u64;
        let (dis_vec, dis_vec_elapsed) =
            time(|| MulticoreEngine::new(mc_config(cores)).run(dis_shards));
        push(mc_row(
            "mc_disjoint_iter",
            cores,
            dis_ops,
            dis_vec_elapsed,
            legacy_mops,
            true,
            &dis_vec,
        ));
        let (dis_pack, dis_pack_elapsed) =
            time(|| MulticoreEngine::new(mc_config(cores)).run_packs(&dis_packs));
        let identical = mc_identical(&dis_pack, &dis_vec);
        assert!(
            identical,
            "packed disjoint multicore replay must be bit-identical"
        );
        let row = mc_row(
            "mc_disjoint_packed",
            cores,
            dis_ops,
            dis_pack_elapsed,
            legacy_mops,
            identical,
            &dis_pack,
        );
        if cores == 2 {
            disjoint_2core_packed_speedup = row.speedup_vs_legacy;
        }
        push(row);
        // Speculative weave over disjoint working sets: streams sweep
        // every directory bank, so claims still collide — commit rate
        // tracks how often the per-quantum bank footprints stay apart.
        let (dis_spec, dis_spec_elapsed) = time(|| {
            MulticoreEngine::new(mc_config(cores).with_speculative_weave()).run_packs(&dis_packs)
        });
        let identical = spec_identical(&dis_spec, &dis_vec);
        assert!(
            identical,
            "speculative disjoint replay must be bit-identical to serial"
        );
        push(mc_row(
            "mc_disjoint_spec",
            cores,
            dis_ops,
            dis_spec_elapsed,
            legacy_mops,
            identical,
            &dis_spec,
        ));

        // Read-mostly shared table that fits the private L1s: after
        // warm-up nearly every op is a clean Shared hit completed in the
        // bound phase.
        let rm = generate_mt(&MtWorkloadConfig {
            pattern: MtPattern::SharedTableHot,
            cores,
            ops_per_core: steady_ops,
            seed: 7,
            califormed: true,
        });
        let rm_ops: u64 = rm.shards.iter().map(|s| s.len() as u64).sum();
        let rm_packs: Vec<TracePack> = rm.to_packs();
        let rm_shards = rm.shards.clone();
        let (rm_vec, rm_vec_elapsed) =
            time(|| MulticoreEngine::new(mc_config(cores)).run(rm_shards));
        push(mc_row(
            "mc_readmostly_iter",
            cores,
            rm_ops,
            rm_vec_elapsed,
            legacy_mops,
            true,
            &rm_vec,
        ));
        let (rm_pack, rm_pack_elapsed) =
            time(|| MulticoreEngine::new(mc_config(cores)).run_packs(&rm_packs));
        let identical = mc_identical(&rm_pack, &rm_vec);
        assert!(
            identical,
            "packed read-mostly multicore replay must be bit-identical"
        );
        let row = mc_row(
            "mc_readmostly_packed",
            cores,
            rm_ops,
            rm_pack_elapsed,
            legacy_mops,
            identical,
            &rm_pack,
        );
        if cores == 2 {
            readmostly_2core_packed_speedup = row.speedup_vs_legacy;
        }
        push(row);
        // Speculative weave on the read-mostly shape: weave traffic is
        // sparse and mostly private, so epochs commit and the weave
        // leaves the serial bottleneck.
        let (rm_spec, rm_spec_elapsed) = time(|| {
            MulticoreEngine::new(mc_config(cores).with_speculative_weave()).run_packs(&rm_packs)
        });
        let identical = spec_identical(&rm_spec, &rm_vec);
        assert!(
            identical,
            "speculative read-mostly replay must be bit-identical to serial"
        );
        let row = mc_row(
            "mc_readmostly_spec",
            cores,
            rm_ops,
            rm_spec_elapsed,
            legacy_mops,
            identical,
            &rm_spec,
        );
        if cores == 2 {
            readmostly_2core_spec_speedup = row.speedup_vs_legacy;
        }
        if cores == 4 {
            readmostly_4core_spec_speedup = row.speedup_vs_legacy;
        }
        push(row);
    }

    // --- Telemetry (opt-in): the highest-core-count shared-stream packed
    // replay re-run instrumented, with the span timeline and counter
    // snapshot exported. Bit-identity against the uninstrumented run is
    // asserted before anything is written. ---
    if telemetry {
        let cores = *core_counts.iter().max().expect("--cores is non-empty");
        let (tel_out, tel_elapsed) =
            time(|| MulticoreEngine::new(mc_config(cores).with_telemetry()).run_pack(&pack));
        let base = MulticoreEngine::new(mc_config(cores)).run_pack(&pack);
        let identical = mc_identical(&tel_out, &base);
        assert!(identical, "telemetry must not perturb simulation results");
        let row = mc_row(
            "mc_shared_tel",
            cores,
            total_ops,
            tel_elapsed,
            legacy_mops,
            identical,
            &tel_out,
        );
        push(row);
        let report = tel_out.telemetry.as_ref().expect("telemetry was enabled");
        println!();
        print!(
            "{}",
            render_telemetry_summary(report, &tel_out.stats, &tel_out.timing)
        );
        if let Some(path) = &metrics_out {
            std::fs::write(path, report.metrics_json()).expect("write --metrics-out");
            println!("metrics JSON written to {path}");
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, report.trace_json()).expect("write --trace-out");
            println!("Perfetto trace written to {path} (open in https://ui.perfetto.dev)");
        }
    }

    let report = ReplayReport {
        workload: w.name.clone(),
        policy: "intelligent 1-7B +CFORM".to_string(),
        steady_ops: steady_ops as u64,
        trace_ops: total_ops,
        pack_bytes_per_op: pack.bytes_per_op(),
        vec_bytes_per_op: std::mem::size_of::<TraceOp>() as f64,
        quantum,
        adaptive_quantum: adaptive,
        packed_vs_legacy_speedup: packed_speedup,
        rows,
    };
    write_json("BENCH_replay.json", &report).expect("write results");
    println!();
    println!(
        "packed_batched vs legacy_iter: {packed_speedup:.2}x — JSON written to BENCH_replay.json"
    );

    if telemetry_check {
        let cores = *core_counts.iter().min().expect("--cores is non-empty");
        // Counter determinism: two instrumented runs of the same pack
        // must hand back byte-identical snapshots.
        let snap = |_: usize| {
            MulticoreEngine::new(mc_config(cores).with_telemetry())
                .run_pack(&pack)
                .telemetry
                .expect("telemetry was enabled")
                .counters
                .to_bytes()
        };
        if snap(0) != snap(1) {
            eprintln!("FAIL: telemetry counter snapshots differ across identical runs");
            std::process::exit(1);
        }
        // Overhead: telemetry on the read-mostly packed row (the shape
        // where per-op cost shows up) must stay within 3% of disabled,
        // best of 3 each to shed host noise.
        let rm = generate_mt(&MtWorkloadConfig {
            pattern: MtPattern::SharedTableHot,
            cores,
            ops_per_core: steady_ops,
            seed: 7,
            califormed: true,
        });
        let rm_packs = rm.to_packs();
        let best_of_3 = |tel: bool| -> f64 {
            (0..3)
                .map(|_| {
                    let cfg = if tel {
                        mc_config(cores).with_telemetry()
                    } else {
                        mc_config(cores)
                    };
                    time(|| MulticoreEngine::new(cfg).run_packs(&rm_packs)).1
                })
                .fold(f64::INFINITY, f64::min)
        };
        let off = best_of_3(false);
        let on = best_of_3(true);
        let overhead = on / off - 1.0;
        println!(
            "telemetry-check: snapshots byte-identical; read-mostly overhead \
             {:+.2}% (on {on:.3}s vs off {off:.3}s, gate ≤ 3%)",
            overhead * 100.0
        );
        if overhead > 0.03 {
            eprintln!("FAIL: telemetry overhead above the 3% gate");
            std::process::exit(1);
        }
    }

    if check {
        // The scaling tripwire: a real multicore-runtime regression drags
        // every scaling-shape row down, while single rows can wobble on a
        // noisy (or single-CPU) host — so the gate fires only when BOTH
        // 2-core packed scaling rows fall below 1.0x legacy.
        let best = disjoint_2core_packed_speedup.max(readmostly_2core_packed_speedup);
        println!(
            "check: 2-core packed replay at {disjoint_2core_packed_speedup:.2}x (disjoint) / \
             {readmostly_2core_packed_speedup:.2}x (read-mostly) legacy — gate: best ≥ 1.0x"
        );
        if best.is_nan() || best < 1.0 {
            eprintln!("FAIL: 2-core packed replay dropped below 1.0x single-core legacy");
            std::process::exit(1);
        }
        // The speculative-weave gate (DESIGN.md §15): on the read-mostly
        // shape — the one the parallel runtime targets — speculation must
        // cost nothing: ≥ 1.0x legacy at 2 cores, ≥ 1.5x at 4 cores
        // (measured ~3.2x / ~2.6x; the margin absorbs host noise). The
        // weave-bound `mc_shared` rows are NOT gated: their epochs span
        // every directory bank, so per-bank claims always conflict and
        // speculation can only match the serial weave, never beat it —
        // bit-identity there is enforced by the hard asserts above.
        println!(
            "check: speculative read-mostly at {readmostly_2core_spec_speedup:.2}x (2-core, \
             gate ≥ 1.0x) / {readmostly_4core_spec_speedup:.2}x (4-core, gate ≥ 1.5x) legacy"
        );
        if readmostly_2core_spec_speedup.is_nan() || readmostly_2core_spec_speedup < 1.0 {
            eprintln!("FAIL: 2-core speculative read-mostly replay below 1.0x legacy");
            std::process::exit(1);
        }
        if core_counts.contains(&4)
            && (readmostly_4core_spec_speedup.is_nan() || readmostly_4core_spec_speedup < 1.5)
        {
            eprintln!("FAIL: 4-core speculative read-mostly replay below 1.5x legacy");
            std::process::exit(1);
        }
    }
}
