//! Host replay-throughput study: how fast the simulator itself chews
//! through trace ops, before and after the trace-pack overhaul.
//!
//! Three single-core replay paths over the same streaming workload:
//!
//! * `legacy_iter` — the pre-overhaul path, reproduced faithfully: a
//!   boxed iterator chain feeding per-op `Hierarchy::load`/`store` calls
//!   that allocate a `Vec` per load result and a `Vec` per synthesized
//!   store payload;
//! * `engine_iter` — the current `Engine::run` over a materialised
//!   `Vec<TraceOp>` (quiet loads, stack store buffers);
//! * `packed_batched` — `Engine::run_pack`: ops batch-decoded from the
//!   compact binary pack into a fixed ring (decode cost included in the
//!   measurement).
//!
//! Plus multi-core rows (2/4 cores): `MulticoreEngine::run` over
//! pre-sharded `Vec`s vs `run_pack` sharding the single pack on the fly.
//! Every packed run is asserted bit-identical (stats + exceptions) to its
//! unpacked twin before its throughput is reported.
//!
//! Results go to stdout and `BENCH_replay.json` in the working directory
//! (the perf-trajectory artifact CI uploads per PR).
//!
//! Usage: `cargo run --release --bin replay [--smoke] [steady_ops]`

use califorms_bench::legacy_replay::run_legacy;
use califorms_bench::write_json;
use califorms_sim::multicore::shard_ops;
use califorms_sim::{Engine, MulticoreConfig, MulticoreEngine, TraceOp};
use califorms_workloads::{generate, spec, WorkloadConfig};
use serde::Serialize;
use std::time::Instant;

/// One measured replay mode.
#[derive(Debug, Clone, Serialize)]
struct ReplayRow {
    mode: String,
    cores: u64,
    ops: u64,
    elapsed_s: f64,
    mops_per_s: f64,
    speedup_vs_legacy: f64,
    bit_identical_to_unpacked: bool,
}

/// The whole report written to `BENCH_replay.json`.
#[derive(Debug, Clone, Serialize)]
struct ReplayReport {
    workload: String,
    policy: String,
    steady_ops: u64,
    trace_ops: u64,
    pack_bytes_per_op: f64,
    vec_bytes_per_op: f64,
    packed_vs_legacy_speedup: f64,
    rows: Vec<ReplayRow>,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let steady_ops = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 100_000 } else { 2_000_000 });

    // The streaming workload: libquantum is the paper's most
    // stream-dominated benchmark, with spans installed so the califormed
    // checks stay on the measured path.
    let profile = spec::by_name("libquantum").expect("profile exists");
    let policy = califorms_layout::InsertionPolicy::intelligent_1_to(7);
    let w = generate(
        &profile,
        &WorkloadConfig::with_policy(policy, steady_ops, 7),
    );
    let ops = &w.ops;
    let pack = w.to_pack();
    let total_ops = ops.len() as u64;
    assert_eq!(pack.len_ops(), total_ops);

    println!(
        "Replay throughput: {} ops ({} steady), pack {:.2} B/op vs {} B/op in Vec<TraceOp>",
        total_ops,
        steady_ops,
        pack.bytes_per_op(),
        std::mem::size_of::<TraceOp>(),
    );
    println!();
    println!(
        "{:<16} | {:>5} | {:>10} | {:>12} | {:>10} | {:>13}",
        "mode", "cores", "elapsed s", "host Mops/s", "vs legacy", "bit-identical"
    );
    println!("{}", "-".repeat(82));

    let mut rows: Vec<ReplayRow> = Vec::new();
    let mut push = |mode: &str, cores: u64, elapsed: f64, legacy_elapsed: f64, identical: bool| {
        let row = ReplayRow {
            mode: mode.to_string(),
            cores,
            ops: total_ops,
            elapsed_s: elapsed,
            mops_per_s: total_ops as f64 / elapsed / 1e6,
            speedup_vs_legacy: legacy_elapsed / elapsed,
            bit_identical_to_unpacked: identical,
        };
        println!(
            "{:<16} | {:>5} | {:>10.3} | {:>12.2} | {:>9.2}x | {:>13}",
            row.mode,
            row.cores,
            row.elapsed_s,
            row.mops_per_s,
            row.speedup_vs_legacy,
            row.bit_identical_to_unpacked
        );
        rows.push(row);
    };

    // --- Single core. ---
    let ((legacy_stats, legacy_exc), legacy_elapsed) =
        time(|| run_legacy(Box::new(ops.iter().copied())));
    push("legacy_iter", 1, legacy_elapsed, legacy_elapsed, true);

    let (iter_out, iter_elapsed) = time(|| Engine::westmere().run(ops.iter().copied()));
    assert_eq!(
        iter_out.stats, legacy_stats,
        "hot-path rework must not change simulation results"
    );
    assert_eq!(iter_out.exceptions, legacy_exc);
    push("engine_iter", 1, iter_elapsed, legacy_elapsed, true);

    let (packed_out, packed_elapsed) = time(|| Engine::westmere().run_pack(&pack));
    let packed_identical =
        packed_out.stats == iter_out.stats && packed_out.exceptions == iter_out.exceptions;
    assert!(packed_identical, "packed replay must be bit-identical");
    push("packed_batched", 1, packed_elapsed, legacy_elapsed, true);
    let packed_speedup = legacy_elapsed / packed_elapsed;

    // --- Multi core: pre-sharded Vecs vs sharding the pack on the fly.
    // (Generated workloads carry no mask windows, so round-robin
    // sharding is mask-safe.)
    for cores in [2usize, 4] {
        let shards = shard_ops(ops.iter().copied(), cores);
        let (mc_vec, mc_vec_elapsed) =
            time(|| MulticoreEngine::new(MulticoreConfig::westmere(cores)).run(shards));
        push(
            "multicore_iter",
            cores as u64,
            mc_vec_elapsed,
            legacy_elapsed,
            true,
        );
        let (mc_pack, mc_pack_elapsed) =
            time(|| MulticoreEngine::new(MulticoreConfig::westmere(cores)).run_pack(&pack));
        let identical = mc_pack.stats.combined == mc_vec.stats.combined
            && mc_pack.stats.per_core == mc_vec.stats.per_core
            && mc_pack.exceptions == mc_vec.exceptions;
        assert!(identical, "packed multicore replay must be bit-identical");
        push(
            "multicore_packed",
            cores as u64,
            mc_pack_elapsed,
            legacy_elapsed,
            identical,
        );
    }

    let report = ReplayReport {
        workload: w.name.clone(),
        policy: "intelligent 1-7B +CFORM".to_string(),
        steady_ops: steady_ops as u64,
        trace_ops: total_ops,
        pack_bytes_per_op: pack.bytes_per_op(),
        vec_bytes_per_op: std::mem::size_of::<TraceOp>() as f64,
        packed_vs_legacy_speedup: packed_speedup,
        rows,
    };
    write_json("BENCH_replay.json", &report).expect("write results");
    println!();
    println!(
        "packed_batched vs legacy_iter: {packed_speedup:.2}x — JSON written to BENCH_replay.json"
    );
}
