//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **L2 metadata format** — naive bitvector-everywhere vs the sentinel
//!    format (the Section 5.2 motivation).
//! 2. **Non-temporal CFORM on free** — the footnote-3 optimisation the
//!    paper leaves unevaluated.
//! 3. **Quarantine size** — temporal-safety window vs heap growth.
//! 4. **SIMD/vector policy** — false-positive rates of the Appendix B
//!    options on a span-straddling sweep.

#![forbid(unsafe_code)]

use califorms_alloc::{AllocatorConfig, CaliformsHeap};
use califorms_layout::{InsertionPolicy, StructDef};
use califorms_sim::vector::{vector_load, VectorMode};
use califorms_sim::{CoreConfig, Engine, Hierarchy, HierarchyConfig, TraceOp};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    metadata_format();
    nt_cform();
    quarantine();
    vector_modes();
}

fn metadata_format() {
    println!("=== Ablation 1: L2+ metadata format ===");
    println!();
    // Storage overhead per 64B line if the L1 format were used everywhere
    // vs the sentinel format (paper Section 5.2).
    let levels = [
        ("L2 256KB", 256 * 1024),
        ("L3 2MB", 2 * 1024 * 1024),
        ("DRAM 8GB", 8usize * 1024 * 1024 * 1024),
    ];
    println!("{:<10} | naive 8B/line | sentinel 1b/line", "level");
    for (name, bytes) in levels {
        let lines = bytes / 64;
        println!(
            "{:<10} | {:>10} KB | {:>10} KB",
            name,
            lines * 8 / 1024,
            lines.div_ceil(8) / 1024
        );
    }
    println!("naive: 12.5% everywhere; sentinel: 0.2% — the reason the paper");
    println!("accepts the spill/fill converters (~35k GE, off the hit path).");
    println!();
}

fn nt_cform() {
    println!("=== Ablation 2: non-temporal CFORM on free ===");
    println!();
    let mut rng = SmallRng::seed_from_u64(1);
    let layout = InsertionPolicy::Opportunistic.apply(&StructDef::paper_example(), &mut rng);
    let run = |nt: bool| {
        let cfg = AllocatorConfig {
            nt_cform_on_free: nt,
            quarantine_bytes: 1 << 16,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x100_0000, cfg);
        let mut ops = Vec::new();
        // A hot working set that just fits the 32 KB L1, interleaved with
        // frees of long-cold objects: the temporal CFORM drags each dead
        // freed line through the L1, evicting hot data; the NT variant
        // updates it at the L2 and leaves the hot set alone.
        let hot: Vec<u64> = (0..480u64).map(|i| 0x200_0000 + i * 64).collect();
        let mut cold = Vec::new();
        let mut cursor = 0usize;
        for _ in 0..2_000usize {
            for _ in 0..48 {
                cursor = (cursor + 1) % hot.len();
                ops.push(TraceOp::Load {
                    addr: hot[cursor],
                    size: 8,
                });
            }
            let p = heap.malloc(&layout, &mut ops);
            cold.push(p);
            if cold.len() > 64 {
                heap.free(cold.remove(0), &mut ops);
            }
        }
        let engine = Engine::new(HierarchyConfig::westmere(), CoreConfig::westmere());
        engine.run(ops).stats
    };
    let temporal = run(false);
    let nt = run(true);
    println!(
        "temporal CFORM free: {:>12.0} cycles, L1 miss ratio {:.2}%",
        temporal.cycles,
        temporal.l1d.miss_ratio() * 100.0
    );
    println!(
        "non-temporal free:   {:>12.0} cycles, L1 miss ratio {:.2}%",
        nt.cycles,
        nt.l1d.miss_ratio() * 100.0
    );
    println!(
        "NT speedup: {:.2}% (paper: 'should provide better performance', not evaluated)",
        (temporal.cycles / nt.cycles - 1.0) * 100.0
    );
    println!();
}

fn quarantine() {
    println!("=== Ablation 3: quarantine capacity ===");
    println!();
    let mut rng = SmallRng::seed_from_u64(2);
    let layout = InsertionPolicy::Opportunistic.apply(&StructDef::paper_example(), &mut rng);
    println!(
        "{:>12} | {:>12} | {:>14} | reuse delay (allocs until a freed block returns)",
        "quarantine", "cform ops", "heap consumed"
    );
    for q in [0usize, 4 << 10, 64 << 10, 1 << 20] {
        let cfg = AllocatorConfig {
            quarantine_bytes: q,
            ..AllocatorConfig::default()
        };
        let mut heap = CaliformsHeap::new(0x100_0000, cfg);
        let mut ops = Vec::new();
        let probe = heap.malloc(&layout, &mut ops);
        heap.free(probe, &mut ops);
        let mut reuse_delay = None;
        for i in 0..20_000usize {
            let p = heap.malloc(&layout, &mut ops);
            if p == probe && reuse_delay.is_none() {
                reuse_delay = Some(i + 1);
            }
            heap.free(p, &mut ops);
        }
        let stats = heap.stats();
        println!(
            "{:>10} B | {:>12} | {:>12} B | {}",
            q,
            stats.cform_ops,
            stats.heap_consumed,
            reuse_delay
                .map(|d| d.to_string())
                .unwrap_or_else(|| "never (within 20k)".into()),
        );
    }
    println!("larger quarantine = longer use-after-free detection window, more");
    println!("fresh heap consumed — the temporal-safety dial of Section 6.1.");
    println!();
}

fn vector_modes() {
    println!("=== Ablation 4: SIMD/vector policies (Appendix B) ===");
    println!();
    // A 64B sweep over an object whose span sits mid-line: legitimate
    // vectorised code (e.g. memcmp) that never *uses* the span lanes.
    let build = || {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        h.store(0x9000, &[7u8; 64], 0);
        h.cform(
            &califorms_core::CformInstruction::set(0x9000, 0b111 << 24),
            0,
        );
        h
    };
    println!(
        "{:<12} | faults on load | usable w/ lane mask | false positive?",
        "mode"
    );
    for mode in [
        VectorMode::Precise,
        VectorMode::TrapOnAny,
        VectorMode::Propagate,
    ] {
        let mut h = build();
        let (r, v) = vector_load(&mut h, 0x9000, 64, mode, 0);
        let faults = r.exception.is_some();
        let masked_ok = v.use_lanes(0xFFFF).is_none(); // consume clean lanes only
        let false_positive = faults && mode != VectorMode::Precise;
        println!(
            "{:<12} | {:<14} | {:<19} | {}",
            format!("{mode:?}"),
            faults,
            if mode == VectorMode::Propagate {
                masked_ok.to_string()
            } else {
                "n/a".into()
            },
            false_positive
        );
    }
    println!();
    println!("Precise = exact but serialises; TrapOnAny = cheap but false-positives");
    println!("on legitimate straddling sweeps; Propagate = exact with poison bits.");
}
