//! Figure 4: average slowdown when every struct field is followed by a
//! fixed 1–7 B padding (no `CFORM`s — the pure cache-underutilisation
//! lower bound of the motivation study).
//!
//! Paper reference: 3.0 % at 1 B rising monotonically to 7.6 % at 7 B.

#![forbid(unsafe_code)]

use califorms_bench::{fig4, render_slowdowns, results_dir, write_json, DEFAULT_STEADY_OPS};

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEADY_OPS);
    let rows = fig4(ops);
    print!(
        "{}",
        render_slowdowns(
            &format!("Figure 4 — fixed-padding sweep ({ops} steady-state ops/run)"),
            &rows
        )
    );
    write_json(results_dir().join("fig4.json"), &rows).expect("write results");
    println!("JSON written to target/experiment-results/fig4.json");
}
