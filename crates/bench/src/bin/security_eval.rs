//! Section 7.3 security evaluation: the derandomisation probabilities
//! (closed form + Monte-Carlo via the executable attacks) and the attack
//! scenario suite run end to end against the simulated machine.

#![forbid(unsafe_code)]

use califorms_layout::InsertionPolicy;
use califorms_security::attacks;
use califorms_security::probability::{
    expected_objects_until_detection, guess_success_probability, scan_survival_probability,
};
use califorms_security::ThreatModel;

fn main() {
    let threat = ThreatModel::paper();
    println!(
        "threat model: arbitrary R/W={}, source known={}, binary known={}",
        threat.arbitrary_read && threat.arbitrary_write,
        threat.knows_source,
        threat.knows_binary
    );
    println!();

    println!("=== Derandomisation analysis (Section 7.3) ===");
    println!();
    println!("scan-survival probability (1 - P/N)^O at P/N = 10%:");
    for o in [1u32, 10, 50, 100, 250] {
        println!(
            "  O = {o:>4}: {:.3e}  (paper calibration: ~0 by O = 250)",
            scan_survival_probability(0.10, o)
        );
    }
    println!(
        "expected objects scanned before detection: {:.1}",
        expected_objects_until_detection(0.10)
    );
    println!();
    println!("guessing probability 1/7^n for 1-7B spans:");
    for n in [1u32, 2, 3, 5] {
        println!("  n = {n}: {:.3e}", guess_success_probability(n, 7));
    }
    println!();

    println!("=== Executable attack suite (simulated machine) ===");
    println!();
    let policies = [
        ("none", InsertionPolicy::None),
        ("opportunistic", InsertionPolicy::Opportunistic),
        ("full 1-7B", InsertionPolicy::full_1_to(7)),
        ("intelligent 1-7B", InsertionPolicy::intelligent_1_to(7)),
    ];
    println!(
        "{:<18} | {:<26} | {:<26} | {:<20}",
        "policy", "intra-object overflow", "intra-object overread", "use-after-free"
    );
    for (name, policy) in policies {
        let ov = attacks::intra_object_overflow(policy, 42);
        let or = attacks::intra_object_overread(policy, 42);
        let uaf = attacks::use_after_free(policy, 42);
        let fmt = |r: &attacks::AttackReport| {
            if r.outcome.detected() {
                "DETECTED"
            } else {
                "missed"
            }
        };
        println!(
            "{:<18} | {:<26} | {:<26} | {:<20}",
            name,
            fmt(&ov),
            fmt(&or),
            fmt(&uaf)
        );
    }
    println!();

    let (succ, det, trials) = attacks::jump_over_trials(7, 5_000, 7);
    println!(
        "jump-over guessing, {trials} independent builds: success {:.3} (theory 1/7 = 0.143), detected {:.3} (theory 3/7 = 0.429)",
        f64::from(succ) / f64::from(trials),
        f64::from(det) / f64::from(trials)
    );

    let scan = attacks::heap_scan(InsertionPolicy::full_1_to(7), 50, 3);
    match scan.outcome {
        attacks::AttackOutcome::Detected { after_accesses, .. } => {
            println!("heap scan (full policy): detected after {after_accesses} byte accesses")
        }
        attacks::AttackOutcome::Undetected { .. } => println!("heap scan: NOT detected (!)"),
    }

    let probe = attacks::speculative_probe(11);
    println!(
        "speculative probe (cache + LSQ zero-return): {}",
        if probe.outcome.detected() {
            "no leak — defence holds"
        } else {
            "LEAKED (!)"
        }
    );
    println!();

    println!("=== BROP derandomisation (restart-after-crash, Section 7.3) ===");
    println!();
    use califorms_security::brop::{run_brop, BropScenario};
    let trials = 200u64;
    for (label, rerand) in [("fixed layout", false), ("re-randomised respawn", true)] {
        let scenario = BropScenario {
            spans: 3,
            max_width: 7,
            rerandomize_on_crash: rerand,
        };
        let mut crashes = 0u64;
        let mut wins = 0u64;
        for t in 0..trials {
            let r = run_brop(scenario, 100_000, t);
            crashes += r.crashes;
            wins += u64::from(r.succeeded);
        }
        println!(
            "{label:<22}: avg crashes to break 3 spans = {:.1} ({} of {trials} campaigns succeed)",
            crashes as f64 / trials as f64,
            wins
        );
    }
    println!("static randomness falls to linear probing; per-respawn re-randomisation");
    println!("forces the full 1/7^n lottery each attempt — the paper's suggested fix.");
}
