//! Figure 3: struct-density histograms of the SPEC CPU2006 and V8
//! corpora.
//!
//! Paper reference: 45.7 % of SPEC structs and 41.0 % of V8 structs have
//! at least one byte of padding; densities cluster in the top bin.

#![forbid(unsafe_code)]

use califorms_bench::{fig3, results_dir, write_json};

fn main() {
    let results = fig3(50_000);
    for r in &results {
        println!("=== Figure 3 — {} ===", r.corpus);
        println!(
            "fraction of structs with >=1 padding byte: {:.3} (paper: {:.3})",
            r.fraction_with_padding, r.paper_fraction
        );
        println!("struct density histogram (10 bins over (0,1]):");
        for (i, frac) in r.histogram.iter().enumerate() {
            let lo = i as f64 / 10.0;
            let hi = lo + 0.1;
            let bar = "#".repeat((frac * 120.0).round() as usize);
            println!("  ({lo:.1},{hi:.1}] {frac:6.3} {bar}");
        }
        println!();
    }
    write_json(results_dir().join("fig3.json"), &results).expect("write results");
    println!("JSON written to target/experiment-results/fig3.json");
}
