//! Runs every experiment at a reduced scale — a one-shot smoke pass over
//! the full evaluation (the per-figure binaries are the full-scale runs).

#![forbid(unsafe_code)]

use califorms_bench::{
    fig10, fig11_series, fig12_series, fig3, fig4, mean, policy_figure, render_policy_rows,
    render_slowdowns, series_average,
};
use califorms_vlsi::tables::{render_comparison, table7};
use califorms_vlsi::Tech;

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    println!("############ Figure 3 ############");
    for r in fig3(20_000) {
        println!(
            "{}: fraction with padding {:.3} (paper {:.3})",
            r.corpus, r.fraction_with_padding, r.paper_fraction
        );
    }
    println!();

    println!("############ Figure 4 ############");
    print!("{}", render_slowdowns("fixed padding 1-7B", &fig4(ops)));
    println!();

    println!("############ Figure 10 ############");
    let rows = fig10(ops);
    print!("{}", render_slowdowns("+1 cycle L2/L3", &rows));
    println!("paper AVG 0.83% | measured AVG {:.2}%", mean(&rows) * 100.0);
    println!();

    println!("############ Figure 11 ############");
    let rows = policy_figure(&fig11_series(), ops);
    print!("{}", render_policy_rows("opportunistic & full", &rows));
    println!(
        "paper: opp CFORM 7.9%, full 1-7B CFORM ~14% | measured: {:.1}%, {:.1}%",
        series_average(&rows, "Opportunistic CFORM") * 100.0,
        series_average(&rows, "1-7B CFORM") * 100.0
    );
    println!();

    println!("############ Figure 12 ############");
    let rows = policy_figure(&fig12_series(), ops);
    print!("{}", render_policy_rows("intelligent", &rows));
    println!();

    println!("############ Tables 2 & 7 ############");
    print!("{}", render_comparison(&table7(&Tech::tsmc65())));
}
