//! Table 1: the `CFORM` instruction K-map, verified exhaustively against
//! the implementation and printed.

#![forbid(unsafe_code)]

use califorms_core::{CaliformedLine, CformInstruction};

fn cell(initially_security: bool, set: bool, allow: bool) -> &'static str {
    let mut line = CaliformedLine::zeroed();
    if initially_security {
        line.set_security_byte(0);
    }
    let insn = CformInstruction::new(0, set as u64, allow as u64);
    match insn.execute(&mut line) {
        Err(_) => "Exception",
        Ok(_) => {
            if line.is_security_byte(0) {
                "Security Byte"
            } else {
                "Regular Byte"
            }
        }
    }
}

fn main() {
    println!("Table 1 — K-map for the CFORM instruction (verified against the implementation)");
    println!();
    println!(
        "{:<16} | {:<14} | {:<14} | {:<14}",
        "initial \\ R2,R3", "X, Disallow", "Unset, Allow", "Set, Allow"
    );
    println!("{:-<16}-+-{:-<14}-+-{:-<14}-+-{:-<14}", "", "", "", "");
    for (label, sec) in [("Regular Byte", false), ("Security Byte", true)] {
        println!(
            "{:<16} | {:<14} | {:<14} | {:<14}",
            label,
            cell(sec, true, false), // R2 is don't-care when disallowed
            cell(sec, false, true),
            cell(sec, true, true),
        );
    }
    println!();
    println!("paper: Regular+Set/Allow -> Security Byte; Regular+Unset/Allow -> Exception");
    println!("       Security+Set/Allow -> Exception;   Security+Unset/Allow -> Regular Byte");
    // Hard assertions so this binary doubles as a check.
    assert_eq!(cell(false, true, true), "Security Byte");
    assert_eq!(cell(false, false, true), "Exception");
    assert_eq!(cell(true, true, true), "Exception");
    assert_eq!(cell(true, false, true), "Regular Byte");
    assert_eq!(cell(false, true, false), "Regular Byte");
    assert_eq!(cell(true, true, false), "Security Byte");
    println!();
    println!("all six cells verified OK");
}
