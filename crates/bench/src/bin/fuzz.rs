//! The differential trace fuzzer: generate seeded scenario packs and
//! replay each through the optimized simulator stacks **and** the
//! cache-free reference oracle (`califorms-oracle`), failing on any
//! divergence in exceptions, final memory/blacklist state, or counters.
//!
//! Case families:
//!
//! * single-core cases diff [`califorms_sim::Engine`] (a third carry
//!   mid-run DMA reads / page swap cycles);
//! * multi-core cases diff [`califorms_sim::MulticoreEngine`] at the
//!   configured core count under weave batches **1 and 64** (the strict
//!   one-transaction-per-turn weave and the batched default), each with
//!   the serial **and** the speculative weave (the latter additionally
//!   required bit-identical to its serial twin, DESIGN.md §15);
//! * every fourth case (deterministically, by seed) also replays in
//!   checkpoint+resume mode: checkpointed every 2 boundaries, resumed
//!   from each checkpoint, every resumed run required bit-identical to
//!   the straight-through one (the crash-tolerance arm).
//!
//! On divergence the offending pack is shrunk to a minimal
//! counterexample, written to `target/fuzz-failures/`, and the process
//! exits non-zero (CI uploads the pack as an artifact). Every case is a
//! pure function of `(seed, case index)`: the printed repro line is all
//! that's needed to regenerate it.
//!
//! Usage:
//! `cargo run --release --bin fuzz -- [--seed N] [--cases N] [--ops N]
//!  [--cores N] [--smoke] [--replay FILE] [--write-corpus DIR]
//!  [--inject-l1-mask-fault]`
//!
//! * `--smoke` — the CI gate: fixed seed, 512 single-core + 512
//!   multi-core cases (4-core, weave batches 1 and 64) — ≥1k generated
//!   packs, zero divergences expected.
//! * `--replay FILE` — replay one corpus pack (core count parsed from
//!   its `…-c<cores>.cftp` name) and report agreement.
//! * `--write-corpus DIR` — emit the first `--cases` generated packs as
//!   corpus files instead of diffing them.
//! * `--inject-l1-mask-fault` — deliberately corrupt a scratch copy of
//!   the L1 security-byte mask when diffing single-core state (must
//!   make the fuzzer fail; demonstrates the harness has teeth).

#![forbid(unsafe_code)]

use califorms_oracle::corpus::{pack_file_name, replay_pack_file, write_pack};
use califorms_oracle::diff::{diff_pack, DiffConfig, Divergence, FaultInjection};
use califorms_oracle::fuzz::{case_seed, generate_case, FuzzCase};
use califorms_oracle::shrink::{shrink_ops, DEFAULT_CHECK_BUDGET};
use califorms_sim::TracePack;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_SEED: u64 = 0xC411_F02A;

struct Args {
    seed: u64,
    cases: usize,
    ops: usize,
    cores: usize,
    smoke: bool,
    replay: Option<PathBuf>,
    write_corpus: Option<PathBuf>,
    inject_fault: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: DEFAULT_SEED,
        cases: 100,
        ops: 256,
        cores: 4,
        smoke: false,
        replay: None,
        write_corpus: None,
        inject_fault: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--seed" => args.seed = parse_u64(&value("--seed")),
            "--cases" => args.cases = value("--cases").parse().expect("--cases N"),
            "--ops" => args.ops = value("--ops").parse().expect("--ops N"),
            "--cores" => args.cores = value("--cores").parse().expect("--cores N"),
            "--smoke" => args.smoke = true,
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            "--write-corpus" => args.write_corpus = Some(PathBuf::from(value("--write-corpus"))),
            "--inject-l1-mask-fault" => args.inject_fault = true,
            other => panic!("unknown argument {other}"),
        }
    }
    if args.smoke {
        args.seed = DEFAULT_SEED;
        args.cases = 512;
        args.ops = 256;
        args.cores = 4;
    }
    args
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("--seed takes a u64")
    } else {
        s.parse().expect("--seed takes a u64")
    }
}

/// Diff configurations one case is checked under. Every fourth case
/// (deterministically, by seed) additionally replays in
/// checkpoint+resume mode (`resume_at`): the run is checkpointed every
/// 2 boundaries, resumed from every checkpoint, and each resumed run
/// must be bit-identical to the straight-through one — the fuzzer's
/// crash-tolerance arm.
fn configs_for(case: &FuzzCase, inject: bool) -> Vec<DiffConfig> {
    let resume_at = case.seed.is_multiple_of(4).then_some(2);
    if case.cores == 1 {
        vec![DiffConfig {
            fault: inject.then_some(FaultInjection::L1MaskOffByOne),
            resume_at,
            ..DiffConfig::single()
        }]
    } else {
        vec![
            DiffConfig::multicore(case.cores, 1),
            DiffConfig {
                resume_at,
                ..DiffConfig::multicore(case.cores, 64)
            },
            // The speculative-weave arms: each multi-core case also
            // replays with the optimistic parallel weave, which must be
            // bit-identical to its serial twin (DESIGN.md §15) *and*
            // agree with the oracle.
            DiffConfig {
                speculative: true,
                ..DiffConfig::multicore(case.cores, 1)
            },
            DiffConfig {
                speculative: true,
                resume_at,
                ..DiffConfig::multicore(case.cores, 64)
            },
        ]
    }
}

/// Shrinks a diverging case and writes the counterexample pack (if the
/// divergence reproduces from the pack alone).
fn report_divergence(case: &FuzzCase, cfg: &DiffConfig, d: &Divergence, index: u64) {
    eprintln!(
        "DIVERGENCE in case {index} ({}, seed {:#x}, cores {}, weave batch {}{}):\n  {d}",
        case.label,
        case.seed,
        cfg.cores,
        cfg.weave_batch,
        if cfg.speculative { ", speculative" } else { "" }
    );
    eprintln!(
        "  repro: fuzz --seed {:#x} --cases 1 --ops {} --cores {}",
        case.seed,
        case.pack.len_ops(),
        case.cores
    );
    // Shrink against the pack alone (corpus entries carry no events). A
    // candidate reduction can make the stream *invalid* (e.g. dropping
    // a MaskPush but keeping its MaskPop, which both engine and oracle
    // fault on) — a panicking candidate is simply not a reduction, so
    // replays run under catch_unwind with the panic hook silenced.
    let cfg = *cfg;
    let check = |ops: &[califorms_sim::TraceOp]| {
        let pack = TracePack::from_ops(ops.iter().copied());
        std::panic::catch_unwind(|| diff_pack(&pack, &[], &cfg).is_some()).unwrap_or(false)
    };
    let base_ops = case.pack.to_vec();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let reproduces_without_events = check(&base_ops);
    let shrunk = if reproduces_without_events {
        Some(shrink_ops(
            &base_ops,
            cfg.cores,
            check,
            DEFAULT_CHECK_BUDGET,
        ))
    } else {
        None
    };
    std::panic::set_hook(prev_hook);
    let Some(shrunk) = shrunk else {
        // Writing the event-less pack would produce a "counterexample"
        // that replays clean — worse than none. The seed repro line
        // above regenerates the full case, events included.
        eprintln!(
            "  divergence requires the case's mid-run DMA/swap events \
             ({:?}); no standalone counterexample pack — use the seed \
             repro line above",
            case.events
        );
        return;
    };
    let pack = TracePack::from_ops(shrunk.iter().copied());
    let dir = Path::new("target").join("fuzz-failures");
    let path = dir.join(pack_file_name(
        &format!("counterexample-s{:x}-i{index}", case.seed),
        cfg.cores,
    ));
    match write_pack(&path, &pack) {
        Ok(()) => eprintln!(
            "  shrunk to {} ops, written to {}",
            pack.len_ops(),
            path.display()
        ),
        Err(e) => eprintln!("  failed to write counterexample: {e}"),
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some(path) = &args.replay {
        let results = replay_pack_file(path).expect("readable corpus pack");
        let mut ok = true;
        for (cfg, d) in results {
            match d {
                None => println!("{}: {cfg}: agrees with oracle", path.display()),
                Some(d) => {
                    ok = false;
                    println!("{}: {cfg}: DIVERGES: {d}", path.display());
                }
            }
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if let Some(dir) = &args.write_corpus {
        // Alternate single-core and multi-core cases so the corpus
        // exercises both replay stacks.
        for i in 0..args.cases as u64 {
            let cores = if i % 2 == 0 { 1 } else { args.cores };
            let case = generate_case(case_seed(args.seed, i), args.ops, cores);
            let path = dir.join(pack_file_name(
                &format!("fuzz-{}-s{:x}", case.label, case.seed),
                cores,
            ));
            write_pack(&path, &case.pack).expect("writable corpus dir");
            println!("wrote {} ({} ops)", path.display(), case.pack.len_ops());
        }
        return ExitCode::SUCCESS;
    }

    // The campaign: one single-core family and one multi-core family of
    // `--cases` cases each, every multi-core case diffed at weave
    // batches 1 and 64.
    let t0 = std::time::Instant::now();
    let mut packs = 0u64;
    let mut diffs = 0u64;
    let mut failures = 0u32;
    for family_cores in [1usize, args.cores.max(2)] {
        let family_seed = if family_cores == 1 {
            args.seed
        } else {
            args.seed ^ 0x4444
        };
        for i in 0..args.cases as u64 {
            let case = generate_case(case_seed(family_seed, i), args.ops, family_cores);
            packs += 1;
            for cfg in configs_for(&case, args.inject_fault) {
                diffs += 1;
                let events = if cfg.fault.is_some() {
                    &[]
                } else {
                    &case.events[..]
                };
                if let Some(d) = diff_pack(&case.pack, events, &cfg) {
                    report_divergence(&case, &cfg, &d, i);
                    failures += 1;
                    if failures >= 3 {
                        eprintln!("stopping after {failures} divergences");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    println!(
        "fuzz: {packs} packs / {diffs} differential runs in {:.2}s \
         (seed {:#x}, {} ops/case, multicore at {} cores, weave batches 1+64): {}",
        t0.elapsed().as_secs_f64(),
        args.seed,
        args.ops,
        args.cores.max(2),
        if failures == 0 {
            "zero divergences".to_string()
        } else {
            format!("{failures} DIVERGENCES")
        }
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
