//! Workload characterisation: one row per synthetic SPEC benchmark with
//! its simulated baseline behaviour — the sanity table that shows the 19
//! profiles really do span the memory-behaviour space the paper's SPEC
//! selection covers (working sets across L1/L2/L3/DRAM, compute-bound to
//! latency-bound, malloc-light to malloc-intensive).

#![forbid(unsafe_code)]

use califorms_sim::HierarchyConfig;
use califorms_workloads::{fig10_benchmarks, generate, run_workload, WorkloadConfig};

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("baseline characterisation ({ops} steady-state ops, no Califorms)");
    println!();
    println!(
        "{:<11} | {:>8} | {:>7} | {:>5} | {:>9} | {:>9} | {:>9} | {:>8}",
        "benchmark", "WSS", "obj B", "IPC", "L1D miss%", "L2 miss%", "L3 miss%", "DRAM/kop"
    );
    println!("{}", "-".repeat(88));
    for b in fig10_benchmarks() {
        let w = generate(&b, &WorkloadConfig::baseline(ops, 1));
        let stats = run_workload(&w, HierarchyConfig::westmere());
        let kops = (stats.loads + stats.stores).max(1) as f64 / 1000.0;
        println!(
            "{:<11} | {:>7}K | {:>7} | {:>5.2} | {:>8.2}% | {:>8.2}% | {:>8.2}% | {:>8.1}",
            b.name,
            b.natural_wss() / 1024,
            w.natural_object_size,
            stats.ipc(),
            stats.l1d.miss_ratio() * 100.0,
            stats.l2.miss_ratio() * 100.0,
            stats.l3.miss_ratio() * 100.0,
            stats.dram_accesses as f64 / kops,
        );
    }
    println!();
    println!("expected shape: hmmer/namd tiny WSS + high IPC; mcf/xalancbmk large WSS,");
    println!("low IPC, DRAM-bound; lbm/libquantum streaming (prefetcher-friendly).");
}
