//! Tables 4, 5 and 6: the qualitative comparison against prior hardware
//! memory-safety schemes, plus the *executable* detection matrix — the
//! same attack suite run against the REST / ADI / MPX models and
//! Califorms.

#![forbid(unsafe_code)]

use califorms_baselines::comparison::{
    detection_matrix, render_table4, table5, table6, AttackKind, Detection,
};

fn main() {
    println!("=== Table 4 — security comparison ===");
    println!();
    print!("{}", render_table4());
    println!();

    println!("=== Table 5 — performance comparison ===");
    println!();
    for r in table5() {
        println!("{:<17} | metadata: {}", r.proposal, r.metadata_overhead);
        println!(
            "{:<17} |   memory ~ {}; perf ~ {}",
            "", r.memory_overhead_scales_with, r.performance_overhead_scales_with
        );
        println!("{:<17} |   ops: {}", "", r.main_operations);
    }
    println!();

    println!("=== Table 6 — implementation complexity ===");
    println!();
    for r in table6() {
        println!("{:<17} | core: {}", r.proposal, r.core);
        println!("{:<17} | caches: {} | memory: {}", "", r.caches, r.memory);
        println!("{:<17} | software: {}", "", r.software);
    }
    println!();

    println!("=== Executable detection matrix (this repo's models, same attack suite) ===");
    println!();
    println!(
        "{:<12} | {:<22} | {:<22} | {:<22}",
        "scheme", "intra-object overflow", "inter-object overflow", "use-after-free"
    );
    for (scheme, results) in detection_matrix() {
        let get = |attack: AttackKind| match results
            .iter()
            .find(|(a, _)| *a == attack)
            .map(|(_, d)| *d)
        {
            Some(Detection::Detected) => "DETECTED",
            Some(Detection::Missed) => "missed",
            None => "?",
        };
        println!(
            "{:<12} | {:<22} | {:<22} | {:<22}",
            scheme,
            get(AttackKind::IntraObjectOverflow),
            get(AttackKind::InterObjectOverflow),
            get(AttackKind::UseAfterFree)
        );
    }
    println!();
    println!("Califorms is the only scheme catching the intra-object overflow —");
    println!("the paper's headline security claim (byte granularity).");
}
