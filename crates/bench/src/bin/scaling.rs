//! Multi-core scaling study: simulated IPC and **host replay
//! throughput** of the MESI-coherent multicore engine at 1/2/4/8 cores,
//! across the four sharing patterns of `califorms-workloads::multicore`.
//!
//! Two things to read off the table:
//!
//! * *simulated* aggregate IPC grows with cores for low-contention
//!   patterns (shared-table) and stalls for pathological ones
//!   (false-sharing ping-pong);
//! * *host* throughput (trace ops replayed per wall-clock second) shows
//!   the bound-phase parallelism of the engine itself.
//!
//! Usage: `cargo run --release --bin scaling [ops_per_core]`

use califorms_bench::{results_dir, write_json};
use califorms_sim::HierarchyConfig;
use califorms_workloads::{generate_mt, run_mt, MtPattern, MtWorkloadConfig};
use serde::Serialize;
use std::time::Instant;

/// One (pattern, core-count) measurement.
#[derive(Debug, Clone, Serialize)]
struct ScalingRow {
    pattern: String,
    cores: u64,
    sim_ipc: f64,
    sim_cycles: f64,
    host_mops_per_s: f64,
    invalidations: u64,
    upgrades_s_to_m: u64,
    cache_to_cache: u64,
    califormed_transfers: u64,
}

fn main() {
    let ops_per_core = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    let mut rows: Vec<ScalingRow> = Vec::new();
    println!("Multi-core scaling ({ops_per_core} trace ops per core, califormed lines)");
    println!();
    println!(
        "{:<18} | {:>5} | {:>8} | {:>12} | {:>10} | {:>8} | {:>10} | {:>10}",
        "pattern", "cores", "sim IPC", "host Mops/s", "invals", "S→M", "c2c xfers", "calif xfer"
    );
    println!("{}", "-".repeat(100));
    for pattern in MtPattern::all() {
        for &cores in &[1usize, 2, 4, 8] {
            let w = generate_mt(&MtWorkloadConfig {
                pattern,
                cores,
                ops_per_core,
                seed: 7,
                califormed: true,
            });
            let total_ops: usize = w.shards.iter().map(Vec::len).sum();
            let start = Instant::now();
            let stats = run_mt(&w, HierarchyConfig::westmere());
            let elapsed = start.elapsed().as_secs_f64();
            let row = ScalingRow {
                pattern: w.name.to_string(),
                cores: cores as u64,
                sim_ipc: stats.aggregate_ipc(),
                sim_cycles: stats.combined.cycles,
                host_mops_per_s: total_ops as f64 / elapsed / 1e6,
                invalidations: stats.combined.coherence.invalidations,
                upgrades_s_to_m: stats.combined.coherence.upgrades_s_to_m,
                cache_to_cache: stats.combined.coherence.cache_to_cache_transfers,
                califormed_transfers: stats.combined.coherence.califormed_transfers,
            };
            println!(
                "{:<18} | {:>5} | {:>8.3} | {:>12.2} | {:>10} | {:>8} | {:>10} | {:>10}",
                row.pattern,
                row.cores,
                row.sim_ipc,
                row.host_mops_per_s,
                row.invalidations,
                row.upgrades_s_to_m,
                row.cache_to_cache,
                row.califormed_transfers
            );
            rows.push(row);
        }
        println!("{}", "-".repeat(100));
    }

    write_json(results_dir().join("scaling.json"), &rows).expect("write results");
    println!("JSON written to target/experiment-results/scaling.json");
}
