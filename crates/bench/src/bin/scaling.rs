//! Multi-core scaling study: simulated IPC and **host replay
//! throughput** of the MESI-coherent multicore engine across core counts
//! and the five sharing patterns of `califorms-workloads::multicore`.
//!
//! Three things to read off the table:
//!
//! * *simulated* aggregate IPC grows with cores for low-contention
//!   patterns (shared-table) and stalls for pathological ones
//!   (false-sharing ping-pong);
//! * *host* throughput (trace ops replayed per wall-clock second) shows
//!   where the persistent-worker runtime spends its time — the
//!   bound/weave/barrier breakdown and the weave-transaction counters
//!   make a scaling regression diagnosable straight from the JSON;
//! * the `contended` vs total weave-transaction split shows how much of
//!   each pattern's coherence traffic genuinely needs cross-core
//!   arbitration.
//!
//! Usage:
//! `cargo run --release --bin scaling [--smoke] [--cores 1,2,4,8]
//!  [--quantum N] [--adaptive] [ops_per_core]`
//!
//! `--smoke` is the CI shape: fewer ops, 1/2/4 cores. The JSON lands in
//! `target/experiment-results/scaling.json` and is uploaded as a CI
//! artifact.

#![forbid(unsafe_code)]

use califorms_bench::{results_dir, write_json};
use califorms_sim::{HierarchyConfig, QuantumSizing};
use califorms_workloads::{generate_mt, mt_config, run_mt_outcome, MtPattern, MtWorkloadConfig};
use serde::Serialize;
use std::time::Instant;

/// One (pattern, core-count) measurement.
#[derive(Debug, Clone, Serialize)]
struct ScalingRow {
    pattern: String,
    cores: u64,
    /// Host worker threads (the pool spawns one per simulated core).
    threads: u64,
    /// Execution runtime identifier (`pool` = persistent worker pool).
    runtime: String,
    quantum: f64,
    adaptive_quantum: bool,
    sim_ipc: f64,
    sim_cycles: f64,
    host_mops_per_s: f64,
    elapsed_s: f64,
    /// Host wall-clock per phase.
    bound_s: f64,
    weave_s: f64,
    barrier_s: f64,
    /// Deterministic runtime counters.
    quanta: u64,
    weave_turns: u64,
    weave_transactions: u64,
    batched_transactions: u64,
    contended_transactions: u64,
    /// Coherence counters.
    invalidations: u64,
    upgrades_s_to_m: u64,
    cache_to_cache: u64,
    califormed_transfers: u64,
}

/// Last free-standing numeric argument, skipping flags and (by
/// position) the values they consume.
fn positional_number(args: &[String]) -> Option<usize> {
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--cores" || a == "--quantum" {
            i += 2; // skip the flag and its value
            continue;
        }
        if !a.starts_with("--") {
            if let Ok(v) = a.parse::<usize>() {
                out = Some(v);
            }
        }
        i += 1;
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let adaptive = args.iter().any(|a| a == "--adaptive");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let core_counts: Vec<usize> = flag_value("--cores")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--cores takes e.g. 1,2,4,8"))
                .collect()
        })
        .unwrap_or_else(|| {
            if smoke {
                vec![1, 2, 4]
            } else {
                vec![1, 2, 4, 8]
            }
        });
    let quantum: Option<f64> =
        flag_value("--quantum").map(|v| v.parse().expect("--quantum takes a cycle count"));
    let ops_per_core: usize =
        positional_number(&args).unwrap_or(if smoke { 20_000 } else { 50_000 });

    let mut rows: Vec<ScalingRow> = Vec::new();
    println!("Multi-core scaling ({ops_per_core} trace ops per core, califormed lines)");
    println!();
    println!(
        "{:<18} | {:>5} | {:>8} | {:>12} | {:>7} | {:>7} | {:>7} | {:>9} | {:>9} | {:>10}",
        "pattern",
        "cores",
        "sim IPC",
        "host Mops/s",
        "bound s",
        "weave s",
        "barr s",
        "weave txn",
        "contended",
        "c2c xfers"
    );
    println!("{}", "-".repeat(120));
    for pattern in MtPattern::all() {
        for &cores in &core_counts {
            let w = generate_mt(&MtWorkloadConfig {
                pattern,
                cores,
                ops_per_core,
                seed: 7,
                califormed: true,
            });
            let total_ops: usize = w.shards.iter().map(Vec::len).sum();
            let mut cfg = mt_config(&w, HierarchyConfig::westmere());
            if let Some(q) = quantum {
                cfg = cfg.with_quantum(q);
            }
            if adaptive {
                cfg = cfg.with_adaptive_quantum();
            }
            let start = Instant::now();
            let out = run_mt_outcome(&w, cfg);
            let elapsed = start.elapsed().as_secs_f64();
            let stats = &out.stats;
            let row = ScalingRow {
                pattern: w.name.to_string(),
                cores: cores as u64,
                threads: cores as u64,
                runtime: "pool".to_string(),
                quantum: cfg.quantum,
                adaptive_quantum: matches!(
                    cfg.runtime.quantum_sizing,
                    QuantumSizing::Adaptive { .. }
                ),
                sim_ipc: stats.aggregate_ipc(),
                sim_cycles: stats.combined.cycles,
                host_mops_per_s: total_ops as f64 / elapsed / 1e6,
                elapsed_s: elapsed,
                bound_s: out.timing.bound_s,
                weave_s: out.timing.weave_s,
                barrier_s: out.timing.barrier_s,
                quanta: stats.runtime.quanta,
                weave_turns: stats.runtime.weave_turns,
                weave_transactions: stats.runtime.weave_transactions,
                batched_transactions: stats.runtime.batched_transactions,
                contended_transactions: stats.runtime.contended_transactions,
                invalidations: stats.combined.coherence.invalidations,
                upgrades_s_to_m: stats.combined.coherence.upgrades_s_to_m,
                cache_to_cache: stats.combined.coherence.cache_to_cache_transfers,
                califormed_transfers: stats.combined.coherence.califormed_transfers,
            };
            println!(
                "{:<18} | {:>5} | {:>8.3} | {:>12.2} | {:>7.3} | {:>7.3} | {:>7.3} | {:>9} | {:>9} | {:>10}",
                row.pattern,
                row.cores,
                row.sim_ipc,
                row.host_mops_per_s,
                row.bound_s,
                row.weave_s,
                row.barrier_s,
                row.weave_transactions,
                row.contended_transactions,
                row.cache_to_cache
            );
            rows.push(row);
        }
        println!("{}", "-".repeat(120));
    }

    write_json(results_dir().join("scaling.json"), &rows).expect("write results");
    println!("JSON written to target/experiment-results/scaling.json");
}
