//! Figure 12: slowdown of the intelligent insertion policy (random spans
//! around arrays and pointers only), with and without `CFORM`s.
//!
//! Paper reference: ~0.2 % average without `CFORM`s, 1.5–2.0 % with; only
//! gobmk (16.1 %) and perlbench (7.2 %) exceed 5 %.

#![forbid(unsafe_code)]

use califorms_bench::{
    fig12_series, policy_figure, render_policy_rows, results_dir, series_average, write_json,
    DEFAULT_STEADY_OPS,
};

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEADY_OPS);
    let series = fig12_series();
    let rows = policy_figure(&series, ops);
    print!(
        "{}",
        render_policy_rows(
            &format!("Figure 12 — intelligent policy ({ops} ops/run)"),
            &rows
        )
    );
    println!();
    println!("paper averages: no-CFORM ~0.2% | with CFORM ~1.5-2.0%");
    println!(
        "measured:       1-7B {:.2}% | 1-7B CFORM {:.2}%",
        series_average(&rows, "1-7B") * 100.0,
        series_average(&rows, "1-7B CFORM") * 100.0,
    );
    write_json(results_dir().join("fig12.json"), &rows).expect("write results");
    println!("JSON written to target/experiment-results/fig12.json");
}
