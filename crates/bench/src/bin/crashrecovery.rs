//! Crash-tolerance benchmark and end-to-end recovery smoke: measures
//! the checkpoint machinery (DESIGN.md §14) and proves the
//! kill→resume→verify loop on a real process.
//!
//! What runs:
//!
//! 1. **Overhead sweep** — the workload replays plain and checkpointed
//!    at each configured interval; the JSON records checkpoint count,
//!    size, amortized write latency, the restore latency of the last
//!    checkpoint, and the checkpointing overhead in percent.
//! 2. **In-process kill→resume→verify** — a worker is killed by the
//!    fault-injection hook mid-run; the retry-with-backoff driver falls
//!    back to the latest checkpoint and the recovered outcome must be
//!    bit-identical to the straight-through run.
//! 3. **Stall→watchdog** — a stalled worker must surface as a typed
//!    `RunError::Stall` within the watchdog deadline, never a hang.
//! 4. **Corruption campaign** — truncated and bit-flipped checkpoints
//!    must fail typed (`RunError::Checkpoint`), never panic.
//! 5. **Child-process `kill -9`** (`--smoke`) — the bin re-spawns
//!    itself (`--child`), the child streams checkpoints to disk
//!    (atomic rename), the parent SIGKILLs it mid-run, resumes from the
//!    newest on-disk checkpoint (falling back to older ones if the
//!    newest fails typed) and verifies bit-identity with the
//!    straight-through run.
//!
//! Usage:
//! `cargo run --release --bin crashrecovery [--smoke] [--cores N]
//!  [--ops N]`
//!
//! `--smoke` is the CI shape: a small workload, a short interval, and
//! the child-process kill. The JSON lands in
//! `target/experiment-results/BENCH_recovery.json`.

#![forbid(unsafe_code)]

use califorms_bench::{results_dir, write_json};
use califorms_oracle::diff::{run_fault_campaign, DiffConfig, FaultCampaign};
use califorms_sim::{
    FaultPlan, MulticoreConfig, MulticoreEngine, MulticoreOutcome, RunError, TraceOp, TracePack,
};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// A short quantum so even the smoke workload crosses thousands of
/// boundaries — interval sweeps need quanta, not cycles.
const QUANTUM: f64 = 1_000.0;

struct Args {
    smoke: bool,
    cores: usize,
    ops: usize,
    /// Child mode: stream checkpoints into this directory until killed.
    child: Option<PathBuf>,
    child_interval: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        cores: 4,
        ops: 2_000_000,
        child: None,
        child_interval: 50,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--cores" => args.cores = value("--cores").parse().expect("--cores N"),
            "--ops" => args.ops = value("--ops").parse().expect("--ops N"),
            "--child" => args.child = Some(PathBuf::from(value("--child"))),
            "--child-interval" => {
                args.child_interval = value("--child-interval").parse().expect("N")
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if args.smoke {
        args.ops = 30_000;
    }
    args
}

/// The deterministic recovery workload: a mix of exec, private and
/// shared accesses and CFORMs over a few regions, sized by `ops`. Same
/// `ops` → same pack, in the parent and the re-spawned child.
fn make_pack(ops: usize) -> TracePack {
    let mut out = Vec::with_capacity(ops);
    let mut x: u64 = 0x5DEE_CE66_D1CE_CAFE;
    while out.len() < ops {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = ((x >> 33) % 1024) * 8;
        match x % 11 {
            0..=3 => out.push(TraceOp::Exec((x >> 7) as u32 % 390 + 10)),
            4 | 5 => out.push(TraceOp::Load { addr, size: 8 }),
            6 | 7 => out.push(TraceOp::Store { addr, size: 8 }),
            8 => out.push(TraceOp::Load {
                addr: 0x40_000 + addr,
                size: 8,
            }),
            9 => out.push(TraceOp::Store {
                addr: 0x80_000 + addr,
                size: 8,
            }),
            _ => out.push(TraceOp::Cform {
                line_addr: 0x100_000 + (addr / 64) * 64,
                attrs: 1,
                mask: 1,
            }),
        }
    }
    TracePack::from_ops(out)
}

fn config(cores: usize) -> MulticoreConfig {
    MulticoreConfig::westmere(cores).with_quantum(QUANTUM)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Runs `f` with the panic hook silenced: injected worker kills panic
/// by design (the engine catches them and returns typed errors), and
/// their backtraces would drown the real output.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[derive(Debug, Serialize)]
struct IntervalRow {
    interval_quanta: u64,
    quanta: u64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    plain_ms: f64,
    checkpointed_ms: f64,
    /// Checkpointing overhead over the plain run, percent.
    overhead_pct: f64,
    /// Amortized capture+copy cost per checkpoint (overhead / count).
    write_latency_ms_avg: f64,
    /// `try_resume_pack` of the **last** checkpoint — restore plus the
    /// short remaining tail, an upper bound on restore cost.
    restore_latency_ms: f64,
}

#[derive(Debug, Serialize)]
struct KillResumeRow {
    kill_quantum: u64,
    retries_used: u32,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct StallRow {
    typed: bool,
    core: usize,
    phase: String,
    elapsed_ms: f64,
}

#[derive(Debug, Serialize)]
struct CampaignRow {
    case: String,
    ok: bool,
    detail: String,
}

#[derive(Debug, Serialize)]
struct ChildKillRow {
    checkpoints_on_disk: u64,
    /// Checkpoints the resume skipped before one restored cleanly
    /// (non-zero when the kill raced a file write).
    fallbacks: u64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct RecoveryReport {
    bench: &'static str,
    smoke: bool,
    cores: u64,
    ops: u64,
    quantum: f64,
    intervals: Vec<IntervalRow>,
    kill_resume: KillResumeRow,
    stall: StallRow,
    campaign: Vec<CampaignRow>,
    child_kill: Option<ChildKillRow>,
}

/// The retry-with-backoff recovery driver: runs the checkpointed
/// replay, and on a typed failure falls back to the latest checkpoint
/// with exponentially growing backoff. Every attempt keeps
/// checkpointing, so repeated failures still make forward progress.
fn run_with_recovery(
    pack: &TracePack,
    first_engine: impl FnOnce() -> MulticoreEngine,
    interval: u64,
    max_retries: u32,
) -> Result<(MulticoreOutcome, u32), RunError> {
    let mut latest: Option<Vec<u8>> = None;
    let mut backoff = Duration::from_millis(10);
    let mut attempt = 0u32;
    let mut first = Some(first_engine);
    loop {
        let mut seen: Option<Vec<u8>> = None;
        let result = match (&latest, first.take()) {
            (None, Some(make)) => {
                make().try_run_pack_checkpointed_with(pack, interval, |b| seen = Some(b))
            }
            (Some(bytes), _) => {
                MulticoreEngine::try_resume_pack_checkpointed_with(pack, bytes, interval, |b| {
                    seen = Some(b)
                })
            }
            (None, None) => {
                return Err(RunError::Checkpoint(
                    califorms_sim::CheckpointError::Truncated,
                ))
            }
        };
        if seen.is_some() {
            latest = seen;
        }
        match result {
            Ok(outcome) => return Ok((outcome, attempt)),
            Err(err) if attempt < max_retries && latest.is_some() => {
                eprintln!(
                    "crashrecovery: attempt {attempt} failed ({err}); \
                     backing off {backoff:?}, resuming from the last checkpoint"
                );
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
                attempt += 1;
            }
            Err(err) => return Err(err),
        }
    }
}

/// Child mode: stream checkpoints to `dir` (write + atomic rename) with
/// a short pause after each, widening the window in which the parent's
/// SIGKILL lands mid-run.
fn child_run(dir: &Path, pack: &TracePack, cores: usize, interval: u64) {
    std::fs::create_dir_all(dir).expect("checkpoint dir");
    let mut n = 0u64;
    let _ = MulticoreEngine::new(config(cores)).try_run_pack_checkpointed_with(
        pack,
        interval,
        |bytes| {
            let tmp = dir.join(format!(".tmp-{n}"));
            std::fs::write(&tmp, &bytes).expect("writable checkpoint dir");
            std::fs::rename(&tmp, dir.join(format!("ckpt-{n:06}.bin"))).expect("rename");
            n += 1;
            std::thread::sleep(Duration::from_millis(25));
        },
    );
    // Completing before the kill lands is fine: the parent still
    // resumes from the last on-disk checkpoint and verifies.
}

/// Parent side of the child-process kill: spawn ourselves in `--child`
/// mode, SIGKILL the child once checkpoints exist, resume from the
/// newest on-disk checkpoint (typed failures fall back to older ones)
/// and verify bit-identity with `reference`.
fn child_kill_smoke(pack: &TracePack, reference: &MulticoreOutcome, args: &Args) -> ChildKillRow {
    let dir = results_dir().join("crashrecovery-ckpts");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("checkpoint dir");

    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .arg("--child")
        .arg(&dir)
        .arg("--cores")
        .arg(args.cores.to_string())
        .arg("--ops")
        .arg(args.ops.to_string())
        .arg("--child-interval")
        .arg(args.child_interval.to_string())
        .spawn()
        .expect("spawn child");

    // Wait until the child has at least two checkpoints on disk, then
    // deliver the real SIGKILL (`kill -9`).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if checkpoint_files(&dir).len() >= 2 {
            break;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child produced no checkpoints within 60s");
        }
        if let Ok(Some(status)) = child.try_wait() {
            // Short workloads can finish before the kill; the resume
            // check below still runs against what's on disk.
            assert!(status.success(), "child failed on its own: {status}");
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill(); // SIGKILL — the unclean death we recover from
    let _ = child.wait();

    let files = checkpoint_files(&dir);
    let checkpoints_on_disk = files.len() as u64;
    let mut fallbacks = 0u64;
    for path in files.iter().rev() {
        let bytes = std::fs::read(path).expect("readable checkpoint");
        match MulticoreEngine::try_resume_pack(pack, &bytes) {
            Ok(out) => {
                return ChildKillRow {
                    checkpoints_on_disk,
                    fallbacks,
                    bit_identical: out.stats == reference.stats
                        && out.exceptions == reference.exceptions,
                };
            }
            Err(err) => {
                // Typed, never a panic — fall back to the previous one.
                eprintln!(
                    "crashrecovery: {} failed typed ({err}); falling back",
                    path.display()
                );
                fallbacks += 1;
            }
        }
    }
    panic!("no on-disk checkpoint restored cleanly");
}

fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("ckpt-"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn main() -> ExitCode {
    let args = parse_args();
    let pack = make_pack(args.ops);

    if let Some(dir) = &args.child {
        child_run(dir, &pack, args.cores, args.child_interval);
        return ExitCode::SUCCESS;
    }

    // Straight-through reference (also the plain-run timing baseline).
    let t0 = Instant::now();
    let reference = MulticoreEngine::new(config(args.cores))
        .try_run_pack(&pack)
        .expect("reference run");
    let plain = t0.elapsed();
    let quanta = reference.stats.runtime.quanta;
    println!(
        "crashrecovery: workload {} ops, {} cores, {quanta} quanta, plain run {:.1} ms",
        args.ops,
        args.cores,
        ms(plain)
    );

    // 1. Overhead sweep.
    let intervals: &[u64] = if args.smoke { &[100] } else { &[1_000, 10_000] };
    let mut rows = Vec::new();
    for &interval in intervals {
        let t = Instant::now();
        let (out, checkpoints) = MulticoreEngine::new(config(args.cores))
            .try_run_pack_checkpointed(&pack, interval)
            .expect("checkpointed run");
        let checkpointed = t.elapsed();
        assert_eq!(
            out.stats, reference.stats,
            "checkpoint capture must not perturb the run"
        );
        assert!(
            !checkpoints.is_empty(),
            "workload too short for interval {interval}"
        );
        let last = checkpoints.last().expect("non-empty");
        let t = Instant::now();
        let resumed = MulticoreEngine::try_resume_pack(&pack, last).expect("resume");
        let restore = t.elapsed();
        assert_eq!(resumed.stats, reference.stats, "resume bit-identity");
        let overhead = checkpointed.saturating_sub(plain);
        rows.push(IntervalRow {
            interval_quanta: interval,
            quanta,
            checkpoints: checkpoints.len() as u64,
            checkpoint_bytes: last.len() as u64,
            plain_ms: ms(plain),
            checkpointed_ms: ms(checkpointed),
            overhead_pct: 100.0 * overhead.as_secs_f64() / plain.as_secs_f64().max(1e-9),
            write_latency_ms_avg: ms(overhead) / checkpoints.len() as f64,
            restore_latency_ms: ms(restore),
        });
        println!(
            "  interval {interval}: {} checkpoints of {} bytes, overhead {:.1}%, restore {:.2} ms",
            checkpoints.len(),
            last.len(),
            rows.last().expect("just pushed").overhead_pct,
            ms(restore)
        );
    }

    // 2. In-process kill → retry-with-backoff resume → verify. The
    // interval is tied to the kill point so at least one checkpoint
    // exists to fall back to when the worker dies.
    let kill_quantum = quanta / 2;
    let kr_interval = (kill_quantum / 2).max(1);
    let cores = args.cores;
    let (recovered, retries_used) = with_quiet_panics(|| {
        run_with_recovery(
            &pack,
            || {
                MulticoreEngine::new(config(cores).with_fault(FaultPlan {
                    kill_at: Some((cores - 1, kill_quantum)),
                    ..FaultPlan::default()
                }))
            },
            kr_interval,
            3,
        )
    })
    .expect("recovery driver");
    let kill_resume = KillResumeRow {
        kill_quantum,
        retries_used,
        bit_identical: recovered.stats == reference.stats
            && recovered.exceptions == reference.exceptions,
    };
    assert!(kill_resume.bit_identical, "recovered run diverged");
    assert!(retries_used >= 1, "the kill must actually have fired");
    println!("  kill at quantum {kill_quantum}: recovered in {retries_used} retry, bit-identical");

    // 3. Stall → watchdog.
    let t = Instant::now();
    let stall_err = MulticoreEngine::new(
        config(args.cores)
            .with_watchdog(Some(Duration::from_millis(50)))
            .with_fault(FaultPlan {
                stall_at: Some((0, kill_quantum, 400)),
                ..FaultPlan::default()
            }),
    )
    .try_run_pack(&pack);
    let stall_elapsed = t.elapsed();
    let stall = match stall_err {
        Err(RunError::Stall(s)) => StallRow {
            typed: true,
            core: s.core,
            phase: s.phase.to_string(),
            elapsed_ms: ms(stall_elapsed),
        },
        other => panic!("stall did not surface typed: {other:?}"),
    };
    println!(
        "  stall: typed WorkerStall on core {} in {:.0} ms",
        stall.core, stall.elapsed_ms
    );

    // 4. Corruption campaign: truncations and bit flips must fail
    // typed. A small pack suffices — the campaign checks error paths,
    // not throughput — and keeps the interval-1 checkpointed runs
    // inside `run_fault_campaign` cheap.
    let campaign_pack = make_pack(args.ops.min(30_000));
    let cfg = DiffConfig::multicore(args.cores.max(2), 64);
    let mut campaign = Vec::new();
    for case in [
        FaultCampaign::KillWorker {
            core: 1,
            quantum: 0,
        },
        FaultCampaign::StallWorker { core: 0 },
        FaultCampaign::TruncateCheckpoint { keep: 0 },
        FaultCampaign::TruncateCheckpoint { keep: 64 },
        FaultCampaign::FlipCheckpointByte { at: 5 },
        FaultCampaign::FlipCheckpointByte { at: 997 },
    ] {
        let result = with_quiet_panics(|| run_fault_campaign(&campaign_pack, case, &cfg));
        let ok = result.is_ok();
        let detail = result.unwrap_or_else(|e| e);
        if !ok {
            eprintln!("  campaign FAILED: {case:?}: {detail}");
        }
        campaign.push(CampaignRow {
            case: format!("{case:?}"),
            ok,
            detail,
        });
    }
    let campaign_ok = campaign.iter().all(|c| c.ok);
    println!(
        "  campaign: {}/{} cases surfaced typed",
        campaign.iter().filter(|c| c.ok).count(),
        campaign.len()
    );

    // 5. Child-process kill -9 (smoke only — spawns a real process).
    let child_kill = args
        .smoke
        .then(|| child_kill_smoke(&pack, &reference, &args));
    if let Some(ck) = &child_kill {
        assert!(ck.bit_identical, "child-kill recovery diverged");
        println!(
            "  child kill -9: {} checkpoints on disk, {} fallbacks, bit-identical resume",
            ck.checkpoints_on_disk, ck.fallbacks
        );
    }

    let report = RecoveryReport {
        bench: "crashrecovery",
        smoke: args.smoke,
        cores: args.cores as u64,
        ops: args.ops as u64,
        quantum: QUANTUM,
        intervals: rows,
        kill_resume,
        stall,
        campaign,
        child_kill,
    };
    let path = results_dir().join("BENCH_recovery.json");
    write_json(&path, &report).expect("write BENCH_recovery.json");
    println!("crashrecovery: wrote {}", path.display());

    if campaign_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
