//! **Frozen pre-overhaul replay path** — the measurement baseline for the
//! `replay` bench bin and the `BENCH_replay.json` perf trajectory.
//!
//! This module is a faithful copy of the simulator's replay path as it
//! stood *before* the trace-pack/hot-path overhaul (PR 3): a boxed
//! iterator chain feeding per-op calls that
//!
//! * allocate a fresh `Vec` per synthesized store payload,
//! * allocate a `Vec` per load for the returned bytes (twice: once in
//!   the line checker, once in the hierarchy result),
//! * check security bytes with per-byte loops instead of one AND against
//!   the bit vector, and
//! * keep true-LRU by rotating each cache set (`Vec::remove` + `insert`
//!   of line-sized entries) on every access.
//!
//! **Do not optimise this code** — its entire purpose is to stay
//! identical to the pre-overhaul hot path so speedups reported in
//! `BENCH_replay.json` measure the overhaul, not drift in the baseline.
//! Semantics (latencies, stats, exceptions) are unchanged between the
//! two paths; the `replay` bin asserts bit-identical outcomes before
//! reporting throughput.

use califorms_core::{
    fill, spill, AccessKind, CaliformsException, CformInstruction, CoreError, ExceptionKind,
    ExceptionMask, L1Line, L2Line,
};
use califorms_sim::engine::store_pattern;
use califorms_sim::hierarchy::HierarchyConfig;
use califorms_sim::stats::{CacheStats, SimStats};
use califorms_sim::{line_base, line_offset, Engine, TraceOp, LINE_BYTES};
use std::collections::HashMap;

// --- pre-overhaul set-associative cache (rotation LRU) ----------------

struct LegacyEviction<V> {
    line_addr: u64,
    value: V,
    dirty: bool,
}

struct LegacyEntry<V> {
    tag: u64,
    dirty: bool,
    value: V,
}

/// The pre-overhaul cache: each set kept sorted by recency, a hit
/// rotates the entry to the front.
struct LegacyCache<V> {
    sets: Vec<Vec<LegacyEntry<V>>>,
    ways: usize,
    stats: CacheStats,
}

impl<V> LegacyCache<V> {
    fn new(size_bytes: usize, ways: usize) -> Self {
        let line = LINE_BYTES as usize;
        assert_eq!(size_bytes % (ways * line), 0);
        let set_count = size_bytes / (ways * line);
        assert!(set_count.is_power_of_two());
        Self {
            sets: (0..set_count).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            stats: CacheStats::default(),
        }
    }

    fn index(&self, line_addr: u64) -> (usize, u64) {
        let line_no = line_addr / LINE_BYTES;
        let set = (line_no as usize) & (self.sets.len() - 1);
        let tag = line_no / self.sets.len() as u64;
        (set, tag)
    }

    fn access(&mut self, line_addr: u64) -> Option<&mut V> {
        let (set_idx, tag) = self.index(line_addr);
        let set = &mut self.sets[set_idx];
        match set.iter().position(|e| e.tag == tag) {
            Some(pos) => {
                self.stats.hits += 1;
                let entry = set.remove(pos);
                set.insert(0, entry);
                Some(&mut set[0].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn access_uncounted(&mut self, line_addr: u64) -> Option<&mut V> {
        let (set_idx, tag) = self.index(line_addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|e| e.tag == tag)?;
        let entry = set.remove(pos);
        set.insert(0, entry);
        Some(&mut set[0].value)
    }

    fn mark_dirty(&mut self, line_addr: u64) {
        let (set_idx, tag) = self.index(line_addr);
        if let Some(e) = self.sets[set_idx].iter_mut().find(|e| e.tag == tag) {
            e.dirty = true;
        }
    }

    fn insert(&mut self, line_addr: u64, value: V, dirty: bool) -> Option<LegacyEviction<V>> {
        let (set_idx, tag) = self.index(line_addr);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.tag == tag) {
            let mut entry = set.remove(pos);
            entry.value = value;
            entry.dirty = entry.dirty || dirty;
            set.insert(0, entry);
            return None;
        }
        let victim = if set.len() == ways {
            let victim = set.pop().expect("full set has a tail");
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            let line_no = victim.tag * self.sets.len() as u64 + set_idx as u64;
            Some(LegacyEviction {
                line_addr: line_no * LINE_BYTES,
                value: victim.value,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        self.sets[set_idx].insert(0, LegacyEntry { tag, dirty, value });
        victim
    }

    fn invalidate(&mut self, line_addr: u64) -> Option<(V, bool)> {
        let (set_idx, tag) = self.index(line_addr);
        let set = &mut self.sets[set_idx];
        set.iter().position(|e| e.tag == tag).map(|pos| {
            let e = set.remove(pos);
            (e.value, e.dirty)
        })
    }
}

// --- pre-overhaul per-byte line access --------------------------------

struct LegacyLoadResult {
    data: Vec<u8>,
    violating_bytes: u64,
}

/// The pre-overhaul `L1Line::load`: per-byte security check, per-byte
/// push into a fresh `Vec`.
fn legacy_line_load(l1: &L1Line, offset: usize, len: usize) -> LegacyLoadResult {
    let mut violating = 0u64;
    let mut data = Vec::with_capacity(len);
    for i in 0..len {
        let idx = offset + i;
        if l1.line().is_security_byte(idx) {
            violating |= 1 << i;
            data.push(0);
        } else {
            data.push(l1.line().read_byte(idx));
        }
    }
    LegacyLoadResult {
        data,
        violating_bytes: violating,
    }
}

/// The pre-overhaul `L1Line::store`: per-byte scan, per-byte write.
fn legacy_line_store(l1: &mut L1Line, offset: usize, bytes: &[u8]) -> Result<(), CoreError> {
    if let Some(bad) = (offset..offset + bytes.len()).find(|&i| l1.line().is_security_byte(i)) {
        return Err(CoreError::StoreToSecurityByte { index: bad });
    }
    for (i, &b) in bytes.iter().enumerate() {
        l1.line_mut()
            .write_byte(offset + i, b)
            .expect("checked above: no security bytes in range");
    }
    Ok(())
}

// --- pre-overhaul hierarchy -------------------------------------------

struct LegacyResult {
    latency: u32,
    exception: Option<CaliformsException>,
}

/// The pre-overhaul hierarchy: same geometry, latencies and conversion
/// hooks as `califorms_sim::Hierarchy`, with the pre-overhaul access
/// machinery (rotation-LRU caches, per-byte checks, allocating loads).
pub struct LegacyHierarchy {
    cfg: HierarchyConfig,
    l1d: LegacyCache<L1Line>,
    l2: LegacyCache<L2Line>,
    l3: LegacyCache<L2Line>,
    dram: HashMap<u64, L2Line>,
    dram_accesses: u64,
    spills: u64,
    fills: u64,
    prefetch_hits: u64,
    streams: [u64; 4],
    stream_cursor: usize,
}

impl LegacyHierarchy {
    fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1d: LegacyCache::new(cfg.l1d_size, cfg.l1d_ways),
            l2: LegacyCache::new(cfg.l2_size, cfg.l2_ways),
            l3: LegacyCache::new(cfg.l3_size, cfg.l3_ways),
            dram: HashMap::new(),
            dram_accesses: 0,
            spills: 0,
            fills: 0,
            prefetch_hits: 0,
            streams: [u64::MAX; 4],
            stream_cursor: 0,
            cfg,
        }
    }

    fn insert_l3(&mut self, line_addr: u64, line: L2Line, dirty: bool) {
        if let Some(ev) = self.l3.insert(line_addr, line, dirty) {
            if ev.dirty {
                self.dram.insert(ev.line_addr, ev.value);
            }
        }
    }

    fn insert_l2(&mut self, line_addr: u64, line: L2Line, dirty: bool) {
        if let Some(ev) = self.l2.insert(line_addr, line, dirty) {
            if ev.dirty {
                self.insert_l3(ev.line_addr, ev.value, true);
            }
        }
    }

    fn fetch_shared(&mut self, line_addr: u64) -> (L2Line, u32) {
        if let Some(line) = self.l2.access(line_addr) {
            return (*line, self.cfg.l2_latency + self.cfg.extra_l2_latency);
        }
        let l2_part = self.cfg.l2_latency + self.cfg.extra_l2_latency;
        if let Some(line) = self.l3.access(line_addr) {
            let line = *line;
            let latency = l2_part + self.cfg.l3_latency + self.cfg.extra_l3_latency;
            self.insert_l2(line_addr, line, false);
            return (line, latency);
        }
        let l3_part = self.cfg.l3_latency + self.cfg.extra_l3_latency;
        self.dram_accesses += 1;
        let line = self
            .dram
            .get(&line_addr)
            .copied()
            .unwrap_or(L2Line::plain([0; 64]));
        self.insert_l3(line_addr, line, false);
        self.insert_l2(line_addr, line, false);
        (line, l2_part + l3_part + self.cfg.dram_latency)
    }

    fn stream_hit(&mut self, line_addr: u64) -> bool {
        for s in &mut self.streams {
            if line_addr == s.wrapping_add(LINE_BYTES) {
                *s = line_addr;
                return true;
            }
        }
        self.streams[self.stream_cursor] = line_addr;
        self.stream_cursor = (self.stream_cursor + 1) % self.streams.len();
        false
    }

    fn ensure_l1(&mut self, line_addr: u64) -> u32 {
        if self.l1d.access(line_addr).is_some() {
            return 0;
        }
        let prefetched = self.cfg.stream_prefetcher && self.stream_hit(line_addr);
        let (l2line, extra) = self.fetch_shared(line_addr);
        let extra = if prefetched {
            self.prefetch_hits += 1;
            extra.min(self.cfg.prefetch_residual)
        } else {
            extra
        };
        if l2line.califormed {
            self.fills += 1;
        }
        let l1line = fill(&l2line).expect("hierarchy lines are well-formed");
        if let Some(ev) = self.l1d.insert(line_addr, l1line, false) {
            if ev.dirty {
                let spilled = spill(&ev.value).expect("canonical lines always spill");
                if spilled.califormed {
                    self.spills += 1;
                }
                self.insert_l2(ev.line_addr, spilled, true);
            }
        }
        extra
    }

    fn l1_line_mut(&mut self, line_addr: u64) -> &mut L1Line {
        self.l1d
            .access_uncounted(line_addr)
            .expect("line was just ensured resident")
    }

    /// The pre-overhaul load: splits at line boundaries, per-byte checks,
    /// and materialises the loaded bytes in a fresh `Vec` (then discards
    /// them — the engine never looked at the data).
    fn load(&mut self, addr: u64, len: usize, pc: u64) -> LegacyResult {
        let mut latency = 0u32;
        let mut data = Vec::with_capacity(len);
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_l1(line_addr);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let l1 = self.l1_line_mut(line_addr);
            let r = legacy_line_load(l1, offset, chunk);
            data.extend_from_slice(&r.data);
            if r.violating_bytes != 0 && exception.is_none() {
                let first = u64::from(r.violating_bytes.trailing_zeros());
                exception = Some(CaliformsException {
                    fault_addr: cur + first,
                    access: AccessKind::Load,
                    kind: ExceptionKind::SecurityByteAccess,
                    pc,
                });
            }
            cur += chunk as u64;
        }
        std::hint::black_box(&data);
        LegacyResult { latency, exception }
    }

    fn store(&mut self, addr: u64, bytes: &[u8], pc: u64) -> LegacyResult {
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + bytes.len() as u64;
        let mut consumed = 0usize;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_l1(line_addr);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let l1 = self.l1_line_mut(line_addr);
            match legacy_line_store(l1, offset, &bytes[consumed..consumed + chunk]) {
                Ok(()) => self.l1d.mark_dirty(line_addr),
                Err(CoreError::StoreToSecurityByte { index }) => {
                    if exception.is_none() {
                        exception = Some(CaliformsException {
                            fault_addr: line_addr + index as u64,
                            access: AccessKind::Store,
                            kind: ExceptionKind::SecurityByteAccess,
                            pc,
                        });
                    }
                }
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            }
            cur += chunk as u64;
            consumed += chunk;
        }
        LegacyResult { latency, exception }
    }

    fn kmap_exception(e: CoreError, line_addr: u64, pc: u64) -> CaliformsException {
        let (kind, index) = match e {
            CoreError::CformSetOnSecurityByte { index } => (ExceptionKind::CformDoubleSet, index),
            CoreError::CformUnsetOnNormalByte { index } => (ExceptionKind::CformUnsetNormal, index),
            other => unreachable!("CFORM faults are K-map faults: {other}"),
        };
        CaliformsException {
            fault_addr: line_addr + index as u64,
            access: AccessKind::Cform,
            kind,
            pc,
        }
    }

    fn cform(&mut self, insn: &CformInstruction, pc: u64) -> LegacyResult {
        let extra = self.ensure_l1(insn.line_addr);
        let latency = self.cfg.l1d_latency + extra;
        let l1 = self.l1_line_mut(insn.line_addr);
        let exception = match insn.execute(l1.line_mut()) {
            Ok(_) => {
                self.l1d.mark_dirty(insn.line_addr);
                None
            }
            Err(e) => Some(Self::kmap_exception(e, insn.line_addr, pc)),
        };
        LegacyResult { latency, exception }
    }

    fn cform_nt(&mut self, insn: &CformInstruction, pc: u64) -> LegacyResult {
        if let Some((l1line, dirty)) = self.l1d.invalidate(insn.line_addr) {
            if dirty {
                let spilled = spill(&l1line).expect("canonical lines always spill");
                if spilled.califormed {
                    self.spills += 1;
                }
                self.insert_l2(insn.line_addr, spilled, true);
            }
        }
        let (l2line, extra) = self.fetch_shared(insn.line_addr);
        let latency = self.cfg.l1d_latency + extra;
        let mut l1line = fill(&l2line).expect("hierarchy lines are well-formed");
        let exception = match insn.execute(l1line.line_mut()) {
            Ok(_) => {
                let spilled = spill(&l1line).expect("canonical lines always spill");
                self.insert_l2(insn.line_addr, spilled, true);
                None
            }
            Err(e) => Some(Self::kmap_exception(e, insn.line_addr, pc)),
        };
        LegacyResult { latency, exception }
    }

    fn export_stats(&self, stats: &mut SimStats) {
        stats.l1d = self.l1d.stats;
        stats.l2 = self.l2.stats;
        stats.l3 = self.l3.stats;
        stats.dram_accesses = self.dram_accesses;
        stats.spills = self.spills;
        stats.fills = self.fills;
    }
}

// --- pre-overhaul engine loop -----------------------------------------

/// Replays a trace through the frozen pre-overhaul path: a boxed
/// iterator feeding the legacy hierarchy, with the pre-overhaul engine's
/// cycle accounting, exception masking, and per-store `Vec` allocation.
/// Returns the same `(stats, exceptions)` the current engine produces —
/// the `replay` bin asserts they are bit-identical before reporting.
pub fn run_legacy(
    trace: Box<dyn Iterator<Item = TraceOp> + '_>,
) -> (SimStats, Vec<CaliformsException>) {
    let core = califorms_sim::CoreConfig::westmere();
    let mut hierarchy = LegacyHierarchy::new(HierarchyConfig::westmere());
    let mut mask = ExceptionMask::new();
    let l1_latency = hierarchy.cfg.l1d_latency;
    let (mut cycles, mut instructions) = (0.0f64, 0u64);
    let (mut loads, mut stores, mut cforms, mut stores_suppressed) = (0u64, 0u64, 0u64, 0u64);
    let mut exceptions: Vec<CaliformsException> = Vec::new();
    let mut pc = 0u64;
    for op in trace {
        pc += 1;
        instructions += op.instruction_count();
        let r = match op {
            TraceOp::Exec(n) => {
                cycles += core.exec_cycles(u64::from(n));
                continue;
            }
            TraceOp::MaskPush => {
                cycles += core.exec_cycles(1);
                mask.push_allow_all();
                continue;
            }
            TraceOp::MaskPop => {
                cycles += core.exec_cycles(1);
                mask.pop_window();
                continue;
            }
            TraceOp::Load { addr, size } => {
                loads += 1;
                hierarchy.load(addr, size as usize, pc)
            }
            TraceOp::Store { addr, size } => {
                stores += 1;
                // The pre-overhaul per-store heap allocation.
                let data = store_pattern(addr, size as usize);
                let r = hierarchy.store(addr, &data, pc);
                if r.exception.is_some() {
                    stores_suppressed += 1;
                }
                r
            }
            TraceOp::Cform {
                line_addr,
                attrs,
                mask: m,
            } => {
                cforms += 1;
                hierarchy.cform(&CformInstruction::new(line_addr, attrs, m), pc)
            }
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask: m,
            } => {
                cforms += 1;
                hierarchy.cform_nt(&CformInstruction::new(line_addr, attrs, m), pc)
            }
        };
        cycles += core.exec_cycles(1) + core.memory_stall(r.latency, l1_latency);
        if let Some(exc) = r.exception {
            if let Some(delivered) = mask.filter(exc) {
                if exceptions.len() < Engine::MAX_RECORDED_EXCEPTIONS {
                    exceptions.push(delivered);
                }
            }
        }
    }
    let mut stats = SimStats {
        cycles,
        instructions,
        loads,
        stores,
        cforms,
        stores_suppressed,
        exceptions_delivered: mask.delivered_count(),
        exceptions_suppressed: mask.suppressed_count(),
        ..SimStats::default()
    };
    hierarchy.export_stats(&mut stats);
    (stats, exceptions)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The frozen baseline must stay semantically identical to the
    /// current engine — otherwise the throughput comparison is
    /// meaningless.
    #[test]
    fn legacy_baseline_matches_current_engine() {
        let mut trace: Vec<TraceOp> = Vec::new();
        for i in 0..2_000u64 {
            trace.push(TraceOp::Store {
                addr: 0x1_0000 + (i * 56) % 8192,
                size: 8,
            });
            trace.push(TraceOp::Load {
                addr: 0x1_0000 + (i * 24) % 8192,
                size: 8,
            });
            if i % 64 == 0 {
                trace.push(TraceOp::Cform {
                    line_addr: 0x2_0000 + (i / 64) * 64,
                    attrs: 0x7F << 56,
                    mask: 0x7F << 56,
                });
                trace.push(TraceOp::Load {
                    addr: 0x2_0000 + (i / 64) * 64 + 60,
                    size: 1,
                }); // rogue
                trace.push(TraceOp::CformNt {
                    line_addr: 0x3_0000 + (i / 64) * 64,
                    attrs: 0x7F << 56,
                    mask: 0x7F << 56,
                });
            }
            trace.push(TraceOp::Exec(7));
        }
        let (legacy_stats, legacy_exc) = run_legacy(Box::new(trace.iter().copied()));
        let current = Engine::westmere().run(trace.iter().copied());
        assert_eq!(legacy_stats, current.stats);
        assert_eq!(legacy_exc, current.exceptions);
        assert!(current.stats.exceptions_delivered > 0);
    }
}
