//! Human-readable and JSON rendering of experiment results.

use crate::experiments::{mean, PolicyRow, SlowdownRow};
use serde::Serialize;
use std::path::Path;

/// Renders slowdown rows with the paper reference alongside.
pub fn render_slowdowns(title: &str, rows: &[SlowdownRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str("label           | paper    | measured\n");
    out.push_str("----------------+----------+---------\n");
    for r in rows {
        let paper = match r.paper {
            Some(p) => format!("{:7.2}%", p * 100.0),
            None => "      — ".into(),
        };
        out.push_str(&format!(
            "{:<15} | {} | {:7.2}%\n",
            r.label,
            paper,
            r.measured * 100.0
        ));
    }
    out.push_str(&format!(
        "{:<15} |          | {:7.2}%\n",
        "AVG",
        mean(rows) * 100.0
    ));
    out
}

/// Renders a policy figure (Figures 11/12) as a benchmark × series matrix.
pub fn render_policy_rows(title: &str, rows: &[PolicyRow]) -> String {
    let mut out = format!("{title}\n");
    if rows.is_empty() {
        return out;
    }
    let labels: Vec<&str> = rows[0].series.iter().map(|(l, _)| l.as_str()).collect();
    out.push_str(&format!("{:<12}", "benchmark"));
    for l in &labels {
        out.push_str(&format!(" | {l:>19}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<12}", r.benchmark));
        for (_, v) in &r.series {
            out.push_str(&format!(" | {:>18.2}%", v * 100.0));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "AVG"));
    for l in &labels {
        let avg = crate::experiments::series_average(rows, l);
        out.push_str(&format!(" | {:>18.2}%", avg * 100.0));
    }
    out.push('\n');
    out
}

/// Renders one instrumented multicore run for bench stdout: the
/// telemetry counter/latency summary, the per-core weave wall-clock
/// breakdown that replaces the old aggregate `weave_s`, and the
/// batched/contended transaction split per directory shard.
pub fn render_telemetry_summary(
    report: &califorms_telemetry::TelemetryReport,
    stats: &califorms_sim::MulticoreStats,
    timing: &califorms_sim::RuntimeTiming,
) -> String {
    let mut out = report.summary();
    let wb = &timing.weave_breakdown;
    if !wb.per_core_s.is_empty() {
        let per_core: Vec<String> = wb
            .per_core_s
            .iter()
            .enumerate()
            .map(|(c, s)| format!("core{c} {s:.3}s"))
            .collect();
        out.push_str(&format!(
            "  weave wall-clock by core: {} (total {:.3}s over {} quanta sampled{})\n",
            per_core.join(", "),
            timing.weave_s,
            wb.per_quantum_s.len(),
            if wb.quantum_samples_dropped > 0 {
                format!(", {} dropped", wb.quantum_samples_dropped)
            } else {
                String::new()
            },
        ));
    }
    for (b, sh) in stats.weave.per_shard.iter().enumerate() {
        if sh.transactions > 0 {
            out.push_str(&format!(
                "  shard {b}: {} weave txns ({} batched, {} contended)\n",
                sh.transactions, sh.batched, sh.contended,
            ));
        }
    }
    out
}

/// Writes any serialisable result next to the binary's stdout report, so
/// EXPERIMENTS.md numbers stay reproducible.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value).expect("results are serialisable");
    std::fs::write(path, json)
}

/// Standard results directory (`target/experiment-results`), created on
/// demand.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/experiment-results");
    std::fs::create_dir_all(&dir).expect("can create results dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SlowdownRow> {
        vec![
            SlowdownRow {
                label: "a".into(),
                paper: Some(0.01),
                measured: 0.012,
            },
            SlowdownRow {
                label: "b".into(),
                paper: None,
                measured: 0.020,
            },
        ]
    }

    #[test]
    fn slowdown_render_contains_rows_and_average() {
        let s = render_slowdowns("Fig X", &rows());
        assert!(s.contains("Fig X"));
        assert!(s.contains("1.20%"));
        assert!(s.contains("1.00%"));
        assert!(s.contains("AVG"));
        assert!(s.contains("1.60%")); // (1.2+2.0)/2
    }

    #[test]
    fn policy_render_has_matrix_shape() {
        let rows = vec![PolicyRow {
            benchmark: "mcf".into(),
            series: vec![("1-3B".into(), 0.05), ("1-7B CFORM".into(), 0.15)],
        }];
        let s = render_policy_rows("Fig 11", &rows);
        assert!(s.contains("mcf"));
        assert!(s.contains("1-3B"));
        assert!(s.contains("15.00%"));
    }

    #[test]
    fn json_round_trips_to_disk() {
        let dir = results_dir();
        let path = dir.join("test.json");
        write_json(&path, &rows()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"measured\""));
        std::fs::remove_file(path).ok();
    }
}
