//! Edge-case coverage for the OS support (`os.rs`) and DMA (`dma.rs`)
//! paths: page boundaries, zero-length transfers, and
//! metadata-preservation corners that the mainline tests skip.

use califorms_core::CformInstruction;
use califorms_sim::dma::DmaEngine;
use califorms_sim::os::{io_write, SwapManager, PAGE_BYTES};
use califorms_sim::{Hierarchy, HierarchyConfig};

fn hier() -> Hierarchy {
    Hierarchy::new(HierarchyConfig::westmere())
}

// --- DMA --------------------------------------------------------------

#[test]
fn zero_length_dma_is_empty_everywhere() {
    let mut h = hier();
    h.store(0x5000, &[1, 2, 3], 0);
    for addr in [0x5000u64, 0x5001, 0x503F, u64::MAX] {
        for engine in [DmaEngine::respecting(), DmaEngine::bypassing()] {
            let t = engine.read(&mut h, addr, 0);
            assert!(t.data.is_empty());
            assert_eq!(t.security_bytes_seen, 0);
        }
    }
    // And the hierarchy still serves the data afterwards.
    assert_eq!(h.load(0x5000, 3, 0).data, vec![1, 2, 3]);
}

#[test]
fn dma_across_a_page_boundary_is_contiguous() {
    let mut h = hier();
    let boundary = 0x10_0000u64 + PAGE_BYTES; // second page starts here
    h.store(boundary - 4, &[1, 2, 3, 4], 0);
    h.store(boundary, &[5, 6, 7, 8], 0);
    h.cform(&CformInstruction::set(boundary, 1 << 2), 0);
    let t = DmaEngine::respecting().read(&mut h, boundary - 4, 8);
    assert_eq!(t.data, vec![1, 2, 3, 4, 5, 6, 0, 8]);
    assert_eq!(t.security_bytes_seen, 1);
}

#[test]
fn single_byte_dma_at_line_edges() {
    let mut h = hier();
    h.store(0x6000 + 63, &[0xAB], 0);
    h.store(0x6040, &[0xCD], 0);
    let t = DmaEngine::respecting().read(&mut h, 0x6000 + 63, 1);
    assert_eq!(t.data, vec![0xAB]);
    let t = DmaEngine::respecting().read(&mut h, 0x6040, 1);
    assert_eq!(t.data, vec![0xCD]);
}

#[test]
fn dma_of_a_fully_califormed_line_sees_only_zeros() {
    let mut h = hier();
    h.cform(&CformInstruction::set(0x7000, u64::MAX), 0);
    let t = DmaEngine::respecting().read(&mut h, 0x7000, 64);
    assert_eq!(t.data, vec![0u8; 64]);
    assert_eq!(t.security_bytes_seen, 64);
}

// --- OS: swap ---------------------------------------------------------

#[test]
fn adjacent_pages_swap_independently() {
    let mut h = hier();
    let p0 = 0x40_0000u64;
    let p1 = p0 + PAGE_BYTES;
    // Data straddling the page boundary: last line of p0, first of p1.
    h.store(p1 - 8, &[1; 8], 0);
    h.store(p1, &[2; 8], 0);
    h.cform(&CformInstruction::set(p1 - 64, 1 << 0), 0);
    h.cform(&CformInstruction::set(p1, 1 << 9), 0);

    let mut swap = SwapManager::new();
    swap.swap_out(&mut h, p0);
    // p1 is untouched while p0 is out.
    assert_eq!(h.load(p1, 8, 0).data, vec![2; 8]);
    assert!(h.peek_is_security_byte(p1 + 9));

    swap.swap_out(&mut h, p1);
    assert_eq!(swap.swapped_pages(), 2);
    assert_eq!(swap.metadata_bytes(), 16);

    // Swap back in the opposite order; everything returns intact.
    swap.swap_in(&mut h, p1);
    swap.swap_in(&mut h, p0);
    assert_eq!(h.load(p1 - 8, 8, 0).data, vec![1; 8]);
    assert_eq!(h.load(p1, 8, 0).data, vec![2; 8]);
    assert!(h.peek_is_security_byte(p1 - 64));
    assert!(h.peek_is_security_byte(p1 + 9));
    assert!(
        h.load(p1 + 9, 1, 0).exception.is_some(),
        "tripwire still live"
    );
}

#[test]
fn swap_of_the_last_metadata_bit_line() {
    // The 64th line of a page maps to bit 63 of the metadata word — the
    // sign bit, where an arithmetic-shift bug would corrupt state.
    let mut h = hier();
    let page = 0x80_0000u64;
    let last_line = page + PAGE_BYTES - 64;
    h.store(last_line, &[7; 4], 0);
    h.cform(&CformInstruction::set(last_line, 1 << 33), 0);
    let mut swap = SwapManager::new();
    swap.swap_out(&mut h, page);
    swap.swap_in(&mut h, page);
    assert_eq!(h.load(last_line, 4, 0).data, vec![7; 4]);
    assert!(h.peek_is_security_byte(last_line + 33));
    assert!(!h.dram_line(page).califormed, "line 0 stayed plain");
}

// --- OS: I/O boundary -------------------------------------------------

#[test]
fn io_write_of_zero_length_is_empty() {
    let mut h = hier();
    let export = io_write(&mut h, 0x9000, 0);
    assert!(export.data.is_empty());
    assert_eq!(export.security_bytes_crossed, 0);
}

#[test]
fn io_write_across_a_page_boundary_strips_spans_on_both_sides() {
    let mut h = hier();
    let boundary = 0x90_0000u64 + PAGE_BYTES;
    h.store(boundary - 8, &[0x11; 8], 0);
    h.store(boundary, &[0x22; 8], 0);
    h.cform(&CformInstruction::set(boundary - 64, 1 << 60), 0); // byte -4
    h.cform(&CformInstruction::set(boundary, 1 << 1), 0);
    let export = io_write(&mut h, boundary - 8, 16);
    assert_eq!(export.security_bytes_crossed, 2);
    assert_eq!(export.data[4], 0, "span byte before the boundary stripped");
    assert_eq!(export.data[9], 0, "span byte after the boundary stripped");
    assert_eq!(export.data[0], 0x11);
    assert_eq!(export.data[8], 0x22);
    // In-memory protection is unchanged.
    assert!(h.peek_is_security_byte(boundary - 4));
    assert!(h.peek_is_security_byte(boundary + 1));
}
