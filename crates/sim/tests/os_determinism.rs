//! Regression test for the `os.rs` nondeterministic-map finding: page
//! swap and I/O-boundary results — *including map-iteration-derived
//! output* — must be bit-identical across repeated **fresh processes**.
//!
//! `SwapManager`'s device/metadata maps used the default `RandomState`
//! hasher, whose per-process seed makes iteration order differ between
//! two runs of the same binary; any stats or swap-storm path iterating
//! them would have broken the repo's same-seed ⇒ bit-identical invariant.
//! They now use the deterministic `LineMap` (DESIGN.md §12). This test
//! re-executes itself as two child processes and asserts the digest —
//! swapped-page iteration order, metadata accounting, swap round-trip
//! loads and `io_write` exports — is byte-identical in both.

use califorms_core::CformInstruction;
use califorms_sim::hierarchy::{Hierarchy, HierarchyConfig};
use califorms_sim::os::{io_write, SwapManager, PAGE_BYTES};
use std::process::Command;

/// Runs a scripted swap/IO workload and folds everything order-sensitive
/// into one printable digest string.
fn swap_io_digest() -> String {
    let mut h = Hierarchy::new(HierarchyConfig::westmere());
    let mut swap = SwapManager::new();
    let mut digest = String::new();

    // Populate and caliform a spread of pages, swap them out in a
    // scripted order with interleaved swap-ins (so the maps see inserts
    // *and* removals — bucket layout depends on the whole op sequence).
    let pages: Vec<u64> = (0..24u64).map(|i| 0x10_0000 + i * PAGE_BYTES).collect();
    for (i, &page) in pages.iter().enumerate() {
        h.store(page + (i as u64 % 64), &[i as u8 + 1; 4], 0);
        h.cform(&CformInstruction::set(page, 1 << (i % 56)), 0);
        swap.swap_out(&mut h, page);
        if i % 5 == 4 {
            let victim = pages[i - 2];
            swap.swap_in(&mut h, victim);
            swap.swap_out(&mut h, victim);
        }
    }

    // Map-iteration order, verbatim: this is the part a RandomState
    // hasher scrambles per process.
    digest.push_str("order:");
    for addr in swap.swapped_page_addrs() {
        digest.push_str(&format!("{addr:x},"));
    }
    digest.push_str(&format!(
        ";pages={};meta={}",
        swap.swapped_pages(),
        swap.metadata_bytes()
    ));

    // Swap everything back in (in the deterministic iteration order) and
    // digest the restored data plus the I/O-boundary export.
    for addr in swap.swapped_page_addrs() {
        swap.swap_in(&mut h, addr);
    }
    for (i, &page) in pages.iter().enumerate() {
        let r = h.load(page + (i as u64 % 64), 4, 0);
        digest.push_str(&format!(";d{i}={:?}", r.data));
    }
    let export = io_write(&mut h, pages[0], 64);
    digest.push_str(&format!(
        ";io={:?}/{}",
        export.data, export.security_bytes_crossed
    ));
    digest
}

const CHILD_ENV: &str = "CALIFORMS_OS_DIGEST_CHILD";

#[test]
fn swap_stats_identical_across_fresh_processes() {
    if std::env::var(CHILD_ENV).is_ok() {
        // Child mode: print the digest for the parent and stop.
        println!("DIGEST={}", swap_io_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let run_child = || {
        let out = Command::new(&exe)
            .args([
                "swap_stats_identical_across_fresh_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        let stdout = String::from_utf8(out.stdout).expect("utf-8 test output");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            out.status.success(),
            "child test process failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        // libtest may merge the digest onto its own progress line, so
        // match the marker anywhere in a line, not just at its start.
        stdout
            .lines()
            .find_map(|l| l.split_once("DIGEST=").map(|(_, d)| d))
            .unwrap_or_else(|| {
                panic!("child printed no digest\nstdout:\n{stdout}\nstderr:\n{stderr}")
            })
            .to_string()
    };
    let a = run_child();
    let b = run_child();
    let local = swap_io_digest();
    assert_eq!(a, b, "digest differs between two fresh processes");
    assert_eq!(a, local, "child digest differs from in-process digest");
    assert!(a.contains("order:"), "digest covers iteration order");
}
