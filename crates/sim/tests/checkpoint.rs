//! Negative-path tests of the checkpoint format: every class of
//! corruption — bad magic, future version, truncation at any byte,
//! checksum mismatch, section-length lies, framing garbage, wrong
//! engine kind, wrong pack — must surface as a typed
//! [`CheckpointError`], never a panic, through **both** resume entry
//! points (`Engine::resume_pack` and
//! `MulticoreEngine::try_resume_pack`). The positive controls at the
//! top prove the uncorrupted bytes resume bit-identically, so a
//! rejection really is the corruption being caught.

use califorms_sim::checkpoint::{CheckpointError, MAGIC, VERSION};
use califorms_sim::{Engine, MulticoreConfig, MulticoreEngine, RunError, TraceOp, TracePack};

/// A small deterministic workload: enough ops to cross several decode
/// batches / quanta, touching loads, stores and CFORMs.
fn pack() -> TracePack {
    let mut ops = Vec::new();
    for i in 0..3000u64 {
        let addr = 0x1000 + (i % 256) * 8;
        ops.push(TraceOp::Exec((i % 90) as u32 + 10));
        ops.push(TraceOp::Store { addr, size: 8 });
        ops.push(TraceOp::Load { addr, size: 8 });
        if i % 64 == 0 {
            ops.push(TraceOp::Cform {
                line_addr: 0x8000 + (i % 16) * 64,
                attrs: 1,
                mask: 1,
            });
        }
    }
    TracePack::from_ops(ops)
}

/// A valid mid-run single-core checkpoint (the corruption substrate).
fn single_checkpoint(pack: &TracePack) -> Vec<u8> {
    let (_, checkpoints) = Engine::westmere().run_pack_checkpointed(pack, 1);
    assert!(checkpoints.len() >= 2, "workload must span several batches");
    checkpoints[0].clone()
}

/// A valid mid-run multicore checkpoint.
fn multicore_checkpoint(pack: &TracePack) -> Vec<u8> {
    let (_, checkpoints) = MulticoreEngine::new(MulticoreConfig::westmere(2).with_quantum(500.0))
        .try_run_pack_checkpointed(pack, 2)
        .expect("checkpointed run");
    assert!(!checkpoints.is_empty(), "workload must span several quanta");
    checkpoints[0].clone()
}

/// FNV-1a 64 (the trailer checksum), reimplemented here so targeted
/// corruptions can re-seal the trailer and reach the checks *behind*
/// the checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Recomputes the trailing checksum after a deliberate mutation.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len() - 8;
    let sum = fnv1a(&bytes[..n]);
    bytes[n..].copy_from_slice(&sum.to_le_bytes());
}

/// Resumes corrupted bytes on the single-core engine, expecting a typed
/// error.
fn single_err(pack: &TracePack, bytes: &[u8]) -> CheckpointError {
    Engine::resume_pack(pack, bytes).expect_err("corrupt checkpoint resumed cleanly")
}

/// Resumes corrupted bytes on the multicore engine, expecting the typed
/// error to arrive wrapped in [`RunError::Checkpoint`].
fn multicore_err(pack: &TracePack, bytes: &[u8]) -> CheckpointError {
    match MulticoreEngine::try_resume_pack(pack, bytes) {
        Err(RunError::Checkpoint(e)) => e,
        Err(other) => panic!("expected RunError::Checkpoint, got {other:?}"),
        Ok(_) => panic!("corrupt checkpoint resumed cleanly"),
    }
}

#[test]
fn uncorrupted_controls_resume_bit_identically() {
    let pack = pack();
    let reference = Engine::westmere().run_pack(&pack);
    let resumed = Engine::resume_pack(&pack, &single_checkpoint(&pack)).expect("valid checkpoint");
    assert_eq!(resumed, reference, "single-core positive control");

    let mc_ref = MulticoreEngine::new(MulticoreConfig::westmere(2).with_quantum(500.0))
        .try_run_pack(&pack)
        .expect("reference run");
    let mc = MulticoreEngine::try_resume_pack(&pack, &multicore_checkpoint(&pack))
        .expect("valid checkpoint");
    assert_eq!(mc.stats, mc_ref.stats, "multicore positive control");
    assert_eq!(mc.exceptions, mc_ref.exceptions);
}

#[test]
fn corrupted_magic_is_bad_magic_on_both_engines() {
    let pack = pack();
    for (bytes, which) in [
        (single_checkpoint(&pack), "single"),
        (multicore_checkpoint(&pack), "multi"),
    ] {
        for i in 0..MAGIC.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x20;
            let err = if which == "single" {
                single_err(&pack, &b)
            } else {
                multicore_err(&pack, &b)
            };
            assert!(
                matches!(err, CheckpointError::BadMagic),
                "{which}: flip in magic byte {i} gave {err:?}"
            );
        }
    }
}

#[test]
fn future_version_is_rejected_with_the_version() {
    let pack = pack();
    let mut bytes = single_checkpoint(&pack);
    bytes[4] = VERSION + 3;
    reseal(&mut bytes);
    match single_err(&pack, &bytes) {
        CheckpointError::UnsupportedVersion(v) => assert_eq!(v, VERSION + 3),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_byte_errors_typed() {
    // Cutting the checkpoint at *any* length short of the full stream
    // must fail typed — short prefixes as BadMagic/Truncated, longer
    // ones via the checksum trailer (the last 8 bytes of any cut are
    // interpreted as a checksum over content they don't match).
    let pack = pack();
    let bytes = single_checkpoint(&pack);
    for cut in 0..bytes.len() {
        let err = single_err(&pack, &bytes[..cut]);
        assert!(
            matches!(
                err,
                CheckpointError::BadMagic
                    | CheckpointError::Truncated
                    | CheckpointError::ChecksumMismatch { .. }
            ),
            "cut at {cut}/{} gave unexpected {err:?}",
            bytes.len()
        );
    }
}

#[test]
fn multicore_truncation_sweep_errors_typed() {
    // The multicore restore path shares the envelope validation; sweep
    // a coarser grid (the checkpoint is much larger) plus every cut in
    // the header and trailer neighborhoods.
    let pack = pack();
    let bytes = multicore_checkpoint(&pack);
    let n = bytes.len();
    let cuts = (0..32)
        .chain((n.saturating_sub(32))..n)
        .chain((0..n).step_by(997));
    for cut in cuts {
        let err = multicore_err(&pack, &bytes[..cut]);
        assert!(
            matches!(
                err,
                CheckpointError::BadMagic
                    | CheckpointError::Truncated
                    | CheckpointError::ChecksumMismatch { .. }
            ),
            "cut at {cut}/{n} gave unexpected {err:?}"
        );
    }
}

#[test]
fn any_bit_flip_is_caught_by_the_checksum() {
    let pack = pack();
    let bytes = single_checkpoint(&pack);
    // Flip one bit in every byte: header flips surface as their own
    // typed variants, everything else (payload or trailer) must be a
    // checksum mismatch — nothing decodes, nothing panics.
    for i in 0..bytes.len() {
        let mut b = bytes.clone();
        b[i] ^= 0x01;
        let err = single_err(&pack, &b);
        if i >= 5 {
            match err {
                CheckpointError::ChecksumMismatch { stored, computed } => {
                    assert_ne!(stored, computed)
                }
                other => panic!("flip at {i} gave {other:?}, expected checksum mismatch"),
            }
        }
    }
}

#[test]
fn section_length_lies_are_rejected() {
    let pack = pack();
    let base = single_checkpoint(&pack);
    // The first section starts right after magic+version: tag at byte
    // 5, its u64 length at bytes 6..14.
    let patch_len = |bytes: &mut [u8], len: u64| {
        bytes[6..14].copy_from_slice(&len.to_le_bytes());
        reseal(bytes);
    };

    // A length pointing far past the end of the stream.
    let mut b = base.clone();
    patch_len(&mut b, u64::MAX / 2);
    match single_err(&pack, &b) {
        CheckpointError::SectionLength(tag) => assert_eq!(tag, base[5]),
        other => panic!("overrun length gave {other:?}"),
    }

    // A length swallowing the entire rest of the stream (end marker
    // included): framing never terminates cleanly.
    let mut b = base.clone();
    patch_len(&mut b, (base.len() - 14 - 8) as u64);
    assert!(
        matches!(
            single_err(&pack, &b),
            CheckpointError::Truncated | CheckpointError::SectionLength(_)
        ),
        "swallowing length must fail framing"
    );

    // Off-by-one lies: the de-framed payloads land in the wrong
    // sections, which must fail typed (length, missing section, or a
    // semantic corruption) — never panic, never resume.
    let orig = u64::from_le_bytes(base[6..14].try_into().unwrap());
    for lie in [orig - 1, orig + 1] {
        let mut b = base.clone();
        patch_len(&mut b, lie);
        let err = single_err(&pack, &b);
        assert!(
            !matches!(err, CheckpointError::ChecksumMismatch { .. }),
            "resealed lie {lie} (orig {orig}) must fail structurally, got {err:?}"
        );
    }
}

#[test]
fn garbage_between_end_marker_and_trailer_is_counted() {
    let pack = pack();
    let mut bytes = single_checkpoint(&pack);
    let trailer_at = bytes.len() - 8;
    bytes.splice(trailer_at..trailer_at, [0xAAu8, 0xBB, 0xCC]);
    reseal(&mut bytes);
    match single_err(&pack, &bytes) {
        CheckpointError::TrailingBytes(n) => assert_eq!(n, 3),
        other => panic!("expected TrailingBytes(3), got {other:?}"),
    }
}

#[test]
fn unknown_section_tags_are_skipped_for_forward_compat() {
    // A newer minor revision may append sections this decoder doesn't
    // know; the length prefix lets it skip them and still resume.
    let pack = pack();
    let reference = Engine::westmere().run_pack(&pack);
    let mut bytes = single_checkpoint(&pack);
    let trailer_at = bytes.len() - 8;
    // end marker sits right before the trailer; insert ahead of it.
    let insert_at = trailer_at - 1;
    let mut extra = vec![0x7Eu8]; // unknown tag
    extra.extend_from_slice(&4u64.to_le_bytes());
    extra.extend_from_slice(&[1, 2, 3, 4]);
    bytes.splice(insert_at..insert_at, extra);
    reseal(&mut bytes);
    let resumed = Engine::resume_pack(&pack, &bytes).expect("unknown section must be skipped");
    assert_eq!(resumed, reference, "skipping must not perturb the resume");
}

#[test]
fn engine_kind_cross_resume_is_a_config_mismatch() {
    let pack = pack();
    let single = single_checkpoint(&pack);
    let multi = multicore_checkpoint(&pack);
    match multicore_err(&pack, &single) {
        CheckpointError::ConfigMismatch(what) => assert!(
            what.contains("single-core"),
            "message should name the kind: {what}"
        ),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    match single_err(&pack, &multi) {
        CheckpointError::ConfigMismatch(what) => assert!(
            what.contains("multicore"),
            "message should name the kind: {what}"
        ),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn resume_against_a_shorter_pack_fails_typed() {
    // A checkpoint whose cursor points past the end of the pack it is
    // resumed against (wrong or truncated pack) must fail typed.
    let pack = pack();
    let bytes = single_checkpoint(&pack);
    let short = TracePack::from_ops([TraceOp::Exec(10)]);
    match single_err(&short, &bytes) {
        CheckpointError::Pack(_) => {}
        other => panic!("expected a Pack cursor error, got {other:?}"),
    }

    let mc = multicore_checkpoint(&pack);
    match multicore_err(&short, &mc) {
        CheckpointError::Pack(_) | CheckpointError::Corrupt(_) => {}
        other => panic!("expected a cursor error, got {other:?}"),
    }
}

#[test]
fn empty_and_header_only_streams_fail_typed() {
    let pack = pack();
    // An empty stream is a zero-length prefix of the magic, so it
    // reads as truncation rather than foreign bytes.
    assert!(matches!(single_err(&pack, &[]), CheckpointError::Truncated));
    assert!(matches!(
        single_err(&pack, b"WXYZ"),
        CheckpointError::BadMagic
    ));
    let mut header = MAGIC.to_vec();
    header.push(VERSION);
    assert!(matches!(
        single_err(&pack, &header),
        CheckpointError::Truncated
    ));
}

#[test]
fn errors_render_useful_messages() {
    // The Display impls are what land in recovery logs and CI output.
    assert!(CheckpointError::BadMagic.to_string().contains("magic"));
    assert!(CheckpointError::Truncated.to_string().contains("truncated"));
    assert!(CheckpointError::UnsupportedVersion(9)
        .to_string()
        .contains('9'));
    assert!(CheckpointError::ChecksumMismatch {
        stored: 1,
        computed: 2
    }
    .to_string()
    .contains("checksum"));
    assert!(CheckpointError::SectionLength(0x03)
        .to_string()
        .contains("0x03"));
    assert!(CheckpointError::MissingSection("meta")
        .to_string()
        .contains("meta"));
    assert!(CheckpointError::TrailingBytes(7).to_string().contains('7'));
    assert!(CheckpointError::ConfigMismatch("cores")
        .to_string()
        .contains("cores"));
}
