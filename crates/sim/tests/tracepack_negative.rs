//! Negative-path tests of the `tracepack` wire format: every class of
//! corruption must surface as a typed decode error — never a panic,
//! never a silent truncation — through **both** decode entry points
//! (`TracePack::from_bytes` and the streaming `TracePackReader`).

use califorms_sim::tracepack::{TracePack, TracePackError, TracePackReader, MAGIC, VERSION};
use califorms_sim::TraceOp;

/// A small valid pack to corrupt.
fn valid_bytes() -> Vec<u8> {
    TracePack::from_ops([
        TraceOp::Exec(100),
        TraceOp::Store {
            addr: 0x1000,
            size: 8,
        },
        TraceOp::Load {
            addr: 0x1008,
            size: 16,
        },
        TraceOp::Cform {
            line_addr: 0x1000,
            attrs: 0xFF,
            mask: 0xFF,
        },
        TraceOp::MaskPush,
        TraceOp::MaskPop,
    ])
    .bytes()
    .to_vec()
}

/// Drains a reader, returning the first error (panics on clean EOF).
fn reader_error(bytes: &[u8]) -> TracePackError {
    let mut r = match TracePackReader::new(bytes) {
        Ok(r) => r,
        Err(e) => return e,
    };
    loop {
        match r.next_op() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("corrupted stream decoded cleanly"),
            Err(e) => return e,
        }
    }
}

#[test]
fn corrupted_magic_is_bad_magic_in_both_paths() {
    let mut bytes = valid_bytes();
    bytes[0] ^= 0x20;
    assert!(matches!(
        TracePack::from_bytes(bytes.clone()),
        Err(TracePackError::BadMagic)
    ));
    assert!(matches!(reader_error(&bytes), TracePackError::BadMagic));
}

#[test]
fn short_header_is_bad_magic_not_a_panic() {
    for n in 0..5usize {
        let bytes = valid_bytes()[..n].to_vec();
        assert!(matches!(
            TracePack::from_bytes(bytes.clone()),
            Err(TracePackError::BadMagic)
        ));
        assert!(matches!(reader_error(&bytes), TracePackError::BadMagic));
    }
}

#[test]
fn future_version_is_rejected_with_the_version() {
    let mut bytes = valid_bytes();
    bytes[4] = VERSION + 3;
    match TracePack::from_bytes(bytes.clone()) {
        Err(TracePackError::UnsupportedVersion(v)) => assert_eq!(v, VERSION + 3),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert!(matches!(
        reader_error(&bytes),
        TracePackError::UnsupportedVersion(_)
    ));
}

#[test]
fn unknown_op_tag_is_rejected() {
    for tag in [0x07u8, 0x42, 0xFE] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(tag);
        bytes.push(0xFF); // end marker the decoder must never reach
        match TracePack::from_bytes(bytes.clone()) {
            Err(TracePackError::BadTag(t)) => assert_eq!(t, tag),
            other => panic!("expected BadTag({tag:#x}), got {other:?}"),
        }
        assert!(matches!(reader_error(&bytes), TracePackError::BadTag(_)));
    }
}

#[test]
fn truncation_mid_varint_is_truncated_not_silent() {
    // A Load whose address delta is a multi-byte varint, cut inside it:
    // every prefix ending mid-varint must report Truncated.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(1); // Load
    bytes.extend_from_slice(&[0x80, 0x80, 0x80]); // varint continuation bytes, no terminator
    assert!(matches!(
        TracePack::from_bytes(bytes.clone()),
        Err(TracePackError::Truncated)
    ));
    assert!(matches!(reader_error(&bytes), TracePackError::Truncated));
}

#[test]
fn every_truncation_point_of_a_real_pack_errors() {
    // Cutting a valid pack anywhere after the header (and before its
    // final byte) must yield Truncated — no cut point may decode
    // cleanly or panic. This sweeps cuts inside tags, mid-varint and
    // mid-size-byte alike.
    let bytes = valid_bytes();
    for cut in 5..bytes.len() - 1 {
        let prefix = bytes[..cut].to_vec();
        assert!(
            matches!(
                TracePack::from_bytes(prefix.clone()),
                Err(TracePackError::Truncated)
            ),
            "cut at {cut} must be Truncated"
        );
        assert!(matches!(reader_error(&prefix), TracePackError::Truncated));
    }
}

#[test]
fn trailing_garbage_after_end_marker_is_counted() {
    let mut bytes = valid_bytes();
    bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
    match TracePack::from_bytes(bytes) {
        Err(TracePackError::TrailingBytes(n)) => assert_eq!(n, 3),
        other => panic!("expected TrailingBytes(3), got {other:?}"),
    }
    // The streaming reader stops at the end marker by design (it may be
    // reading from a stream with framing after the pack), so trailing
    // bytes are the owning-pack validator's job — but the reader must
    // still report a *clean* end, not decode the garbage as ops.
    let mut with_garbage = valid_bytes();
    with_garbage.push(0x00);
    let mut r = TracePackReader::new(with_garbage.as_slice()).unwrap();
    let mut n = 0;
    while r.next_op().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 6, "exactly the real ops decode");
}

#[test]
fn oversized_varint_is_rejected() {
    // An 11-byte varint cannot fit in a u64.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(0); // Exec
    bytes.extend_from_slice(&[0xFF; 10]);
    bytes.push(0x01);
    bytes.push(0xFF);
    assert!(matches!(
        TracePack::from_bytes(bytes.clone()),
        Err(TracePackError::VarintOverflow)
    ));
    assert!(matches!(
        reader_error(&bytes),
        TracePackError::VarintOverflow
    ));
}

#[test]
fn zero_and_oversized_access_sizes_are_rejected() {
    for size in [0u8, 65, 0xFF] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(2); // Store
        bytes.push(0); // delta 0
        bytes.push(size);
        bytes.push(0xFF);
        match TracePack::from_bytes(bytes.clone()) {
            Err(TracePackError::BadSize(s)) => assert_eq!(s, size),
            other => panic!("expected BadSize({size}), got {other:?}"),
        }
        assert!(matches!(reader_error(&bytes), TracePackError::BadSize(_)));
    }
}

#[test]
fn errors_render_useful_messages() {
    // The Display impls are what land in fuzzer logs and CI output.
    assert!(TracePackError::BadMagic.to_string().contains("magic"));
    assert!(TracePackError::BadTag(0x42).to_string().contains("0x42"));
    assert!(TracePackError::Truncated.to_string().contains("truncated"));
    assert!(TracePackError::TrailingBytes(7).to_string().contains('7'));
    assert!(TracePackError::BadSize(65).to_string().contains("65"));
    assert!(TracePackError::UnsupportedVersion(9)
        .to_string()
        .contains('9'));
}
