//! Integration tests of the multi-core subsystem (DESIGN.md §7):
//! cross-core detection at the exact faulting byte, bit-identical
//! determinism of the threaded quantum replay, and the conversion
//! invariants under coherence.

use califorms_sim::coherence::{CoherenceConfig, CoherentHierarchy};
use califorms_sim::multicore::{MulticoreConfig, MulticoreEngine};
use califorms_sim::{HierarchyConfig, TraceOp, LINE_BYTES};
use proptest::prelude::*;

#[test]
fn cross_core_security_byte_access_traps_at_exact_byte() {
    // Victim (core 0) fills a line and blacklists byte 37; the line stays
    // Modified in core 0's L1. Attacker (core 1) waits out the setup
    // quantum, then sweeps bytes 36..=38 from the other core.
    let line = 0x2000u64;
    let victim = vec![
        TraceOp::Store {
            addr: line,
            size: 8,
        },
        TraceOp::Cform {
            line_addr: line,
            attrs: 1 << 37,
            mask: 1 << 37,
        },
    ];
    let attacker = vec![
        TraceOp::Exec(200_000),
        TraceOp::Load {
            addr: line + 36,
            size: 1,
        },
        TraceOp::Load {
            addr: line + 37,
            size: 1,
        },
        TraceOp::Load {
            addr: line + 38,
            size: 1,
        },
    ];
    let out = MulticoreEngine::new(MulticoreConfig::westmere(2)).run(vec![victim, attacker]);

    assert_eq!(
        out.stats.per_core[0].exceptions_delivered, 0,
        "victim is clean"
    );
    assert_eq!(out.stats.per_core[1].exceptions_delivered, 1);
    assert_eq!(out.exceptions[1].len(), 1);
    assert_eq!(
        out.exceptions[1][0].fault_addr,
        line + 37,
        "trap lands on the exact probed security byte"
    );
    // The probe forced a cache-to-cache transfer of a califormed line.
    assert_eq!(out.stats.combined.coherence.cache_to_cache_transfers, 1);
    assert_eq!(out.stats.combined.coherence.califormed_transfers, 1);
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A pseudo-random shard mixing shared loads/stores, private traffic,
/// `CFORM`s and compute — enough entropy that any scheduling leak in the
/// engine would show up as diverging stats.
fn chaotic_shard(core: u64, seed: u64, n: usize) -> Vec<TraceOp> {
    const SHARED: u64 = 0x9000_0000;
    let mut s = seed ^ core.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let x = xorshift(&mut s);
        let shared_addr = SHARED + (x >> 8) % 256 * LINE_BYTES + (x >> 24) % 8 * 8;
        match x % 10 {
            0..=4 => ops.push(TraceOp::Load {
                addr: shared_addr,
                size: 8,
            }),
            5..=6 => ops.push(TraceOp::Store {
                addr: shared_addr,
                size: 8,
            }),
            7 => ops.push(TraceOp::Store {
                addr: 0xA000_0000 + core * 0x10_0000 + (x >> 16) % 4096 * 8,
                size: 8,
            }),
            8 => ops.push(TraceOp::Exec((x % 24) as u32)),
            _ => ops.push(TraceOp::Cform {
                line_addr: SHARED + (x >> 8) % 256 * LINE_BYTES,
                attrs: 1 << (x % 64),
                mask: 1 << (x % 64),
            }),
        }
    }
    ops
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let run = || {
        let shards: Vec<_> = (0..4)
            .map(|c| chaotic_shard(c, 0xDEAD_BEEF, 4_000))
            .collect();
        MulticoreEngine::new(MulticoreConfig::westmere(4)).run(shards)
    };
    let a = run();
    let b = run();
    // Bit-identical across runs (and therefore across host thread
    // schedules): every counter, every cycle count, every exception.
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.exceptions, b.exceptions);
    // And the chaos actually exercised the machine.
    assert!(a.stats.combined.coherence.invalidations > 0);
    assert!(
        a.stats.combined.exceptions_delivered > 0,
        "rogue CFORM traffic traps"
    );
}

#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        let shards: Vec<_> = (0..2).map(|c| chaotic_shard(c, seed, 1_000)).collect();
        MulticoreEngine::new(MulticoreConfig::westmere(2)).run(shards)
    };
    assert_ne!(run(1).stats, run(2).stats);
}

fn expand(half: [u8; 32]) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, b) in data.iter_mut().enumerate() {
        *b = half[i % 32].wrapping_add(i as u8);
    }
    data
}

proptest! {
    /// Invariant (conversion under coherence): a califormed line
    /// round-tripped through spill → cross-core transfer → fill preserves
    /// `(data, mask)` and the zeroing invariant for arbitrary masks.
    #[test]
    fn califormed_line_survives_cross_core_transfer(
        half in proptest::array::uniform32(any::<u8>()),
        mask in any::<u64>(),
    ) {
        let line = 0x4_0000u64;
        let data = expand(half);
        let mut h = CoherentHierarchy::new(
            HierarchyConfig::westmere(),
            CoherenceConfig::westmere(),
            2,
        );
        // Core 0 fills the line (fresh: no security bytes, store is clean),
        // then installs the arbitrary mask — the line is now Modified and
        // dirty in core 0's L1, in bitvector format.
        prop_assert!(h.store(0, line, &data, 0).exception.is_none());
        let insn = califorms_core::CformInstruction::new(line, mask, mask);
        prop_assert!(h.cform(0, &insn, 1).exception.is_none());

        // Core 1 reads the whole line: core 0 spills (Algorithm 1), the
        // sentinel line crosses the interconnect, core 1 fills
        // (Algorithm 2).
        let r = h.load(1, line, 64, 2);
        prop_assert_eq!(r.exception.is_some(), mask != 0);
        for (i, &got) in r.data.iter().enumerate() {
            if mask >> i & 1 == 1 {
                prop_assert_eq!(got, 0, "security byte {} must read zero", i);
                prop_assert!(h.peek_is_security_byte(line + i as u64));
            } else {
                prop_assert_eq!(got, data[i], "data byte {} must survive", i);
            }
        }
        prop_assert_eq!(h.peek_mask(line), mask, "mask survives the round-trip");
        if mask != 0 {
            prop_assert_eq!(h.coherence_totals().califormed_transfers, 1);
        }
    }
}
