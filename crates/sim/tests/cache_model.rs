//! Model-based property tests: the set-associative cache against a naive
//! reference implementation, over arbitrary access sequences.

use califorms_sim::cache::SetAssocCache;
use proptest::prelude::*;
use std::collections::HashMap;

/// Naive reference: per-set vectors in explicit LRU order.
struct RefCache {
    sets: HashMap<usize, Vec<(u64, u32)>>, // MRU first
    set_count: usize,
    ways: usize,
}

impl RefCache {
    fn new(set_count: usize, ways: usize) -> Self {
        Self {
            sets: HashMap::new(),
            set_count,
            ways,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr / 64) as usize) % self.set_count
    }

    fn access(&mut self, line_addr: u64) -> Option<u32> {
        let set = self.sets.entry(self.set_of(line_addr)).or_default();
        let pos = set.iter().position(|&(a, _)| a == line_addr)?;
        let entry = set.remove(pos);
        set.insert(0, entry);
        Some(set[0].1)
    }

    fn insert(&mut self, line_addr: u64, value: u32) -> Option<u64> {
        let ways = self.ways;
        let set = self.sets.entry(self.set_of(line_addr)).or_default();
        if let Some(pos) = set.iter().position(|&(a, _)| a == line_addr) {
            set.remove(pos);
            set.insert(0, (line_addr, value));
            return None;
        }
        let victim = if set.len() == ways {
            Some(set.pop().unwrap().0)
        } else {
            None
        };
        set.insert(0, (line_addr, value));
        victim
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Insert(u64, u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(|l| Op::Access(l * 64)),
            ((0u64..64), any::<u32>()).prop_map(|(l, v)| Op::Insert(l * 64, v)),
        ],
        1..200,
    )
}

proptest! {
    /// Every access and every eviction decision matches the reference
    /// model exactly (8 sets × 2 ways keeps collision pressure high).
    #[test]
    fn cache_matches_reference_model(ops in arb_ops()) {
        let mut sut = SetAssocCache::<u32>::new(8 * 2 * 64, 2, 1);
        let mut reference = RefCache::new(8, 2);
        for op in ops {
            match op {
                Op::Access(addr) => {
                    let got = sut.access(addr).map(|v| *v);
                    let want = reference.access(addr);
                    prop_assert_eq!(got, want, "access {:#x}", addr);
                }
                Op::Insert(addr, value) => {
                    let got = sut.insert(addr, value, false).map(|e| e.line_addr);
                    let want = reference.insert(addr, value);
                    prop_assert_eq!(got, want, "insert {:#x}", addr);
                }
            }
        }
    }

    /// Residency never exceeds capacity, and hit+miss counts add up.
    #[test]
    fn capacity_and_counters_are_consistent(ops in arb_ops()) {
        let mut sut = SetAssocCache::<u32>::new(8 * 2 * 64, 2, 1);
        let mut accesses = 0u64;
        for op in ops {
            match op {
                Op::Access(addr) => {
                    accesses += 1;
                    let _ = sut.access(addr);
                }
                Op::Insert(addr, v) => {
                    let _ = sut.insert(addr, v, false);
                }
            }
            prop_assert!(sut.resident_lines() <= 16);
        }
        prop_assert_eq!(sut.stats.accesses(), accesses);
    }
}
