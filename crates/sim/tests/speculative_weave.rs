//! Integration tests of the speculative weave (DESIGN.md §15): the
//! optimistic parallel weave must be bit-identical to the serial
//! round-robin weave on every workload — committed epochs and
//! re-executed residue alike — and its abort accounting must reconcile.
//!
//! Two property arms:
//!
//! * **zero-conflict** — every core's weave traffic lands in its own
//!   directory bank (addresses chosen so `bank_of` never collides), so
//!   every attempted epoch validates and commits: zero aborts, zero
//!   residue.
//! * **high-conflict** — every core hammers one hot line, so claims
//!   collide and ownership is remote: epochs abort and the serial
//!   residue re-execution must reproduce the serial run exactly.

use califorms_sim::multicore::{MulticoreConfig, MulticoreEngine, MulticoreOutcome};
use califorms_sim::{TraceOp, LINE_BYTES};

/// Directory-bank count of the westmere shared levels (`bank_of` is
/// `(line / 64) % 8`).
const BANKS: u64 = 8;

fn run(cfg: MulticoreConfig, shards: Vec<Vec<TraceOp>>) -> MulticoreOutcome {
    MulticoreEngine::new(cfg).run(shards)
}

/// Asserts a speculative run is bit-identical to its serial twin after
/// masking the spec-only bookkeeping counters.
fn assert_matches_serial(spec: &MulticoreOutcome, serial: &MulticoreOutcome) {
    assert_eq!(spec.exceptions, serial.exceptions, "exceptions diverged");
    assert_eq!(
        spec.stats.per_core, serial.stats.per_core,
        "per-core stats diverged"
    );
    assert_eq!(
        spec.stats.combined, serial.stats.combined,
        "combined stats diverged"
    );
    assert_eq!(
        spec.stats.weave, serial.stats.weave,
        "weave breakdown diverged"
    );
    assert_eq!(
        spec.stats.runtime.without_spec(),
        serial.stats.runtime.without_spec(),
        "runtime counters diverged"
    );
    assert_eq!(
        serial.stats.runtime.spec_epochs, 0,
        "serial runs must never attempt an epoch"
    );
}

/// Core `c` touches only lines congruent to `c` mod [`BANKS`]: its
/// entire weave stream stays inside directory bank `c`, and no two
/// cores ever share a line or a bank.
fn bank_disjoint_shard(core: u64, n: u64) -> Vec<TraceOp> {
    let base = 0x5000_0000;
    let mut ops = Vec::new();
    for i in 0..n {
        let addr = base + (i * BANKS + core) * LINE_BYTES;
        ops.push(TraceOp::Load { addr, size: 8 });
        if i % 3 == 0 {
            ops.push(TraceOp::Store { addr, size: 8 });
        }
        ops.push(TraceOp::Exec(8));
    }
    ops
}

/// Every core stores to the same single hot line every transaction —
/// claims collide on its bank and ownership bounces core to core, so a
/// speculative epoch can essentially never validate.
fn hot_line_shard(core: u64, n: u64) -> Vec<TraceOp> {
    let hot = 0x6000_0000u64;
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(TraceOp::Store {
            addr: hot + (core % 8) * 8,
            size: 8,
        });
        ops.push(TraceOp::Exec((i % 13) as u32 + 1));
    }
    ops
}

#[test]
fn bank_disjoint_workload_commits_every_epoch() {
    for cores in [2usize, 4] {
        let shards = || {
            (0..cores as u64)
                .map(|c| bank_disjoint_shard(c, 3_000))
                .collect::<Vec<_>>()
        };
        let serial = run(MulticoreConfig::westmere(cores), shards());
        let spec = run(
            MulticoreConfig::westmere(cores).with_speculative_weave(),
            shards(),
        );
        assert_matches_serial(&spec, &serial);

        let rt = &spec.stats.runtime;
        assert!(rt.spec_epochs > 0, "cores={cores}: no epoch was attempted");
        assert_eq!(rt.spec_aborts, 0, "cores={cores}: disjoint banks abort");
        assert_eq!(rt.spec_commits, rt.spec_epochs, "cores={cores}");
        assert_eq!(
            rt.spec_residue_transactions, 0,
            "cores={cores}: committed epochs leave no residue"
        );
        assert!(
            rt.weave_transactions > 0,
            "cores={cores}: the workload must actually weave"
        );
    }
}

#[test]
fn hot_line_conflicts_abort_and_residue_reproduces_serial() {
    for cores in [2usize, 4] {
        let shards = || {
            (0..cores as u64)
                .map(|c| hot_line_shard(c, 2_000))
                .collect::<Vec<_>>()
        };
        let serial = run(MulticoreConfig::westmere(cores), shards());
        let spec = run(
            MulticoreConfig::westmere(cores).with_speculative_weave(),
            shards(),
        );
        assert_matches_serial(&spec, &serial);

        let rt = &spec.stats.runtime;
        assert!(rt.spec_epochs > 0, "cores={cores}: no epoch was attempted");
        assert!(
            rt.spec_aborts > 0,
            "cores={cores}: one hot line must conflict"
        );
        assert!(
            rt.spec_residue_transactions > 0,
            "cores={cores}: aborted epochs re-execute serially as residue"
        );
        assert_eq!(rt.spec_epochs, rt.spec_commits + rt.spec_aborts);
    }
}

#[test]
fn speculation_is_off_by_default_and_counters_stay_zero() {
    let shards: Vec<_> = (0..2).map(|c| bank_disjoint_shard(c, 500)).collect();
    let out = run(MulticoreConfig::westmere(2), shards);
    let rt = &out.stats.runtime;
    assert_eq!(
        (
            rt.spec_epochs,
            rt.spec_commits,
            rt.spec_aborts,
            rt.spec_residue_transactions
        ),
        (0, 0, 0, 0)
    );
}

/// The mixed case: shared *and* private traffic, several quanta, both
/// weave batch depths — commits and aborts interleave and the result
/// stays bit-identical to serial.
#[test]
fn mixed_sharing_matches_serial_at_both_weave_batches() {
    let shard = |core: u64| -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for i in 0..2_500u64 {
            match i % 5 {
                // Shared hot lines (conflicts).
                0 | 1 => ops.push(TraceOp::Load {
                    addr: 0x7000_0000 + (i % 4) * LINE_BYTES,
                    size: 8,
                }),
                // Private stride (conflict-free weave traffic).
                2 => ops.push(TraceOp::Store {
                    addr: 0x8000_0000 + core * 0x100_0000 + i * LINE_BYTES,
                    size: 8,
                }),
                _ => ops.push(TraceOp::Exec((i % 9) as u32 + 1)),
            }
        }
        ops
    };
    for batch in [1u32, 64] {
        let shards = || (0..4u64).map(shard).collect::<Vec<_>>();
        let serial = run(
            MulticoreConfig::westmere(4).with_weave_batch(batch),
            shards(),
        );
        let spec = run(
            MulticoreConfig::westmere(4)
                .with_weave_batch(batch)
                .with_speculative_weave(),
            shards(),
        );
        assert_matches_serial(&spec, &serial);
        assert!(spec.stats.runtime.spec_epochs > 0, "batch={batch}");
    }
}
