//! Integration tests of the engine-wide telemetry (DESIGN.md §13):
//! instrumentation must never perturb simulation results, counter
//! snapshots must be byte-identical across runs and across packed vs
//! unpacked replay (modulo the pack-only `decode.*` family), the span
//! timeline of a 4-core run must cover bound/weave/barrier on every core
//! track, and the per-core/per-shard weave breakdown must sum back to the
//! aggregate runtime counters.

use califorms_sim::multicore::{MulticoreConfig, MulticoreEngine};
use califorms_sim::{Engine, TraceOp, TracePack, LINE_BYTES};
use califorms_telemetry::Phase;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Shards mixing shared and private traffic so every core both commits
/// bound work and drives weave transactions through every directory
/// shard.
fn contended_shards(cores: u64, n: usize) -> Vec<Vec<TraceOp>> {
    const SHARED: u64 = 0x9000_0000;
    (0..cores)
        .map(|core| {
            let mut s = 0xC0FFEE ^ core.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..n)
                .map(|_| {
                    let x = xorshift(&mut s);
                    let shared = SHARED + (x >> 8) % 512 * LINE_BYTES + (x >> 24) % 8 * 8;
                    match x % 8 {
                        0..=3 => TraceOp::Load {
                            addr: shared,
                            size: 8,
                        },
                        4..=5 => TraceOp::Store {
                            addr: shared,
                            size: 8,
                        },
                        6 => TraceOp::Store {
                            addr: 0xA000_0000 + core * 0x10_0000 + (x >> 16) % 4096 * 8,
                            size: 8,
                        },
                        _ => TraceOp::Exec((x % 16) as u32),
                    }
                })
                .collect()
        })
        .collect()
}

fn instrumented(cores: usize) -> MulticoreConfig {
    MulticoreConfig::westmere(cores)
        .with_quantum(2_000.0)
        .with_telemetry()
}

#[test]
fn telemetry_never_perturbs_results() {
    let shards = contended_shards(4, 6_000);
    let off = MulticoreEngine::new(MulticoreConfig::westmere(4).with_quantum(2_000.0))
        .run(shards.clone());
    let on = MulticoreEngine::new(instrumented(4)).run(shards);
    assert_eq!(on.stats, off.stats, "telemetry changed simulated results");
    assert_eq!(on.exceptions, off.exceptions);
    assert!(off.telemetry.is_none(), "disabled run must carry no report");
    assert!(on.telemetry.is_some(), "enabled run must carry the report");
}

#[test]
fn four_core_run_emits_spans_on_every_core_track() {
    let out = MulticoreEngine::new(instrumented(4)).run(contended_shards(4, 6_000));
    let report = out.telemetry.expect("telemetry enabled");
    assert_eq!(report.dropped_spans, 0);

    for core in 0..4u32 {
        let has = |phase: Phase| {
            report
                .spans
                .iter()
                .any(|s| s.track == core && s.phase == phase)
        };
        assert!(has(Phase::Bound), "core {core} has no bound span");
        assert!(has(Phase::Weave), "core {core} has no weave span");
        assert!(has(Phase::Barrier), "core {core} has no barrier span");
    }
    // The aggregate runtime track sits after the core tracks and carries
    // one bound/barrier/weave triple per quantum.
    let runtime_track = 4u32;
    for phase in [Phase::Bound, Phase::Barrier, Phase::Weave] {
        let n = report
            .spans
            .iter()
            .filter(|s| s.track == runtime_track && s.phase == phase)
            .count() as u64;
        assert_eq!(n, out.stats.runtime.quanta, "runtime {phase:?} spans");
    }
    let mut names = report.track_names.clone();
    names.sort_unstable();
    assert_eq!(
        names,
        vec![
            (0, "core 0".to_string()),
            (1, "core 1".to_string()),
            (2, "core 2".to_string()),
            (3, "core 3".to_string()),
            (4, "runtime".to_string()),
        ]
    );
    // Host-time latency histograms were fed by the same spans.
    assert!(report.weave_turn_ns.count() > 0);
    assert!(report.weave_batch_sizes.count() > 0);
}

#[test]
fn counter_snapshots_are_byte_identical_across_runs() {
    let shards = contended_shards(4, 6_000);
    let snap = |shards: Vec<Vec<TraceOp>>| {
        MulticoreEngine::new(instrumented(4))
            .run(shards)
            .telemetry
            .expect("telemetry enabled")
            .counters
    };
    let a = snap(shards.clone());
    let b = snap(shards);
    assert_eq!(a.diff(&b), Vec::<String>::new());
    assert_eq!(a.to_bytes(), b.to_bytes(), "snapshots must be byte-equal");
}

#[test]
fn packed_replay_matches_unpacked_on_all_shared_counter_families() {
    let shards = contended_shards(4, 6_000);
    let packs: Vec<TracePack> = shards
        .iter()
        .map(|s| TracePack::from_ops(s.iter().copied()))
        .collect();
    let total_ops: u64 = shards.iter().map(|s| s.len() as u64).sum();
    let unpacked = MulticoreEngine::new(instrumented(4)).run(shards);
    let packed = MulticoreEngine::new(instrumented(4)).run_packs(&packs);
    assert_eq!(packed.stats, unpacked.stats, "packed replay diverged");
    assert_eq!(packed.exceptions, unpacked.exceptions);

    let pc = packed.telemetry.unwrap().counters;
    let uc = unpacked.telemetry.unwrap().counters;
    // The snapshots may differ ONLY in the pack-side decode progress.
    for d in pc.diff(&uc) {
        assert!(
            d.starts_with("decode."),
            "non-decode counter diverged between packed and unpacked: {d}"
        );
    }
    assert!(uc.total("decode.ops").is_none());
    assert_eq!(
        pc.total("decode.ops"),
        Some(total_ops),
        "every op came out of a decoder lane"
    );
}

#[test]
fn weave_breakdown_sums_match_the_aggregate_runtime_counters() {
    let out = MulticoreEngine::new(instrumented(4)).run(contended_shards(4, 6_000));
    let rt = &out.stats.runtime;
    let wb = &out.stats.weave;

    assert_eq!(wb.per_core.len(), 4);
    let sum = |f: fn(&califorms_sim::stats::CoreWeaveStats) -> u64| {
        wb.per_core.iter().map(f).sum::<u64>()
    };
    assert_eq!(sum(|c| c.turns), rt.weave_turns);
    assert_eq!(sum(|c| c.transactions), rt.weave_transactions);
    assert_eq!(sum(|c| c.batched), rt.batched_transactions);
    assert_eq!(sum(|c| c.contended), rt.contended_transactions);

    // Every weave transaction lands on exactly one directory shard.
    assert!(!wb.per_shard.is_empty());
    let shard_sum = |f: fn(&califorms_sim::stats::ShardWeaveStats) -> u64| {
        wb.per_shard.iter().map(f).sum::<u64>()
    };
    assert_eq!(shard_sum(|s| s.transactions), rt.weave_transactions);
    assert_eq!(shard_sum(|s| s.batched), rt.batched_transactions);
    assert_eq!(shard_sum(|s| s.contended), rt.contended_transactions);

    // The host-time weave breakdown covers the same axes: one wall-clock
    // slice per core, one sample per quantum.
    let tb = &out.timing.weave_breakdown;
    assert_eq!(tb.per_core_s.len(), 4);
    assert_eq!(
        tb.per_quantum_s.len() as u64 + tb.quantum_samples_dropped,
        rt.quanta
    );
}

/// The weave-turn accounting invariants (DESIGN.md §15), asserted on
/// both the serial and the speculative weave:
///
/// 1. `rt.weave_turns == Σ core.weave.turns` — every turn is tallied on
///    exactly one core.
/// 2. `rt.weave_transactions == Σ core.weave.transactions ==
///    Σ shard.transactions == weave_batch_sizes.sum()` — every
///    transaction lands on one core, one directory shard, and one
///    batch-size sample.
/// 3. A turn committing `k ≥ 1` transactions tallies `k − 1` batched
///    ones, so `weave_transactions − batched_transactions` equals the
///    number of non-empty turns — which is exactly
///    `weave_batch_sizes.count()`, and never exceeds `weave_turns`
///    (turns may progress local replay without committing a txn).
#[test]
fn weave_turn_accounting_reconciles_across_all_views() {
    for speculative in [false, true] {
        let mut cfg = instrumented(4);
        if speculative {
            cfg = cfg.with_speculative_weave();
        }
        let out = MulticoreEngine::new(cfg).run(contended_shards(4, 6_000));
        let rt = &out.stats.runtime;
        let wb = &out.stats.weave;
        let hist = &out
            .telemetry
            .as_ref()
            .expect("telemetry enabled")
            .weave_batch_sizes;

        let core_turns: u64 = wb.per_core.iter().map(|c| c.turns).sum();
        let core_txns: u64 = wb.per_core.iter().map(|c| c.transactions).sum();
        let shard_txns: u64 = wb.per_shard.iter().map(|s| s.transactions).sum();
        assert_eq!(core_turns, rt.weave_turns, "speculative={speculative}");
        assert_eq!(
            core_txns, rt.weave_transactions,
            "speculative={speculative}"
        );
        assert_eq!(
            shard_txns, rt.weave_transactions,
            "speculative={speculative}"
        );
        assert_eq!(
            hist.sum(),
            u128::from(rt.weave_transactions),
            "speculative={speculative}: every transaction is in one sample"
        );

        let nonempty_turns = rt.weave_transactions - rt.batched_transactions;
        assert_eq!(
            hist.count(),
            nonempty_turns,
            "speculative={speculative}: one sample per non-empty turn"
        );
        assert!(
            nonempty_turns <= rt.weave_turns,
            "speculative={speculative}: non-empty turns are a subset of turns"
        );
        assert!(
            rt.weave_transactions > 0,
            "speculative={speculative}: the workload must weave"
        );
    }
}

#[test]
fn counters_and_spans_cover_a_single_core_packed_replay() {
    let ops: Vec<TraceOp> = (0..5_000)
        .map(|i| TraceOp::Load {
            addr: (i * 4099) % (1 << 20),
            size: 8,
        })
        .collect();
    let pack = TracePack::from_ops(ops.iter().copied());
    let plain = Engine::westmere().run_pack(&pack);
    let (out, report) = Engine::westmere().run_pack_telemetry(&pack);
    assert_eq!(out.stats, plain.stats);
    assert_eq!(report.counters.total("decode.ops"), Some(ops.len() as u64));
    assert_eq!(
        report.counters.total("l1d.hits"),
        Some(plain.stats.l1d.hits)
    );
    assert!(report.spans.iter().any(|s| s.phase == Phase::Decode));
    assert!(report.spans.iter().any(|s| s.phase == Phase::Bound));
}
