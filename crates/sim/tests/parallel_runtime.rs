//! Integration tests of the parallel replay runtime (DESIGN.md §10):
//! bit-identical determinism across quantum sizes (fixed, short,
//! adaptive) and weave batching depths, per-core pack replay
//! equivalence, and the zero-cross-core-coherence guarantee for
//! disjoint working sets.

use califorms_sim::multicore::{MulticoreConfig, MulticoreEngine, MulticoreOutcome};
use califorms_sim::{QuantumSizing, TraceOp, TracePack, LINE_BYTES};

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A pseudo-random shard mixing shared loads/stores, private traffic,
/// `CFORM`s and compute — enough entropy that any scheduling leak in the
/// runtime would show up as diverging stats.
fn chaotic_shard(core: u64, seed: u64, n: usize) -> Vec<TraceOp> {
    const SHARED: u64 = 0x9000_0000;
    let mut s = seed ^ core.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let x = xorshift(&mut s);
        let shared_addr = SHARED + (x >> 8) % 256 * LINE_BYTES + (x >> 24) % 8 * 8;
        match x % 10 {
            0..=4 => ops.push(TraceOp::Load {
                addr: shared_addr,
                size: 8,
            }),
            5..=6 => ops.push(TraceOp::Store {
                addr: shared_addr,
                size: 8,
            }),
            7 => ops.push(TraceOp::Store {
                addr: 0xA000_0000 + core * 0x10_0000 + (x >> 16) % 4096 * 8,
                size: 8,
            }),
            8 => ops.push(TraceOp::Exec((x % 24) as u32)),
            _ => ops.push(TraceOp::Cform {
                line_addr: SHARED + (x >> 8) % 256 * LINE_BYTES,
                attrs: 1 << (x % 64),
                mask: 1 << (x % 64),
            }),
        }
    }
    ops
}

fn chaotic_shards(cores: u64, seed: u64, n: usize) -> Vec<Vec<TraceOp>> {
    (0..cores).map(|c| chaotic_shard(c, seed, n)).collect()
}

/// A per-core streaming shard over a private region `c * 16 MB` apart:
/// loads sweep lines, stores dirty every fourth line, nothing is ever
/// shared.
fn disjoint_shard(core: u64, lines: u64) -> Vec<TraceOp> {
    let base = 0x4000_0000 + core * 0x100_0000;
    let mut ops = Vec::with_capacity(lines as usize * 2);
    for i in 0..lines {
        let addr = base + i * LINE_BYTES;
        ops.push(TraceOp::Load { addr, size: 8 });
        if i % 4 == 0 {
            ops.push(TraceOp::Store {
                addr: addr + 8,
                size: 8,
            });
        }
        ops.push(TraceOp::Exec(6));
    }
    ops
}

fn assert_identical(a: &MulticoreOutcome, b: &MulticoreOutcome) {
    assert_eq!(a.stats, b.stats, "stats (incl. runtime counters) diverged");
    assert_eq!(a.exceptions, b.exceptions, "exception lists diverged");
}

#[test]
fn determinism_holds_across_quantum_sizings() {
    let configs: [(&str, MulticoreConfig); 3] = [
        (
            "1k fixed",
            MulticoreConfig::westmere(4).with_quantum(1_000.0),
        ),
        ("10k fixed", MulticoreConfig::westmere(4)),
        (
            "adaptive",
            MulticoreConfig::westmere(4).with_adaptive_quantum(),
        ),
    ];
    for (name, cfg) in configs {
        let run = || MulticoreEngine::new(cfg).run(chaotic_shards(4, 0xDEAD_BEEF, 3_000));
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats, "{name}: runs must be bit-identical");
        assert_eq!(a.exceptions, b.exceptions, "{name}");
        assert!(
            a.stats.runtime.quanta > 0 && a.stats.runtime.weave_transactions > 0,
            "{name}: the machine must actually have run"
        );
    }
}

#[test]
fn weave_batching_depths_are_each_deterministic() {
    for batch in [1u32, 8, 64] {
        let cfg = MulticoreConfig::westmere(2).with_weave_batch(batch);
        let run = || MulticoreEngine::new(cfg).run(chaotic_shards(2, 99, 2_000));
        assert_identical(&run(), &run());
    }
    // batch == 1 reproduces the strict one-transaction-per-turn weave:
    // no transaction ever rides another's turn.
    let strict = MulticoreEngine::new(MulticoreConfig::westmere(2).with_weave_batch(1))
        .run(chaotic_shards(2, 99, 2_000));
    assert_eq!(strict.stats.runtime.batched_transactions, 0);
}

#[test]
fn disjoint_working_sets_need_zero_cross_core_coherence() {
    let shards: Vec<_> = (0..4).map(|c| disjoint_shard(c, 2_000)).collect();
    let out = MulticoreEngine::new(MulticoreConfig::westmere(4)).run(shards);
    // Every miss is private: the weave orders transactions but never
    // arbitrates between cores.
    let coh = &out.stats.combined.coherence;
    assert_eq!(coh.invalidations, 0, "disjoint sets never invalidate");
    assert_eq!(coh.cache_to_cache_transfers, 0);
    assert_eq!(coh.upgrades_s_to_m, 0, "no line is ever Shared");
    assert_eq!(
        out.stats.runtime.contended_transactions, 0,
        "no weave transaction may involve a second core"
    );
    assert!(
        out.stats.runtime.batched_transactions > 0,
        "private miss runs must batch into shared weave turns"
    );
    // And the run completed: every shard's memory ops were committed.
    assert_eq!(
        out.stats.combined.loads + out.stats.combined.stores,
        4 * (2_000 + 500),
        "all ops committed"
    );
}

#[test]
fn per_core_packs_replay_bit_identically() {
    for cores in [1usize, 2, 4] {
        let shards: Vec<_> = (0..cores as u64).map(|c| disjoint_shard(c, 500)).collect();
        let packs: Vec<TracePack> = shards
            .iter()
            .map(|s| TracePack::from_ops(s.iter().copied()))
            .collect();
        let unpacked = MulticoreEngine::new(MulticoreConfig::westmere(cores)).run(shards);
        let packed = MulticoreEngine::new(MulticoreConfig::westmere(cores)).run_packs(&packs);
        assert_identical(&unpacked, &packed);
    }
}

#[test]
fn adaptive_quantum_grows_over_coherence_free_runs() {
    let fixed_cfg = MulticoreConfig::westmere(2);
    let adaptive_cfg = MulticoreConfig::westmere(2).with_adaptive_quantum();
    assert!(matches!(
        adaptive_cfg.runtime.quantum_sizing,
        QuantumSizing::Adaptive { .. }
    ));
    let shards = || (0..2).map(|c| disjoint_shard(c, 4_000)).collect::<Vec<_>>();
    let fixed = MulticoreEngine::new(fixed_cfg).run(shards());
    let adaptive = MulticoreEngine::new(adaptive_cfg).run(shards());
    // No coherence traffic → the quantum doubles up to 16x → far fewer
    // barriers for the same simulated work.
    assert!(
        adaptive.stats.runtime.quanta < fixed.stats.runtime.quanta,
        "adaptive ({}) must cross fewer barriers than fixed ({})",
        adaptive.stats.runtime.quanta,
        fixed.stats.runtime.quanta
    );
    // Architectural results are unaffected by quantum sizing here: with
    // no cross-core traffic, per-core replay is quantum-invariant.
    assert_eq!(adaptive.stats.combined.loads, fixed.stats.combined.loads);
    assert_eq!(adaptive.stats.combined.cycles, fixed.stats.combined.cycles);
}

/// Regression: the empty-quantum fast-forward must handle a core whose
/// cycle count lands **exactly** on a quantum boundary. Cores run while
/// `cycles < quantum_end`, so `cycles == quantum_end` cannot run in that
/// quantum and the skip must step one boundary further — an off-by-one
/// in either direction shows up as a wrong `rt.quanta`.
///
/// Westmere's 4-wide core makes `Exec(4n)` cost exactly `n` cycles, so
/// the landing point is exact in f64 (small integers).
#[test]
fn fast_forward_handles_a_trace_landing_exactly_on_the_boundary() {
    let cfg = MulticoreConfig::westmere(2).with_quantum(1_000.0);
    // Core 0 commits one huge Exec landing exactly on a boundary, then
    // one trailing instruction; core 1 finishes in the first quantum.
    for boundary_cycles in [2_000u64, 5_000, 1_000_000] {
        let shards = vec![
            vec![
                TraceOp::Exec((boundary_cycles * 4) as u32),
                TraceOp::Exec(4),
            ],
            vec![TraceOp::Exec(4)],
        ];
        let out = MulticoreEngine::new(cfg).run(shards);
        // Quantum 1 runs the huge Exec (and all of core 1); every
        // boundary it sails over is skipped — `cycles == quantum_end`
        // is *not* runnable, so the landing boundary is skipped too —
        // and exactly one more quantum commits the trailing Exec.
        assert_eq!(
            out.stats.runtime.quanta, 2,
            "boundary_cycles={boundary_cycles}: empty quanta must be \
             fast-forwarded, including the exact-landing one"
        );
        assert_eq!(
            out.stats.combined.cycles,
            boundary_cycles as f64 + 1.0,
            "boundary_cycles={boundary_cycles}"
        );
        assert_eq!(out.stats.combined.instructions, boundary_cycles * 4 + 4 + 4);
    }
    // One cycle short of the boundary: the landing quantum *is*
    // runnable, so nothing extra is skipped and the count is identical.
    let shards = vec![
        vec![TraceOp::Exec(2_000 * 4 - 4), TraceOp::Exec(4)],
        vec![TraceOp::Exec(4)],
    ];
    let out = MulticoreEngine::new(cfg).run(shards);
    assert_eq!(out.stats.runtime.quanta, 2);
    assert_eq!(out.stats.combined.cycles, 2_000.0);
}

#[test]
fn barrier_waits_track_quanta_and_cores() {
    for cores in [2usize, 4] {
        let out = MulticoreEngine::new(MulticoreConfig::westmere(cores)).run(chaotic_shards(
            cores as u64,
            5,
            1_000,
        ));
        assert_eq!(
            out.stats.runtime.barrier_waits,
            out.stats.runtime.quanta * cores as u64
        );
        assert!(out.timing.bound_s >= 0.0 && out.timing.weave_s >= 0.0);
    }
}
