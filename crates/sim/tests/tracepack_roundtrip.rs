//! Property tests of the `tracepack` wire format: encode → decode is the
//! identity for arbitrary valid traces, through both the in-memory pack
//! and the streaming writer/reader, one op at a time and in batches.

use califorms_sim::tracepack::{TracePack, TracePackReader, TracePackWriter};
use califorms_sim::TraceOp;
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        any::<u32>().prop_map(TraceOp::Exec),
        (any::<u64>(), 1u8..=64).prop_map(|(addr, size)| TraceOp::Load { addr, size }),
        (any::<u64>(), 1u8..=64).prop_map(|(addr, size)| TraceOp::Store { addr, size }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, attrs, mask)| TraceOp::Cform {
            line_addr: a & !63,
            attrs,
            mask,
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, attrs, mask)| {
            TraceOp::CformNt {
                line_addr: a & !63,
                attrs,
                mask,
            }
        }),
        Just(TraceOp::MaskPush),
        Just(TraceOp::MaskPop),
    ]
}

proptest! {
    /// In-memory round trip: `from_ops` → `to_vec` is the identity, and
    /// re-parsing the serialised bytes yields the same pack.
    #[test]
    fn pack_round_trip_is_identity(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let pack = TracePack::from_ops(ops.iter().copied());
        prop_assert_eq!(pack.len_ops(), ops.len() as u64);
        prop_assert_eq!(pack.to_vec(), ops);
        let reparsed = TracePack::from_bytes(pack.bytes().to_vec()).unwrap();
        prop_assert_eq!(reparsed.to_vec(), pack.to_vec());
    }

    /// Streaming round trip: writer → reader over an `io` boundary equals
    /// the original, and the streaming bytes equal the in-memory bytes.
    #[test]
    fn streaming_round_trip_is_identity(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut w = TracePackWriter::new(Vec::new()).unwrap();
        for &op in &ops {
            w.write_op(op).unwrap();
        }
        let bytes = w.finish().unwrap();
        let in_memory = TracePack::from_ops(ops.iter().copied());
        prop_assert_eq!(bytes.as_slice(), in_memory.bytes());

        let mut r = TracePackReader::new(bytes.as_slice()).unwrap();
        let mut got = Vec::new();
        while let Some(op) = r.next_op().unwrap() {
            got.push(op);
        }
        prop_assert_eq!(got, ops);
    }

    /// Batch decoding at any batch size yields the same op sequence as
    /// one-at-a-time decoding.
    #[test]
    fn batch_decode_is_batch_size_invariant(
        ops in proptest::collection::vec(arb_op(), 0..200),
        batch in 1usize..17,
    ) {
        let pack = TracePack::from_ops(ops.iter().copied());
        let mut dec = pack.decoder();
        let mut buf = vec![TraceOp::Exec(0); batch];
        let mut got = Vec::new();
        loop {
            let n = dec.next_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, ops);
    }
}
