//! Packed replay is bit-identical to unpacked replay: the same trace run
//! through `Engine::run` (iterator over a `Vec<TraceOp>`) and through
//! `Engine::run_pack` (batch-decoded from the binary pack) must produce
//! the same stats — every counter and every cycle — and the same
//! exception list; likewise for `MulticoreEngine::run` vs `run_pack`
//! under the deterministic round-robin sharding.

use califorms_sim::multicore::shard_ops;
use califorms_sim::tracepack::TracePack;
use califorms_sim::{Engine, MulticoreConfig, MulticoreEngine, TraceOp};
use proptest::prelude::*;

/// A trace shaped like real workload output: mixed strided loads/stores,
/// CFORMs installing and removing spans, mask windows, exec gaps — and
/// rogue accesses so the exception path is exercised too.
fn mixed_trace(ops: usize, seed: u64) -> Vec<TraceOp> {
    mixed_trace_with(ops, seed, true)
}

/// `with_masks = false` yields a shard-safe trace: round-robin sharding
/// sends each op to a different core, so `MaskPush`/`MaskPop` pairs would
/// split across cores and unbalance their per-core mask stacks (see the
/// `shard_ops` docs).
fn mixed_trace_with(ops: usize, seed: u64, with_masks: bool) -> Vec<TraceOp> {
    let mut state = seed | 1;
    let mut roll = move |m: u64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % m
    };
    let mut trace = Vec::with_capacity(ops);
    let mut mask_depth = 0u32;
    for i in 0..ops {
        let addr = 0x10_0000 + roll(1 << 16);
        trace.push(match roll(100) {
            0..=39 => TraceOp::Load {
                addr,
                size: 1 << roll(4),
            },
            40..=69 => TraceOp::Store {
                addr,
                size: 1 << roll(4),
            },
            70..=79 => TraceOp::Exec(roll(40) as u32),
            80..=86 => TraceOp::Cform {
                line_addr: addr & !63,
                attrs: 0x7F << 56,
                mask: 0x7F << 56,
            },
            87..=91 => TraceOp::CformNt {
                line_addr: addr & !63,
                attrs: 0,
                mask: 0x7F << 56,
            },
            92..=94 if with_masks => {
                mask_depth += 1;
                TraceOp::MaskPush
            }
            95..=97 if with_masks && mask_depth > 0 => {
                mask_depth -= 1;
                TraceOp::MaskPop
            }
            92..=97 => TraceOp::Exec(1),
            // Rogue probe into the span tail: may fault, exercising the
            // exception list equality.
            _ => TraceOp::Load {
                addr: (addr & !63) + 56 + roll(7),
                size: 1,
            },
        });
        // Periodic line-crossing accesses.
        if i % 97 == 0 {
            trace.push(TraceOp::Load {
                addr: (addr & !63) + 60,
                size: 8,
            });
        }
    }
    trace
}

#[test]
fn packed_single_core_replay_is_bit_identical() {
    let trace = mixed_trace(20_000, 7);
    let pack = TracePack::from_ops(trace.iter().copied());
    assert_eq!(pack.len_ops() as usize, trace.len());

    let unpacked = Engine::westmere().run(trace.iter().copied());
    let packed = Engine::westmere().run_pack(&pack);
    assert_eq!(unpacked.stats, packed.stats);
    assert_eq!(unpacked.exceptions, packed.exceptions);
    assert!(
        unpacked.stats.exceptions_delivered > 0,
        "the trace must exercise the exception path for the comparison to mean anything"
    );
}

#[test]
fn streamed_reader_replay_is_bit_identical() {
    use califorms_sim::tracepack::{TracePackReader, TracePackWriter};
    let trace = mixed_trace(5_000, 11);
    let mut w = TracePackWriter::new(Vec::new()).unwrap();
    for &op in &trace {
        w.write_op(op).unwrap();
    }
    let bytes = w.finish().unwrap();

    let unpacked = Engine::westmere().run(trace.iter().copied());
    let mut reader = TracePackReader::new(bytes.as_slice()).unwrap();
    let streamed = Engine::westmere().run_reader(&mut reader).unwrap();
    assert_eq!(unpacked.stats, streamed.stats);
    assert_eq!(unpacked.exceptions, streamed.exceptions);
}

#[test]
fn packed_multicore_replay_is_bit_identical() {
    for cores in [1usize, 2, 4] {
        let trace = mixed_trace_with(8_000, 13, false);
        let pack = TracePack::from_ops(trace.iter().copied());

        let unpacked = MulticoreEngine::new(MulticoreConfig::westmere(cores))
            .run(shard_ops(trace.iter().copied(), cores));
        let packed = MulticoreEngine::new(MulticoreConfig::westmere(cores)).run_pack(&pack);
        assert_eq!(
            unpacked.stats.combined, packed.stats.combined,
            "combined stats must match at {cores} cores"
        );
        assert_eq!(unpacked.stats.per_core, packed.stats.per_core);
        assert_eq!(unpacked.exceptions, packed.exceptions);
    }
}

#[test]
fn shard_ops_round_robin_is_deterministic_and_complete() {
    let trace = mixed_trace(1_000, 3);
    let shards = shard_ops(trace.iter().copied(), 3);
    assert_eq!(shards.len(), 3);
    assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), trace.len());
    // Op i lands on core i % 3.
    for (i, &op) in trace.iter().enumerate() {
        assert_eq!(shards[i % 3][i / 3], op);
    }
    assert_eq!(shards, shard_ops(trace.iter().copied(), 3));
}

proptest! {
    /// Bit-identity holds for arbitrary (valid) random traces, not just
    /// the hand-shaped mix above.
    #[test]
    fn packed_replay_matches_for_random_traces(seed in any::<u64>()) {
        let trace = mixed_trace(2_000, seed);
        let pack = TracePack::from_ops(trace.iter().copied());
        let unpacked = Engine::westmere().run(trace.iter().copied());
        let packed = Engine::westmere().run_pack(&pack);
        prop_assert_eq!(unpacked.stats, packed.stats);
        prop_assert_eq!(unpacked.exceptions, packed.exceptions);
    }
}
