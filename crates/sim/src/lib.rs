//! # califorms-sim
//!
//! A trace-driven, cycle-accounting simulator of a Westmere-class memory
//! hierarchy with Califorms support — the substitute for the paper's
//! ZSim + Pin evaluation substrate (see DESIGN.md §2 for the substitution
//! argument).
//!
//! The hierarchy is functional, not just a hit/miss counter: the L1 data
//! cache holds lines in *califorms-bitvector* format, the L2/L3/DRAM hold
//! *califorms-sentinel* lines, and every L1 fill/spill actually runs the
//! conversion algorithms from `califorms-core`. Security-byte accesses are
//! detected exactly where the hardware would detect them, and the
//! privileged-exception/whitelisting machinery is exercised end to end.
//!
//! * [`cache`] — generic set-associative, write-back, LRU cache.
//! * [`hierarchy`] — L1D/L2/L3/DRAM with the Table 3 configuration and the
//!   califorms conversion hooks at the L1 boundary.
//! * [`coherence`] — the multi-core extension: a MESI directory over
//!   per-core bitvector-format L1Ds sharing the sentinel-format L2/L3,
//!   with the real spill/fill conversions on every cross-core transfer.
//! * [`multicore`] — parallel sharded trace replay on `std::thread`
//!   workers with a deterministic cycle-quantum barrier.
//! * [`lsq`] — load/store-queue semantics for in-flight `CFORM`s
//!   (Section 5.3): no store-to-load forwarding, zero on match.
//! * [`cpu`] — a simple width/overlap core timing model.
//! * [`trace`] — the memory-access trace representation workloads emit.
//! * [`tracepack`] — the compact varint-delta binary trace format and the
//!   streaming writer/reader the replay hot path batch-decodes from.
//! * [`engine`] — runs a trace through core + hierarchy and produces
//!   [`stats::SimStats`].
//! * [`os`] — OS support (Section 6.3): page swap with 8 B-per-page
//!   metadata preservation, and the un-califorming I/O boundary.
//! * [`checkpoint`] — versioned binary engine-state snapshots for
//!   crash-tolerant replay: checkpoint at quantum boundaries, resume
//!   mid-pack, bit-identical to a straight-through run.
//! * [`telemetry`] — the bridge to `califorms-telemetry`: deterministic
//!   counter snapshots of a run, per-shard lanes, and the span-recording
//!   hooks behind [`multicore::MulticoreConfig::telemetry`].
//! * [`vector`] — the three Appendix B SIMD/vector-load policies.
//! * [`dma`] — califorms-aware vs legacy DMA engines (the Section 7.2
//!   heterogeneous-access hazard).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod coherence;
pub mod cpu;
pub mod dma;
pub mod engine;
pub mod hierarchy;
pub mod lsq;
pub mod multicore;
pub mod os;
pub mod runtime;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod tracepack;
pub mod vector;

pub use checkpoint::CheckpointError;
pub use coherence::{CoherenceConfig, CoherentHierarchy, Mesi};
pub use cpu::CoreConfig;
pub use engine::{Engine, SimOutcome};
pub use hierarchy::{Hierarchy, HierarchyConfig, LineHasher, LineMap};
pub use multicore::{
    shard_ops, FaultPlan, MulticoreConfig, MulticoreEngine, MulticoreOutcome, RunError,
    WorkerPanic, WorkerStall,
};
pub use runtime::{QuantumSizing, RuntimeConfig, RuntimeStats, RuntimeTiming};
pub use stats::{CoherenceStats, MulticoreStats, SimStats};
pub use trace::TraceOp;
pub use tracepack::{TracePack, TracePackError, TracePackReader, TracePackWriter};

/// Cache-line size used throughout (matches `califorms_core::LINE_BYTES`).
pub const LINE_BYTES: u64 = califorms_core::LINE_BYTES as u64;

/// Rounds an address down to its cache-line base.
#[inline]
pub const fn line_base(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Byte offset of an address within its cache line.
#[inline]
pub const fn line_offset(addr: u64) -> usize {
    (addr & (LINE_BYTES - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(63), 0);
        assert_eq!(line_base(64), 64);
        assert_eq!(line_base(0x1234), 0x1200);
        assert_eq!(line_offset(0x1234), 0x34);
        assert_eq!(line_offset(64), 0);
    }
}
