//! The parallel-replay runtime: configuration, deterministic runtime
//! counters, host-side phase timing, and the epoch barrier the persistent
//! worker pool synchronises on (DESIGN.md §10).
//!
//! The multicore engine used to spawn fresh scoped threads every cycle
//! quantum; this module provides the pieces that replace that with one
//! long-lived worker per core:
//!
//! * [`RuntimeConfig`] — weave batching and quantum sizing knobs.
//! * [`RuntimeStats`] — counters derived purely from simulated state
//!   (quanta, weave turns, batched/contended transactions). They are
//!   **bit-identical** across runs and
//!   across packed/unpacked replay, so they ride inside
//!   [`crate::stats::MulticoreStats`] and the determinism assertions.
//! * [`RuntimeTiming`] — host wall-clock per phase (bound / weave /
//!   barrier+bookkeeping). Host timing is scheduling-dependent by nature,
//!   so it lives on [`crate::multicore::MulticoreOutcome`], *outside* the
//!   stats that must compare equal.
//! * [`QuantumBarrier`] — a Mutex/Condvar epoch barrier: the main thread
//!   publishes `(epoch, quantum_end)` to release the workers, each worker
//!   runs its bound phase and reports done; nobody creates or joins a
//!   thread between quanta.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard if the mutex is poisoned instead of
/// propagating a nested panic.
///
/// Mutex poisoning means *some* thread panicked while holding the lock.
/// In the parallel runtime that original panic is always captured
/// independently (the worker loop runs the replay under `catch_unwind`
/// and records it in the panic log, and the weave catches per turn), so
/// the run is already aborting and will surface the root cause as a
/// [`crate::multicore::WorkerPanic`]. Panicking *again* on the poison
/// flag would replace that precise error with a generic "poisoned"
/// message — or, on a worker thread, wedge the quantum barrier. The data
/// behind these locks (barrier counters, `Option` task slots, the panic
/// log `Vec`) stays structurally valid under any interleaving of the
/// panic, so recovering the guard is sound.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the cycle-quantum length evolves over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantumSizing {
    /// The quantum stays at [`crate::multicore::MulticoreConfig::quantum`]
    /// for the whole run — the reproducible default.
    Fixed,
    /// The quantum adapts to observed coherence traffic, within
    /// `[min, max]` cycles: it doubles after a quantum with **zero**
    /// cross-core coherence events (disjoint working sets barely
    /// synchronise) and halves after a quantum with more than
    /// [`ADAPTIVE_SHRINK_THRESHOLD`] of them (contended lines interleave
    /// finely). Decisions read only simulated state, so adaptive runs are
    /// still bit-identical for a given seed and configuration.
    Adaptive {
        /// Smallest quantum the controller may shrink to (cycles).
        min: f64,
        /// Largest quantum the controller may grow to (cycles).
        max: f64,
    },
}

/// Cross-core coherence events per quantum above which an
/// [`QuantumSizing::Adaptive`] quantum halves.
pub const ADAPTIVE_SHRINK_THRESHOLD: u64 = 32;

/// Knobs of the parallel runtime, carried by
/// [`crate::multicore::MulticoreConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Quantum sizing policy (default: [`QuantumSizing::Fixed`], the
    /// pre-existing behaviour, for reproducibility).
    pub quantum_sizing: QuantumSizing,
    /// Most coherence transactions one core may retire in a single weave
    /// turn. A run of *private* transactions (no other core involved)
    /// costs one turn instead of one turn each; a contended transaction
    /// always ends the turn so intra-quantum ping-pong keeps its
    /// transaction-granular round-robin. `1` reproduces the strict
    /// one-transaction-per-turn weave.
    pub weave_batch: u32,
    /// Watchdog deadline for one bound phase: if any worker fails to
    /// reach the quantum barrier within this host-time budget, the run
    /// aborts with a typed [`crate::multicore::WorkerStall`] naming the
    /// core instead of hanging forever. `None` disables the watchdog
    /// (waits become unbounded, the pre-watchdog behaviour). Host wall
    /// clock only — the deadline never perturbs simulated state, so runs
    /// that finish under it stay bit-identical to unwatched runs.
    pub watchdog: Option<Duration>,
    /// Execute weave-phase coherence transactions speculatively in
    /// parallel on the bound-phase workers (DESIGN.md §15): each worker
    /// CAS-claims the banks its transactions touch, executes against
    /// bank clones, and a single-threaded commit point installs the
    /// epoch wholesale when every stream stayed private and the claims
    /// were disjoint — otherwise the whole epoch is rolled back and
    /// re-executed through the serial round-robin weave. Outcomes are
    /// bit-identical to the serial weave either way (only the
    /// `spec_*` counters in [`RuntimeStats`] record that speculation
    /// happened); the knob exists so the oracle can diff the two paths.
    pub speculative_weave: bool,
}

impl RuntimeConfig {
    /// Default batching depth of a weave turn.
    pub const DEFAULT_WEAVE_BATCH: u32 = 64;

    /// Default watchdog deadline per bound phase. Generous: a healthy
    /// bound phase is microseconds-to-milliseconds of host time, so a
    /// 30 s silence can only mean a wedged worker.
    pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            quantum_sizing: QuantumSizing::Fixed,
            weave_batch: Self::DEFAULT_WEAVE_BATCH,
            watchdog: Some(Self::DEFAULT_WATCHDOG),
            speculative_weave: false,
        }
    }
}

/// Deterministic counters of the parallel runtime. Every field is a
/// function of simulated state only — host scheduling cannot perturb
/// them — so they participate in the bit-identity comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Cycle quanta executed (barrier crossings of the whole machine).
    pub quanta: u64,
    /// Worker barrier crossings: `quanta × cores` (each worker waits at
    /// the quantum barrier once per quantum).
    pub barrier_waits: u64,
    /// Weave turns taken (one core's slice of the round-robin in which it
    /// made progress).
    pub weave_turns: u64,
    /// Coherence transactions executed in the weave phase.
    pub weave_transactions: u64,
    /// Weave transactions that rode an earlier transaction's turn — the
    /// savings of [`RuntimeConfig::weave_batch`] over the strict
    /// one-transaction-per-turn weave.
    pub batched_transactions: u64,
    /// Weave transactions that involved another core (recall,
    /// invalidation, cross-core upgrade) and therefore ended their turn.
    /// `weave_transactions − contended_transactions` is the private
    /// traffic the weave merely orders, rather than arbitrates.
    pub contended_transactions: u64,
    /// Quanta in which the speculative weave was attempted
    /// ([`RuntimeConfig::speculative_weave`]). Always
    /// `spec_commits + spec_aborts`. Deterministic: whether an epoch is
    /// attempted and whether it commits are functions of simulated state
    /// only (claim disjointness and stream privacy are
    /// schedule-independent — DESIGN.md §15).
    pub spec_epochs: u64,
    /// Speculative epochs committed wholesale (every stream private,
    /// bank claims pairwise disjoint): the serial weave was skipped.
    pub spec_commits: u64,
    /// Speculative epochs rolled back to the serial round-robin weave.
    pub spec_aborts: u64,
    /// Weave transactions re-executed serially as the residue of an
    /// aborted speculative epoch (a subset of `weave_transactions`).
    pub spec_residue_transactions: u64,
}

impl RuntimeStats {
    /// This stats block with the `spec_*` counters zeroed — the fields a
    /// speculative and a serial run of the same workload must agree on.
    /// The speculative weave changes *whether* epochs were attempted
    /// (recorded in `spec_*`), never what the machine computed, so the
    /// differential oracle compares `without_spec()` across the two
    /// paths and the full struct within one path.
    pub fn without_spec(&self) -> Self {
        Self {
            spec_epochs: 0,
            spec_commits: 0,
            spec_aborts: 0,
            spec_residue_transactions: 0,
            ..*self
        }
    }
}

/// Host wall-clock spent per phase — the breakdown the bench bins emit so
/// scaling regressions are diagnosable from the JSON artifact. Host time
/// is inherently scheduling-dependent, so this lives outside
/// [`RuntimeStats`] and outside every bit-identity comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeTiming {
    /// Seconds in the parallel (bound) phase: from worker release to the
    /// last worker reporting done.
    pub bound_s: f64,
    /// Seconds in the serial (weave) phase on the main thread.
    pub weave_s: f64,
    /// Seconds of barrier bookkeeping: lending/reclaiming per-core
    /// state through the worker slots around each quantum.
    pub barrier_s: f64,
    /// Per-core / per-quantum breakdown of [`Self::weave_s`]. Populated
    /// only on telemetry-enabled runs (empty otherwise — plain runs don't
    /// pay for per-turn clock reads).
    pub weave_breakdown: crate::stats::WeaveTimingBreakdown,
}

/// Outcome of a deadline-bounded barrier wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BarrierWaitError {
    /// The deadline expired with these worker indices still inside their
    /// bound phase.
    Stalled(Vec<usize>),
    /// The barrier was already torn down by an earlier stall; no further
    /// quantum can complete on it.
    TornDown,
}

/// Which phase a barrier release starts on the workers. One simulated
/// quantum crosses the barrier once ([`BarrierPhase::Bound`]) on plain
/// runs and twice (`Bound` then [`BarrierPhase::SpecWeave`]) when the
/// speculative weave is on — the second release runs the optimistic
/// weave streams on the same parked workers before the main thread's
/// single-threaded commit point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BarrierPhase {
    /// Parallel replay of local-completable ops against private L1s.
    Bound,
    /// Speculative parallel weave against per-bank claims.
    SpecWeave,
}

/// State published through the quantum barrier.
#[derive(Debug)]
struct BarrierState {
    /// Bumped once per quantum by the main thread; workers run when they
    /// observe a fresh value.
    epoch: u64,
    /// Quantum boundary (cycles) for the current epoch.
    quantum_end: f64,
    /// Phase the current epoch runs on the workers.
    phase: BarrierPhase,
    /// Per-worker flag: `true` while that worker is still executing the
    /// current bound phase. Tracking workers individually (rather than a
    /// bare count) lets a deadline expiry *name* the stalled cores, and
    /// makes a late `worker_done` after teardown harmless instead of an
    /// underflow.
    pending: Vec<bool>,
    /// Terminates the worker loops.
    stop: bool,
    /// Set by [`QuantumBarrier::tear_down`] after a stall: the barrier is
    /// permanently retired and every entry point returns a typed refusal
    /// (or no-ops) instead of acting on state it no longer owns.
    torn_down: bool,
}

/// Epoch barrier between the main (weave) thread and the persistent
/// bound-phase workers. One `Mutex` + two `Condvar`s; the hot path per
/// quantum is one lock round-trip on each side — no thread is ever
/// created or joined between quanta.
#[derive(Debug)]
pub(crate) struct QuantumBarrier {
    state: Mutex<BarrierState>,
    start: Condvar,
    done: Condvar,
}

impl QuantumBarrier {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(BarrierState {
                epoch: 0,
                quantum_end: 0.0,
                phase: BarrierPhase::Bound,
                pending: Vec::new(),
                stop: false,
                torn_down: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Worker side: parks until the main thread publishes an epoch newer
    /// than `*seen` — returning that epoch's `quantum_end` and which
    /// phase the release starts (bound replay or the speculative weave's
    /// parallel leg) — or requests shutdown (returning `None`).
    ///
    /// All barrier methods recover from a poisoned state mutex via
    /// [`lock_recover`]: a poison flag here means another thread already
    /// panicked (and that panic is surfaced as a `WorkerPanic` by the
    /// engine), so a nested "barrier poisoned" panic would only obscure
    /// the root cause and wedge the surviving workers.
    pub(crate) fn wait_for_phase(&self, seen: &mut u64) -> Option<(f64, BarrierPhase)> {
        let mut g = lock_recover(&self.state);
        loop {
            if g.stop {
                return None;
            }
            if g.epoch != *seen {
                *seen = g.epoch;
                return Some((g.quantum_end, g.phase));
            }
            g = self.start.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Worker side: reports worker `core`'s bound phase complete for this
    /// epoch. On a torn-down barrier this is a deliberate no-op: a worker
    /// that wakes from a stall *after* the watchdog already aborted the
    /// run must not mutate a pending-set it no longer owns.
    pub(crate) fn worker_done(&self, core: usize) {
        let mut g = lock_recover(&self.state);
        if g.torn_down {
            return;
        }
        if let Some(slot) = g.pending.get_mut(core) {
            *slot = false;
        }
        if g.pending.iter().all(|p| !p) {
            self.done.notify_all();
        }
    }

    /// Main side: releases `workers` workers into a bound phase bounded
    /// by `quantum_end`. No-op after [`Self::tear_down`] — a retired
    /// barrier never starts another quantum.
    pub(crate) fn release(&self, workers: usize, quantum_end: f64) {
        self.release_phase(workers, quantum_end, BarrierPhase::Bound);
    }

    /// Main side: [`Self::release`] with an explicit phase — the
    /// speculative weave releases the same workers a second time per
    /// quantum with [`BarrierPhase::SpecWeave`].
    pub(crate) fn release_phase(&self, workers: usize, quantum_end: f64, phase: BarrierPhase) {
        let mut g = lock_recover(&self.state);
        if g.torn_down {
            return;
        }
        g.epoch += 1;
        g.quantum_end = quantum_end;
        g.phase = phase;
        g.pending.clear();
        g.pending.resize(workers, true);
        drop(g);
        self.start.notify_all();
    }

    /// Main side: blocks until every released worker reported done (or
    /// the barrier is torn down — a retired barrier never blocks).
    pub(crate) fn wait_all_done(&self) {
        let mut g = lock_recover(&self.state);
        while !g.torn_down && g.pending.iter().any(|p| *p) {
            g = self.done.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Main side: like [`Self::wait_all_done`], but gives up after
    /// `deadline` and names the workers that never reported — the
    /// watchdog primitive behind
    /// [`crate::multicore::WorkerStall`].
    pub(crate) fn wait_all_done_deadline(
        &self,
        deadline: Duration,
    ) -> Result<(), BarrierWaitError> {
        let limit = Instant::now() + deadline;
        let mut g = lock_recover(&self.state);
        loop {
            if g.torn_down {
                return Err(BarrierWaitError::TornDown);
            }
            if g.pending.iter().all(|p| !p) {
                return Ok(());
            }
            let now = Instant::now();
            if now >= limit {
                let stalled = g
                    .pending
                    .iter()
                    .enumerate()
                    .filter_map(|(core, p)| p.then_some(core))
                    // analyze::allow(hot-path-alloc): deadline-expiry error path, runs at most once per run — never in a healthy quantum
                    .collect();
                return Err(BarrierWaitError::Stalled(stalled));
            }
            let (guard, _) = self
                .done
                .wait_timeout(g, limit - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
        }
    }

    /// Main side: shuts the worker loops down.
    pub(crate) fn stop(&self) {
        let mut g = lock_recover(&self.state);
        g.stop = true;
        drop(g);
        self.start.notify_all();
    }

    /// Main side: permanently retires the barrier after a stall. Workers
    /// are told to stop, waiters are woken, and from here on `release` /
    /// `worker_done` no-op while the wait entry points return
    /// [`BarrierWaitError::TornDown`] — a stalled worker that eventually
    /// wakes cannot corrupt barrier state or restart a dead run.
    pub(crate) fn tear_down(&self) {
        let mut g = lock_recover(&self.state);
        g.torn_down = true;
        g.stop = true;
        drop(g);
        self.start.notify_all();
        self.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn default_runtime_is_fixed_quantum() {
        let cfg = RuntimeConfig::default();
        assert_eq!(cfg.quantum_sizing, QuantumSizing::Fixed);
        assert_eq!(cfg.weave_batch, RuntimeConfig::DEFAULT_WEAVE_BATCH);
        assert_eq!(cfg.watchdog, Some(RuntimeConfig::DEFAULT_WATCHDOG));
    }

    #[test]
    fn lock_recover_yields_the_guard_of_a_poisoned_mutex() {
        let m = Mutex::new(7u64);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison while holding");
        }));
        assert!(m.is_poisoned());
        let mut g = lock_recover(&m);
        *g += 1;
        drop(g);
        assert_eq!(*lock_recover(&m), 8);
    }

    /// A barrier whose state mutex was poisoned by a panicking holder must
    /// keep functioning (the original panic is surfaced elsewhere as a
    /// `WorkerPanic`); pre-fix, every subsequent barrier call re-panicked
    /// with "barrier poisoned", replacing the root cause.
    #[test]
    fn barrier_survives_a_poisoned_state_mutex() {
        let barrier = QuantumBarrier::new();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = barrier.state.lock().unwrap();
            panic!("worker died while holding the barrier");
        }));
        assert!(barrier.state.is_poisoned());
        // Every entry point still completes instead of nesting a panic.
        barrier.release(0, 10_000.0);
        barrier.wait_all_done();
        barrier.stop();
        let mut seen = 0u64;
        assert_eq!(barrier.wait_for_phase(&mut seen), None, "stop wins");
    }

    #[test]
    fn barrier_runs_workers_once_per_epoch() {
        let barrier = QuantumBarrier::new();
        let ticks = AtomicU64::new(0);
        let workers = 3usize;
        let (barrier, ticks) = (&barrier, &ticks);
        std::thread::scope(|scope| {
            for core in 0..workers {
                scope.spawn(move || {
                    let mut seen = 0u64;
                    while let Some((end, phase)) = barrier.wait_for_phase(&mut seen) {
                        assert!(end > 0.0);
                        assert_eq!(phase, BarrierPhase::Bound);
                        ticks.fetch_add(1, Ordering::Relaxed);
                        barrier.worker_done(core);
                    }
                });
            }
            for q in 1..=5u64 {
                barrier.release(workers, q as f64 * 10_000.0);
                barrier.wait_all_done();
                assert_eq!(ticks.load(Ordering::Relaxed), q * workers as u64);
            }
            barrier.stop();
        });
        assert_eq!(ticks.load(Ordering::Relaxed), 5 * workers as u64);
    }

    /// The watchdog primitive: a worker that never reports done makes the
    /// deadline wait fail with exactly the stalled worker's index.
    #[test]
    fn deadline_wait_names_the_stalled_worker() {
        let barrier = QuantumBarrier::new();
        barrier.release(3, 10_000.0);
        barrier.worker_done(0);
        barrier.worker_done(2);
        let err = barrier
            .wait_all_done_deadline(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, BarrierWaitError::Stalled(vec![1]));
    }

    #[test]
    fn deadline_wait_succeeds_when_all_workers_report() {
        let barrier = QuantumBarrier::new();
        barrier.release(2, 10_000.0);
        barrier.worker_done(1);
        barrier.worker_done(0);
        assert_eq!(
            barrier.wait_all_done_deadline(Duration::from_millis(20)),
            Ok(())
        );
    }

    /// Satellite regression: after a stall teardown, every barrier entry
    /// point must refuse (typed error) or no-op — pre-fix, a late
    /// `worker_done` from the stalled worker decremented a counter the
    /// main thread had already abandoned, and a subsequent wait could
    /// recover the lock into an inconsistent pending-set and hang.
    #[test]
    fn torn_down_barrier_rejects_every_entry_point() {
        let barrier = QuantumBarrier::new();
        barrier.release(2, 10_000.0);
        barrier.worker_done(0);
        // Worker 1 stalls; the watchdog fires and tears the barrier down.
        assert_eq!(
            barrier.wait_all_done_deadline(Duration::from_millis(10)),
            Err(BarrierWaitError::Stalled(vec![1]))
        );
        barrier.tear_down();
        // The stalled worker finally wakes: its late report is a no-op,
        // not an underflow or a spurious wake-up of a dead run.
        barrier.worker_done(1);
        barrier.worker_done(1);
        // Releasing a retired barrier is refused...
        barrier.release(2, 20_000.0);
        let mut seen = 0u64;
        assert_eq!(barrier.wait_for_phase(&mut seen), None, "workers see stop");
        // ...and both wait entry points return typed errors immediately
        // instead of blocking on workers that will never come back.
        assert_eq!(
            barrier.wait_all_done_deadline(Duration::from_millis(10)),
            Err(BarrierWaitError::TornDown)
        );
        barrier.wait_all_done(); // must not hang
    }

    /// An out-of-range worker index (possible only through a logic bug)
    /// must not panic the barrier — the wait still times out and names
    /// the genuinely pending workers.
    #[test]
    fn worker_done_out_of_range_is_harmless() {
        let barrier = QuantumBarrier::new();
        barrier.release(1, 10_000.0);
        barrier.worker_done(7);
        assert_eq!(
            barrier.wait_all_done_deadline(Duration::from_millis(10)),
            Err(BarrierWaitError::Stalled(vec![0]))
        );
    }
}
