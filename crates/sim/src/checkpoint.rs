//! `checkpoint`: versioned binary snapshots of engine state for
//! crash-tolerant replay.
//!
//! A checkpoint captures everything that feeds the bit-identity contract
//! — core state (pc, exception masks, counters), the full hierarchy
//! (L1 lines with dirty/recency state, banked shared levels, the sharded
//! MESI directory), optional OS swap maps and LSQ state, the runtime
//! counters, and the replay cursor ([`crate::tracepack::ResumePoint`]
//! per lane) — so a run killed at any quantum boundary can be resumed
//! from its last checkpoint and produce results byte-identical to a
//! straight-through run (verified by the `resume_at` mode of the
//! differential oracle, `califorms-oracle`).
//!
//! The format follows the same discipline as `tracepack`:
//!
//! ```text
//! header  := magic "CFCK" | version u8 (=1)
//! section := tag u8 (!= 0xFF) | len u64 LE | payload[len]
//! end     := 0xFF
//! trailer := checksum u64 LE (FNV-1a over every preceding byte)
//! ```
//!
//! Sections are length-prefixed so a reader can skip unknown tags from a
//! newer minor revision, and the trailing checksum rejects torn or
//! bit-flipped files before any payload is interpreted. Every decode
//! failure — bad magic, truncation at any byte, checksum mismatch,
//! section-length lies, semantically impossible payloads — surfaces as a
//! typed [`CheckpointError`], never a panic (negative-path suite in
//! `crates/sim/tests/checkpoint.rs`).
//!
//! Checkpoints are only taken at *quantum boundaries*: for the
//! single-core [`crate::engine::Engine`] that is a decode-batch edge,
//! for the [`crate::multicore::MulticoreEngine`] it is the
//! weave-complete point where every worker has quiesced and the engine
//! is single-threaded (the drain protocol model-checked in
//! `califorms-analyze`). No worker coordination beyond that drain is
//! needed, so serialization itself is plain single-threaded code.

use crate::trace::TraceOp;
use crate::tracepack::{ResumePoint, TracePackError, MAX_ACCESS_BYTES};
use califorms_core::{
    AccessKind, CaliformedLine, CaliformsException, ExceptionKind, ExceptionMask, L1Line, L2Line,
    LINE_BYTES,
};

/// The four magic bytes opening every checkpoint.
pub const MAGIC: [u8; 4] = *b"CFCK";

/// Current checkpoint format version.
pub const VERSION: u8 = 1;

/// End-of-sections marker tag.
const TAG_END: u8 = 0xFF;

/// Checkpoint encode/decode/resume failure. Every variant is a
/// recoverable, typed condition — the recovery layer (bench
/// `crashrecovery` driver) reacts by falling back to an earlier
/// checkpoint instead of crashing.
#[derive(Debug)]
pub enum CheckpointError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is newer than this decoder.
    UnsupportedVersion(u8),
    /// The stream ended before its framing said it would (truncated
    /// tail, or a section length pointing past the end).
    Truncated,
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the preceding bytes.
        computed: u64,
    },
    /// A section carried an unknown tag byte.
    BadSection(u8),
    /// A section's declared length disagrees with its payload (the
    /// decoder needed more or fewer bytes than the frame held).
    SectionLength(u8),
    /// A required section is missing.
    MissingSection(&'static str),
    /// Bytes follow the checksum trailer.
    TrailingBytes(usize),
    /// The payload decoded but is semantically impossible (e.g. a cache
    /// set over associativity, a stamp ahead of the LRU clock).
    Corrupt(&'static str),
    /// The checkpoint was taken against a different configuration than
    /// the one resuming it.
    ConfigMismatch(&'static str),
    /// The embedded replay cursor does not fit the pack being resumed
    /// (wrong or shorter pack).
    Pack(TracePackError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (decoder knows {VERSION})"
                )
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CheckpointError::BadSection(t) => write!(f, "unknown checkpoint section tag {t:#04x}"),
            CheckpointError::SectionLength(t) => {
                write!(
                    f,
                    "checkpoint section {t:#04x} length disagrees with its payload"
                )
            }
            CheckpointError::MissingSection(name) => {
                write!(f, "checkpoint is missing its {name} section")
            }
            CheckpointError::TrailingBytes(n) => {
                write!(f, "checkpoint has {n} byte(s) after the checksum trailer")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::ConfigMismatch(what) => {
                write!(f, "checkpoint configuration mismatch: {what}")
            }
            CheckpointError::Pack(e) => write!(f, "checkpoint cursor does not fit the pack: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Pack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TracePackError> for CheckpointError {
    fn from(e: TracePackError) -> Self {
        CheckpointError::Pack(e)
    }
}

/// Checkpoint result alias.
pub type Result<T> = std::result::Result<T, CheckpointError>;

/// FNV-1a 64-bit over `bytes` — the trailer checksum. Deterministic and
/// dependency-free; collision resistance is not a goal (checkpoints
/// detect *accidental* corruption; an adversarial writer already owns
/// the process).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --- byte writer ------------------------------------------------------

/// Canonical little-endian byte writer for checkpoint payloads.
#[derive(Debug, Default)]
pub(crate) struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    /// Starts a checkpoint: magic + version.
    pub(crate) fn checkpoint() -> Self {
        let mut w = Self::default();
        w.buf.extend_from_slice(&MAGIC);
        w.buf.push(VERSION);
        w
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        // Bit pattern, not value: -0.0, NaNs and signalling payloads all
        // round-trip exactly (cycles are part of the bit-identity
        // contract).
        self.u64(v.to_bits());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Opens a length-prefixed section; close with [`Self::end_section`].
    pub(crate) fn begin_section(&mut self, tag: u8) -> usize {
        debug_assert_ne!(tag, TAG_END);
        self.buf.push(tag);
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        self.buf.len()
    }

    /// Patches the section length opened at `start`.
    pub(crate) fn end_section(&mut self, start: usize) {
        let len = (self.buf.len() - start) as u64;
        self.buf[start - 8..start].copy_from_slice(&len.to_le_bytes());
    }

    /// Writes the end marker and checksum trailer, returning the bytes.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        self.buf.push(TAG_END);
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

// --- byte reader ------------------------------------------------------

/// Bounded little-endian reader over one section's payload. Every read
/// is bounds-checked and fails typed — a lying section length can never
/// read outside its frame.
#[derive(Debug)]
pub(crate) struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or(CheckpointError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("boolean byte outside {0, 1}")),
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` collection-length prefix that must fit in `usize`.
    pub(crate) fn count(&mut self) -> Result<usize> {
        let v = self.u64()?;
        // A length can never exceed the remaining payload (every element
        // is at least one byte), so a lying count fails here instead of
        // attempting a giant allocation.
        if v > self.remaining() as u64 {
            return Err(CheckpointError::Truncated);
        }
        Ok(v as usize)
    }
}

// --- section framing --------------------------------------------------

/// One parsed section: its tag and payload slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Section<'a> {
    pub(crate) tag: u8,
    pub(crate) payload: &'a [u8],
}

/// Validates the envelope (magic, version, checksum, framing) and
/// returns the sections in file order. This runs **before** any payload
/// is interpreted, so a corrupt file is rejected by the checksum no
/// matter where the flip landed.
pub(crate) fn parse_sections(bytes: &[u8]) -> Result<Vec<Section<'_>>> {
    // magic(4) + version(1) + end(1) + checksum(8)
    if bytes.len() < 5 {
        return Err(if bytes.starts_with(&MAGIC[..bytes.len().min(4)]) {
            CheckpointError::Truncated
        } else {
            CheckpointError::BadMagic
        });
    }
    if bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes[4] > VERSION {
        return Err(CheckpointError::UnsupportedVersion(bytes[4]));
    }
    if bytes.len() < 14 {
        return Err(CheckpointError::Truncated);
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
        trailer[7],
    ]);
    let computed = fnv1a(content);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    let mut sections = Vec::new();
    let mut pos = 5usize;
    loop {
        let tag = *content.get(pos).ok_or(CheckpointError::Truncated)?;
        pos += 1;
        if tag == TAG_END {
            break;
        }
        let len_bytes = content
            .get(pos..pos + 8)
            .ok_or(CheckpointError::Truncated)?;
        let len = u64::from_le_bytes([
            len_bytes[0],
            len_bytes[1],
            len_bytes[2],
            len_bytes[3],
            len_bytes[4],
            len_bytes[5],
            len_bytes[6],
            len_bytes[7],
        ]);
        pos += 8;
        let end = (pos as u64)
            .checked_add(len)
            .filter(|&e| e <= content.len() as u64)
            .ok_or(CheckpointError::SectionLength(tag))? as usize;
        sections.push(Section {
            tag,
            payload: &content[pos..end],
        });
        pos = end;
    }
    if pos != content.len() {
        return Err(CheckpointError::TrailingBytes(content.len() - pos));
    }
    Ok(sections)
}

/// Finds a required section by tag.
pub(crate) fn require<'a>(sections: &[Section<'a>], tag: u8, name: &'static str) -> Result<Rd<'a>> {
    sections
        .iter()
        .find(|s| s.tag == tag)
        .map(|s| Rd::new(s.payload))
        .ok_or(CheckpointError::MissingSection(name))
}

/// Finds an optional section by tag.
pub(crate) fn optional<'a>(sections: &[Section<'a>], tag: u8) -> Option<Rd<'a>> {
    sections
        .iter()
        .find(|s| s.tag == tag)
        .map(|s| Rd::new(s.payload))
}

/// Checks that a section's payload was consumed exactly.
pub(crate) fn consumed(r: &Rd<'_>, tag: u8) -> Result<()> {
    if r.remaining() == 0 {
        Ok(())
    } else {
        Err(CheckpointError::SectionLength(tag))
    }
}

// --- section tags -----------------------------------------------------

/// Engine kind + core count.
pub(crate) const SEC_META: u8 = 0x01;
/// Hierarchy/core (and, multicore, coherence/runtime) configuration.
pub(crate) const SEC_CONFIG: u8 = 0x02;
/// Per-core replay state (repeated per core in one section).
pub(crate) const SEC_CORE: u8 = 0x03;
/// Single-core hierarchy state.
pub(crate) const SEC_HIERARCHY: u8 = 0x04;
/// Multi-core coherent hierarchy state.
pub(crate) const SEC_COHERENT: u8 = 0x05;
/// Runtime counters + adaptive quantum state.
pub(crate) const SEC_RUNTIME: u8 = 0x06;
/// Replay cursor(s): one `ResumePoint` (+ ring leftovers) per lane.
pub(crate) const SEC_CURSOR: u8 = 0x07;
/// OS swap-manager maps (optional).
pub(crate) const SEC_OS: u8 = 0x08;
/// Load/store-queue state (optional).
pub(crate) const SEC_LSQ: u8 = 0x09;

/// Engine kind discriminants in [`SEC_META`].
pub(crate) const KIND_SINGLE: u8 = 0;
pub(crate) const KIND_MULTI: u8 = 1;

// --- shared type serializers ------------------------------------------

pub(crate) fn put_exception(w: &mut Wr, e: &CaliformsException) {
    w.u64(e.fault_addr);
    w.u8(match e.access {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Cform => 2,
    });
    w.u8(match e.kind {
        ExceptionKind::SecurityByteAccess => 0,
        ExceptionKind::CformDoubleSet => 1,
        ExceptionKind::CformUnsetNormal => 2,
    });
    w.u64(e.pc);
}

pub(crate) fn get_exception(r: &mut Rd<'_>) -> Result<CaliformsException> {
    let fault_addr = r.u64()?;
    let access = match r.u8()? {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Cform,
        _ => return Err(CheckpointError::Corrupt("unknown access kind")),
    };
    let kind = match r.u8()? {
        0 => ExceptionKind::SecurityByteAccess,
        1 => ExceptionKind::CformDoubleSet,
        2 => ExceptionKind::CformUnsetNormal,
        _ => return Err(CheckpointError::Corrupt("unknown exception kind")),
    };
    let pc = r.u64()?;
    Ok(CaliformsException {
        fault_addr,
        access,
        kind,
        pc,
    })
}

pub(crate) fn put_exceptions(w: &mut Wr, list: &[CaliformsException]) {
    w.u64(list.len() as u64);
    for e in list {
        put_exception(w, e);
    }
}

pub(crate) fn get_exceptions(r: &mut Rd<'_>) -> Result<Vec<CaliformsException>> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_exception(r)?);
    }
    Ok(out)
}

pub(crate) fn put_mask(w: &mut Wr, m: &ExceptionMask) {
    let windows = m.windows();
    w.u64(windows.len() as u64);
    for &(lo, hi) in windows {
        w.u64(lo);
        w.u64(hi);
    }
    w.u64(m.suppressed_count());
    w.u64(m.delivered_count());
}

pub(crate) fn get_mask(r: &mut Rd<'_>) -> Result<ExceptionMask> {
    let n = r.count()?;
    let mut windows = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = r.u64()?;
        let hi = r.u64()?;
        windows.push((lo, hi));
    }
    let suppressed = r.u64()?;
    let delivered = r.u64()?;
    ExceptionMask::from_parts(windows, suppressed, delivered).map_err(CheckpointError::Corrupt)
}

pub(crate) fn put_califormed_line(w: &mut Wr, line: &CaliformedLine) {
    w.bytes(line.data());
    w.u64(line.security_mask());
}

pub(crate) fn get_califormed_line(r: &mut Rd<'_>) -> Result<CaliformedLine> {
    let raw = r.take(LINE_BYTES)?;
    let mut data = [0u8; LINE_BYTES];
    data.copy_from_slice(raw);
    let mask = r.u64()?;
    CaliformedLine::try_new(data, mask)
        .map_err(|_| CheckpointError::Corrupt("security byte carries non-zero data"))
}

pub(crate) fn put_l1_line(w: &mut Wr, line: &L1Line) {
    put_califormed_line(w, line.line());
}

pub(crate) fn get_l1_line(r: &mut Rd<'_>) -> Result<L1Line> {
    Ok(L1Line::new(get_califormed_line(r)?))
}

pub(crate) fn put_l2_line(w: &mut Wr, line: &L2Line) {
    w.bytes(&line.bytes);
    w.bool(line.califormed);
}

pub(crate) fn get_l2_line(r: &mut Rd<'_>) -> Result<L2Line> {
    let raw = r.take(LINE_BYTES)?;
    let mut bytes = [0u8; LINE_BYTES];
    bytes.copy_from_slice(raw);
    let califormed = r.bool()?;
    Ok(L2Line { bytes, califormed })
}

pub(crate) fn put_cache_stats(w: &mut Wr, s: &crate::stats::CacheStats) {
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.evictions);
    w.u64(s.writebacks);
}

pub(crate) fn get_cache_stats(r: &mut Rd<'_>) -> Result<crate::stats::CacheStats> {
    Ok(crate::stats::CacheStats {
        hits: r.u64()?,
        misses: r.u64()?,
        evictions: r.u64()?,
        writebacks: r.u64()?,
    })
}

pub(crate) fn put_resume_point(w: &mut Wr, p: &ResumePoint) {
    w.u64(p.byte_offset);
    w.u64(p.ops_read);
    w.u64(p.last_addr);
    w.bool(p.done);
}

pub(crate) fn get_resume_point(r: &mut Rd<'_>) -> Result<ResumePoint> {
    Ok(ResumePoint {
        byte_offset: r.u64()?,
        ops_read: r.u64()?,
        last_addr: r.u64()?,
        done: r.bool()?,
    })
}

/// One decoded op (ring leftovers of a multicore lane cursor).
pub(crate) fn put_trace_op(w: &mut Wr, op: &TraceOp) {
    match *op {
        TraceOp::Exec(n) => {
            w.u8(0);
            w.u32(n);
        }
        TraceOp::Load { addr, size } => {
            w.u8(1);
            w.u64(addr);
            w.u8(size);
        }
        TraceOp::Store { addr, size } => {
            w.u8(2);
            w.u64(addr);
            w.u8(size);
        }
        TraceOp::Cform {
            line_addr,
            attrs,
            mask,
        } => {
            w.u8(3);
            w.u64(line_addr);
            w.u64(attrs);
            w.u64(mask);
        }
        TraceOp::CformNt {
            line_addr,
            attrs,
            mask,
        } => {
            w.u8(4);
            w.u64(line_addr);
            w.u64(attrs);
            w.u64(mask);
        }
        TraceOp::MaskPush => w.u8(5),
        TraceOp::MaskPop => w.u8(6),
    }
}

pub(crate) fn get_trace_op(r: &mut Rd<'_>) -> Result<TraceOp> {
    Ok(match r.u8()? {
        0 => TraceOp::Exec(r.u32()?),
        1 => {
            let addr = r.u64()?;
            let size = checked_size(r.u8()?)?;
            TraceOp::Load { addr, size }
        }
        2 => {
            let addr = r.u64()?;
            let size = checked_size(r.u8()?)?;
            TraceOp::Store { addr, size }
        }
        3 => TraceOp::Cform {
            line_addr: r.u64()?,
            attrs: r.u64()?,
            mask: r.u64()?,
        },
        4 => TraceOp::CformNt {
            line_addr: r.u64()?,
            attrs: r.u64()?,
            mask: r.u64()?,
        },
        5 => TraceOp::MaskPush,
        6 => TraceOp::MaskPop,
        _ => return Err(CheckpointError::Corrupt("unknown trace op tag")),
    })
}

pub(crate) fn put_core_weave(w: &mut Wr, s: &crate::stats::CoreWeaveStats) {
    w.u64(s.turns);
    w.u64(s.transactions);
    w.u64(s.batched);
    w.u64(s.contended);
}

pub(crate) fn get_core_weave(r: &mut Rd<'_>) -> Result<crate::stats::CoreWeaveStats> {
    Ok(crate::stats::CoreWeaveStats {
        turns: r.u64()?,
        transactions: r.u64()?,
        batched: r.u64()?,
        contended: r.u64()?,
    })
}

/// Guard shared by the load/store arms of [`get_trace_op`].
fn checked_size(size: u8) -> Result<u8> {
    if size == 0 || size as usize > MAX_ACCESS_BYTES {
        return Err(CheckpointError::Corrupt(
            "trace op access size out of range",
        ));
    }
    Ok(size)
}

// --- cache + config serializers ---------------------------------------

/// Serializes a [`SetAssocCache`]'s full replacement state: LRU clock,
/// counters, and every resident line with its stamp, dirty bit and
/// within-set position (see `SetAssocCache::export_lines` for why the
/// order is load-bearing).
pub(crate) fn put_cache<V>(
    w: &mut Wr,
    cache: &crate::cache::SetAssocCache<V>,
    put: impl Fn(&mut Wr, &V),
) {
    w.u64(cache.clock());
    put_cache_stats(w, &cache.stats);
    let lines = cache.export_lines();
    w.u64(lines.len() as u64);
    for (addr, stamp, dirty, v) in lines {
        w.u64(addr);
        w.u64(stamp);
        w.bool(dirty);
        put(w, v);
    }
}

/// Restores a [`SetAssocCache`] serialized by [`put_cache`] into a cache
/// of identical geometry.
pub(crate) fn get_cache<V>(
    r: &mut Rd<'_>,
    cache: &mut crate::cache::SetAssocCache<V>,
    get: impl Fn(&mut Rd<'_>) -> Result<V>,
) -> Result<()> {
    let clock = r.u64()?;
    cache.stats = get_cache_stats(r)?;
    let n = r.count()?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let addr = r.u64()?;
        let stamp = r.u64()?;
        let dirty = r.bool()?;
        lines.push((addr, stamp, dirty, get(r)?));
    }
    cache
        .import_lines(clock, lines)
        .map_err(CheckpointError::Corrupt)
}

fn usize_from(v: u64) -> Result<usize> {
    usize::try_from(v).map_err(|_| CheckpointError::Corrupt("size exceeds the address space"))
}

pub(crate) fn put_hier_config(w: &mut Wr, cfg: &crate::hierarchy::HierarchyConfig) {
    w.u64(cfg.l1d_size as u64);
    w.u64(cfg.l1d_ways as u64);
    w.u32(cfg.l1d_latency);
    w.u64(cfg.l2_size as u64);
    w.u64(cfg.l2_ways as u64);
    w.u32(cfg.l2_latency);
    w.u64(cfg.l3_size as u64);
    w.u64(cfg.l3_ways as u64);
    w.u32(cfg.l3_latency);
    w.u32(cfg.dram_latency);
    w.u32(cfg.extra_l2_latency);
    w.u32(cfg.extra_l3_latency);
    w.bool(cfg.stream_prefetcher);
    w.u32(cfg.prefetch_residual);
}

pub(crate) fn get_hier_config(r: &mut Rd<'_>) -> Result<crate::hierarchy::HierarchyConfig> {
    let cfg = crate::hierarchy::HierarchyConfig {
        l1d_size: usize_from(r.u64()?)?,
        l1d_ways: usize_from(r.u64()?)?,
        l1d_latency: r.u32()?,
        l2_size: usize_from(r.u64()?)?,
        l2_ways: usize_from(r.u64()?)?,
        l2_latency: r.u32()?,
        l3_size: usize_from(r.u64()?)?,
        l3_ways: usize_from(r.u64()?)?,
        l3_latency: r.u32()?,
        dram_latency: r.u32()?,
        extra_l2_latency: r.u32()?,
        extra_l3_latency: r.u32()?,
        stream_prefetcher: r.bool()?,
        prefetch_residual: r.u32()?,
    };
    // Reject geometries the cache constructors would panic on — a
    // corrupt config section must stay a typed error.
    let line = LINE_BYTES;
    for (size, ways, what) in [
        (cfg.l1d_size, cfg.l1d_ways, "L1D geometry"),
        (cfg.l2_size, cfg.l2_ways, "L2 geometry"),
        (cfg.l3_size, cfg.l3_ways, "L3 geometry"),
    ] {
        if ways == 0 || size % (ways * line) != 0 || !(size / (ways * line)).is_power_of_two() {
            return Err(CheckpointError::Corrupt(what));
        }
    }
    Ok(cfg)
}

pub(crate) fn put_core_config(w: &mut Wr, cfg: &crate::cpu::CoreConfig) {
    w.u32(cfg.width);
    w.f64(cfg.overlap);
}

pub(crate) fn get_core_config(r: &mut Rd<'_>) -> Result<crate::cpu::CoreConfig> {
    let width = r.u32()?;
    let overlap = r.f64()?;
    if width == 0 || !(0.0..1.0).contains(&overlap) {
        return Err(CheckpointError::Corrupt("core timing parameters"));
    }
    Ok(crate::cpu::CoreConfig { width, overlap })
}
