//! Simulation statistics counters.

/// Per-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit in this cache.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted (capacity/conflict).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Coherence-traffic counters produced by the multi-core subsystem
/// ([`crate::coherence::CoherentHierarchy`]). All zero on single-core runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// L1 copies destroyed by a remote write request (M/E recalls and
    /// shared-copy invalidations).
    pub invalidations: u64,
    /// S→M upgrade requests (a core wrote a line it held Shared).
    pub upgrades_s_to_m: u64,
    /// Cache-to-cache transfers: a request serviced by recalling the line
    /// from a remote owner's L1 instead of the shared levels.
    pub cache_to_cache_transfers: u64,
    /// Cache-to-cache transfers whose line was califormed — each one runs
    /// the real bitvector→sentinel spill in the source L1 and the
    /// sentinel→bitvector fill in the destination L1.
    pub califormed_transfers: u64,
    /// Directory consultations (one per L1 miss or upgrade request).
    pub directory_lookups: u64,
}

/// One core's share of the weave phase — a deterministic per-core
/// breakdown of the global [`crate::runtime::RuntimeStats`] weave
/// counters (the per-core axis the aggregate `weave_s` hides).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreWeaveStats {
    /// Weave turns in which this core made progress.
    pub turns: u64,
    /// Coherence transactions this core retired in the weave.
    pub transactions: u64,
    /// Of those, transactions that rode an earlier transaction's turn.
    pub batched: u64,
    /// Of those, transactions that involved another core (and therefore
    /// ended their turn).
    pub contended: u64,
}

/// One directory shard's share of the weave-phase transaction split —
/// `batched`/`contended` attributed to the shard (bank) holding the
/// transaction's line, instead of one global total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardWeaveStats {
    /// Weave transactions against this shard's lines.
    pub transactions: u64,
    /// Of those, transactions that rode an earlier transaction's turn.
    pub batched: u64,
    /// Of those, transactions that involved another core.
    pub contended: u64,
}

/// Deterministic weave-phase breakdowns: per core and per directory
/// shard. Each axis sums to the corresponding global
/// [`crate::runtime::RuntimeStats`] counter, and like them these are
/// functions of simulated state only — they participate in the
/// bit-identity comparisons.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeaveBreakdown {
    /// Per-core weave activity (index = core id).
    pub per_core: Vec<CoreWeaveStats>,
    /// Per-directory-shard transaction split (index = bank/shard id).
    pub per_shard: Vec<ShardWeaveStats>,
}

/// Host-time weave breakdown, recorded only on telemetry-enabled runs
/// (both vectors are empty otherwise: per-turn clock reads are not free,
/// and plain runs must not pay for them). Host wall-clock is
/// scheduling-dependent, so this lives with
/// [`crate::runtime::RuntimeTiming`] on the outcome, *outside* every
/// bit-identity comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeaveTimingBreakdown {
    /// Seconds of weave-turn time attributed to each core.
    pub per_core_s: Vec<f64>,
    /// Seconds of weave time per quantum, capped at
    /// [`Self::MAX_QUANTUM_SAMPLES`] entries.
    pub per_quantum_s: Vec<f64>,
    /// Quanta whose samples were dropped after the cap (never silent).
    pub quantum_samples_dropped: u64,
}

impl WeaveTimingBreakdown {
    /// Most per-quantum samples kept (a multi-hour replay must not grow
    /// the outcome without bound).
    pub const MAX_QUANTUM_SAMPLES: usize = 1 << 16;
}

/// Aggregated statistics of a [`crate::multicore::MulticoreEngine`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MulticoreStats {
    /// Per-core statistics (index = core id). `l1d` counters are the
    /// core's private L1; shared-level counters are zero here and live in
    /// [`Self::combined`].
    pub per_core: Vec<SimStats>,
    /// Whole-machine view: summed instruction/op counts, `cycles` = the
    /// slowest core (makespan), shared L2/L3/DRAM counters, conversion
    /// counts and the coherence counters.
    pub combined: SimStats,
    /// Parallel-runtime counters (quanta, weave turns, batched and
    /// contended transactions). Deterministic — they participate in
    /// bit-identity comparisons like every other counter here.
    pub runtime: crate::runtime::RuntimeStats,
    /// Deterministic per-core / per-shard weave breakdowns of the
    /// [`Self::runtime`] totals.
    pub weave: WeaveBreakdown,
}

impl MulticoreStats {
    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Aggregate instructions per cycle: total retired instructions over
    /// the makespan (the "simulated IPC" the scaling bench reports).
    pub fn aggregate_ipc(&self) -> f64 {
        if self.combined.cycles == 0.0 {
            0.0
        } else {
            self.combined.instructions as f64 / self.combined.cycles
        }
    }
}

/// Full-run statistics produced by [`crate::engine::Engine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Simulated cycles (fractional: the core model issues multiple
    /// instructions per cycle).
    pub cycles: f64,
    /// Instructions retired, including memory ops and `CFORM`s.
    pub instructions: u64,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed (committed or suppressed).
    pub stores: u64,
    /// `CFORM` instructions executed.
    pub cforms: u64,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// L3 cache counters.
    pub l3: CacheStats,
    /// Main-memory line fetches.
    pub dram_accesses: u64,
    /// L1→L2 spill conversions performed (califormed lines only).
    pub spills: u64,
    /// L2→L1 fill conversions performed (califormed lines only).
    pub fills: u64,
    /// Califorms exceptions delivered to the handler.
    pub exceptions_delivered: u64,
    /// Califorms exceptions suppressed by whitelist masks.
    pub exceptions_suppressed: u64,
    /// Stores suppressed because they targeted a security byte.
    pub stores_suppressed: u64,
    /// Coherence counters (all zero for single-core runs).
    pub coherence: CoherenceStats,
}

impl SimStats {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Slowdown of `self` relative to a `baseline` run of the same work:
    /// `cycles / baseline.cycles − 1`, e.g. `0.03` = 3 % slower.
    pub fn slowdown_vs(&self, baseline: &SimStats) -> f64 {
        assert!(baseline.cycles > 0.0, "baseline ran zero cycles");
        self.cycles / baseline.cycles - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero_and_counts() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slowdown_is_relative_cycles() {
        let base = SimStats {
            cycles: 1000.0,
            ..Default::default()
        };
        let run = SimStats {
            cycles: 1030.0,
            ..Default::default()
        };
        assert!((run.slowdown_vs(&base) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn ipc_computes() {
        let s = SimStats {
            cycles: 500.0,
            instructions: 1000,
            ..Default::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
    }
}
