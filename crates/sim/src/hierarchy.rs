//! The simulated memory hierarchy: L1D (bitvector format) → L2 → L3
//! (sentinel format) → DRAM (sentinel format, metadata bit in spare ECC).
//!
//! The configuration defaults to the paper's Table 3 (Westmere-like):
//!
//! | level | size   | ways | latency |
//! |-------|--------|------|---------|
//! | L1D   | 32 KB  | 8    | 4       |
//! | L2    | 256 KB | 8    | 7       |
//! | L3    | 2 MB   | 16   | 27      |
//! | DRAM  | —      | —    | ~300 (DDR3-1333, loaded) |
//!
//! Fills and spills at the L1 boundary run the real conversion algorithms
//! from `califorms-core`, so califormed data is stored sentinel-formatted
//! below the L1 exactly as in Figure 1, and the *Califorms checker* of the
//! L1 hit path performs the byte-granular access check.
//!
//! Approximations (documented per DESIGN.md): the hierarchy is inclusive
//! by construction of the fill path; clean evictions are dropped; no MESI
//! (single core); instruction fetches are not simulated (the workloads'
//! `Exec` operations account for their cycles).

use crate::cache::SetAssocCache;
use crate::stats::SimStats;
use crate::{line_base, line_offset, LINE_BYTES};
use califorms_core::{
    fill_canonical, range_mask, spill_canonical, AccessKind, CaliformsException, CformInstruction,
    CoreError, ExceptionKind, L1Line, L2Line,
};
/// The deterministic line-address hasher and map, lifted to
/// `califorms-core::detmap` so every result-bearing crate can use them;
/// re-exported here because the hierarchy is where they originated and
/// most sim-internal users import them from this module.
pub use califorms_core::{LineHasher, LineMap};

/// Hierarchy geometry and latency configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// L1 data cache capacity in bytes.
    pub l1d_size: usize,
    /// L1 data cache associativity.
    pub l1d_ways: usize,
    /// L1 data cache hit latency (cycles).
    pub l1d_latency: u32,
    /// L2 capacity in bytes.
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency (cycles).
    pub l2_latency: u32,
    /// L3 capacity in bytes.
    pub l3_size: usize,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 hit latency (cycles).
    pub l3_latency: u32,
    /// Main-memory access latency (cycles).
    pub dram_latency: u32,
    /// Additional L2 latency imposed by the Califorms machinery — the
    /// pessimistic +1-cycle experiment of Figure 10.
    pub extra_l2_latency: u32,
    /// Additional L3 latency, ditto.
    pub extra_l3_latency: u32,
    /// Whether the next-line stream prefetcher is active (Westmere has
    /// one; without it sequential sweeps pay full miss latency and the
    /// Figure 10 sensitivity of streaming benchmarks is overstated).
    pub stream_prefetcher: bool,
    /// Residual latency (beyond L1) charged for a prefetched miss — the
    /// part the prefetcher could not hide.
    pub prefetch_residual: u32,
}

impl HierarchyConfig {
    /// The paper's Table 3 configuration (Intel Westmere-like, 2.27 GHz).
    pub fn westmere() -> Self {
        Self {
            l1d_size: 32 * 1024,
            l1d_ways: 8,
            l1d_latency: 4,
            l2_size: 256 * 1024,
            l2_ways: 8,
            l2_latency: 7,
            l3_size: 2 * 1024 * 1024,
            l3_ways: 16,
            l3_latency: 27,
            dram_latency: 300,
            extra_l2_latency: 0,
            extra_l3_latency: 0,
            stream_prefetcher: true,
            prefetch_residual: 2,
        }
    }

    /// The same machine with the pessimistic +1-cycle L2/L3 Califorms
    /// latency of Section 8.1.
    pub fn westmere_plus_one_cycle() -> Self {
        Self {
            extra_l2_latency: 1,
            extra_l3_latency: 1,
            ..Self::westmere()
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::westmere()
    }
}

/// Outcome of a data access against the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemResult {
    /// Total access latency in cycles (includes the L1 hit latency).
    pub latency: u32,
    /// Bytes returned (loads only; zeros at security-byte positions).
    pub data: Vec<u8>,
    /// Raised Califorms exception, if the access touched a security byte
    /// or a `CFORM` K-map rule fired. Delivery vs suppression is the
    /// engine's job (exception masks live above the hierarchy).
    pub exception: Option<CaliformsException>,
}

impl MemResult {
    /// A data-less result — stores, quiet probes, and coherence updates.
    /// Every such site constructs through here so there is exactly one
    /// empty-`data` expression on the worker hot path.
    #[must_use]
    pub fn quiet(latency: u32, exception: Option<CaliformsException>) -> Self {
        Self {
            latency,
            // analyze::allow(hot-path-alloc): Vec::new() is capacity 0 and never allocates
            data: Vec::new(),
            exception,
        }
    }
}

/// Maps a `CFORM` K-map fault onto the privileged exception (Table 1
/// semantics), shared by the single-core [`Hierarchy`] and the
/// [`crate::coherence::CoherentHierarchy`] paths.
pub(crate) fn kmap_exception(e: CoreError, line_addr: u64, pc: u64) -> CaliformsException {
    let (kind, index) = match e {
        CoreError::CformSetOnSecurityByte { index } => (ExceptionKind::CformDoubleSet, index),
        CoreError::CformUnsetOnNormalByte { index } => (ExceptionKind::CformUnsetNormal, index),
        other => unreachable!("CFORM faults are K-map faults: {other}"),
    };
    CaliformsException {
        fault_addr: line_addr + index as u64,
        access: AccessKind::Cform,
        kind,
        pc,
    }
}

/// Exclusive end of a memory access, faulting loudly on a wrapping
/// range instead of letting debug builds panic on overflow and release
/// builds silently turn the access into a no-op. (An access whose last
/// byte is the top of the address space is representable only as a
/// single-line access; the line-crossing split paths never need
/// `end == 2^64`.)
#[inline]
fn access_end(addr: u64, len: usize) -> u64 {
    addr.checked_add(len as u64).unwrap_or_else(|| {
        panic!("memory access [{addr:#x}, {addr:#x} + {len:#x}) wraps past the address space")
    })
}

/// Builds the load exception for a violating-byte mask (line-relative),
/// or `None` when no accessed byte was a security byte.
#[inline]
pub(crate) fn load_violation(
    violating: u64,
    line_addr: u64,
    pc: u64,
) -> Option<CaliformsException> {
    (violating != 0).then(|| CaliformsException {
        fault_addr: line_addr + u64::from(violating.trailing_zeros()),
        access: AccessKind::Load,
        kind: ExceptionKind::SecurityByteAccess,
        pc,
    })
}

/// Maps a line-level store fault onto the store exception.
#[inline]
fn store_violation(e: CoreError, line_addr: u64, pc: u64) -> CaliformsException {
    match e {
        CoreError::StoreToSecurityByte { index } => CaliformsException {
            fault_addr: line_addr + index as u64,
            access: AccessKind::Store,
            kind: ExceptionKind::SecurityByteAccess,
            pc,
        },
        other => unreachable!("store can only fault on security bytes: {other}"),
    }
}

/// Main memory: sentinel-format lines; the *califormed?* bit conceptually
/// lives in spare ECC bits (Section 3), so no extra address space is used.
#[derive(Debug, Default, Clone)]
struct Dram {
    lines: LineMap<L2Line>,
}

impl Dram {
    fn load(&self, line_addr: u64) -> L2Line {
        self.lines
            .get(&line_addr)
            .copied()
            .unwrap_or(L2Line::plain([0; 64]))
    }

    fn store(&mut self, line_addr: u64, line: L2Line) {
        self.lines.insert(line_addr, line);
    }
}

/// One bank of the shared levels: an L2/L3 slice plus its DRAM partition,
/// holding every line whose index is ≡ `bank` (mod `banks`).
///
/// Banks exist so the multi-core bound phase can hand each worker
/// exclusive ownership of a subset of the shared state (DESIGN.md §10):
/// during the parallel phase of a quantum, bank `b` is touched only by
/// the core that owns it, so private misses can be serviced without any
/// lock or weave turn — data-race-free by construction.
///
/// The bank addresses its internal caches with *bank-local* line indices
/// (`line_no / banks`), which makes the composite (bank, local-set)
/// mapping a bijection of the unbanked set mapping: two lines conflict in
/// a banked set **iff** they conflicted in the corresponding unbanked
/// set, so banking changes no simulated result — with one bank this is
/// the identity. All public methods speak global line addresses.
///
/// `Clone` exists for the speculative weave (DESIGN.md §15): a claiming
/// worker executes against a clone of the bank and the commit point
/// installs the clone wholesale (or drops it on abort).
#[derive(Debug, Clone)]
pub struct LevelBank {
    cfg: HierarchyConfig,
    /// This bank's index and the total bank count (for address
    /// translation back and forth).
    bank: u64,
    banks: u64,
    l2: SetAssocCache<L2Line>,
    l3: SetAssocCache<L2Line>,
    dram: Dram,
    /// DRAM line fetches serviced by this bank.
    pub dram_accesses: u64,
}

impl LevelBank {
    fn new(cfg: HierarchyConfig, bank: u64, banks: u64) -> Self {
        Self {
            l2: SetAssocCache::new(cfg.l2_size / banks as usize, cfg.l2_ways, cfg.l2_latency),
            l3: SetAssocCache::new(cfg.l3_size / banks as usize, cfg.l3_ways, cfg.l3_latency),
            dram: Dram::default(),
            dram_accesses: 0,
            cfg,
            bank,
            banks,
        }
    }

    /// Global line address → bank-local line address.
    #[inline]
    fn local(&self, line_addr: u64) -> u64 {
        (line_addr / LINE_BYTES / self.banks) * LINE_BYTES
    }

    /// Bank-local line address → global line address.
    #[inline]
    fn global(&self, local_addr: u64) -> u64 {
        ((local_addr / LINE_BYTES) * self.banks + self.bank) * LINE_BYTES
    }

    fn insert_l3(&mut self, line_addr: u64, line: L2Line, dirty: bool) {
        if let Some(ev) = self.l3.insert(self.local(line_addr), line, dirty) {
            if ev.dirty {
                let global = self.global(ev.line_addr);
                self.dram.store(global, ev.value);
            }
        }
    }

    /// Inserts (or refreshes) a line in the L2, rippling dirty evictions
    /// down to L3 and DRAM — the write-back path for L1 spills.
    pub fn insert_l2(&mut self, line_addr: u64, line: L2Line, dirty: bool) {
        if let Some(ev) = self.l2.insert(self.local(line_addr), line, dirty) {
            if ev.dirty {
                let global = self.global(ev.line_addr);
                self.insert_l3(global, ev.value, true);
            }
        }
    }

    /// Fetches a line in sentinel format from L2/L3/DRAM, returning the
    /// added latency (beyond L1).
    pub fn fetch(&mut self, line_addr: u64) -> (L2Line, u32) {
        let local = self.local(line_addr);
        if let Some(line) = self.l2.access(local) {
            return (*line, self.cfg.l2_latency + self.cfg.extra_l2_latency);
        }
        let l2_part = self.cfg.l2_latency + self.cfg.extra_l2_latency;
        if let Some(line) = self.l3.access(local) {
            let line = *line;
            let latency = l2_part + self.cfg.l3_latency + self.cfg.extra_l3_latency;
            self.insert_l2(line_addr, line, false);
            return (line, latency);
        }
        let l3_part = self.cfg.l3_latency + self.cfg.extra_l3_latency;
        self.dram_accesses += 1;
        let line = self.dram.load(line_addr);
        self.insert_l3(line_addr, line, false);
        self.insert_l2(line_addr, line, false);
        (line, l2_part + l3_part + self.cfg.dram_latency)
    }

    /// Functional (stat-free, LRU-free) read of a line from whichever
    /// level of this bank holds it, falling through to DRAM.
    pub fn peek_line(&self, line_addr: u64) -> L2Line {
        let local = self.local(line_addr);
        self.l2
            .peek(local)
            .or_else(|| self.l3.peek(local))
            .copied()
            .unwrap_or_else(|| self.dram.load(line_addr))
    }

    fn evict_to_dram(&mut self, line_addr: u64) {
        let local = self.local(line_addr);
        if let Some((line, _)) = self.l2.invalidate(local) {
            self.l3.invalidate(local);
            self.dram.store(line_addr, line);
            return;
        }
        if let Some((line, _)) = self.l3.invalidate(local) {
            self.dram.store(line_addr, line);
        }
    }

    fn flush(&mut self) {
        for (addr, line, dirty) in self.l2.drain() {
            if dirty {
                let global = self.global(addr);
                self.insert_l3(global, line, true);
            }
        }
        for (addr, line, dirty) in self.l3.drain() {
            if dirty {
                let global = self.global(addr);
                self.dram.store(global, line);
            }
        }
    }
}

/// One bank's shared-level counters, snapshot for telemetry (the
/// per-shard axis [`SharedLevels::export_stats`] sums away).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankLevelStats {
    /// This bank's L2 slice counters.
    pub l2: crate::stats::CacheStats,
    /// This bank's L3 slice counters.
    pub l3: crate::stats::CacheStats,
    /// Main-memory line fetches through this bank.
    pub dram_accesses: u64,
    /// Lines currently resident in the L2 slice.
    pub l2_resident_lines: u64,
    /// Lines currently resident in the L3 slice.
    pub l3_resident_lines: u64,
}

/// The shared, sentinel-format levels below the L1 boundary: L2 → L3 →
/// DRAM, internally sharded into [`LevelBank`]s by line index.
///
/// Extracted from [`Hierarchy`] so the single-core hierarchy and the
/// multi-core [`crate::coherence::CoherentHierarchy`] (where *several*
/// per-core L1Ds sit on top of one shared L2/L3) drive one implementation.
/// Everything at or below this boundary stores califormed lines in the
/// sentinel format; crossing the boundary upward is where the fill
/// conversion runs, crossing downward the spill. The single-core
/// hierarchy uses one bank; the coherent hierarchy banks the state so the
/// bound phase can own slices of it (see [`LevelBank`]).
#[derive(Debug)]
pub struct SharedLevels {
    banks: Vec<LevelBank>,
}

/// The address→bank split shared by [`SharedLevels::bank_of`] and the
/// speculative weave's claim table (`coherence::SpecExec`), kept as one
/// function so the two can never drift.
#[inline]
pub(crate) fn bank_index(line_addr: u64, banks: usize) -> usize {
    ((line_addr / LINE_BYTES) % banks as u64) as usize
}

impl SharedLevels {
    /// Builds the shared levels from a configuration, unbanked.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::banked(cfg, 1)
    }

    /// Builds the shared levels sharded into `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` is a power of two dividing the L2 and L3 set
    /// counts (so bank-local indexing preserves the unbanked set
    /// grouping).
    pub fn banked(cfg: HierarchyConfig, banks: usize) -> Self {
        assert!(
            banks.is_power_of_two(),
            "bank count must be a power of two, got {banks}"
        );
        let line = LINE_BYTES as usize;
        let l2_sets = cfg.l2_size / (cfg.l2_ways * line);
        let l3_sets = cfg.l3_size / (cfg.l3_ways * line);
        assert!(
            l2_sets.is_multiple_of(banks) && l3_sets.is_multiple_of(banks),
            "bank count {banks} must divide the L2 ({l2_sets}) and L3 ({l3_sets}) set counts"
        );
        Self {
            banks: (0..banks)
                .map(|b| LevelBank::new(cfg, b as u64, banks as u64))
                .collect(),
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Bank index holding `line_addr`.
    #[inline]
    pub fn bank_of(&self, line_addr: u64) -> usize {
        bank_index(line_addr, self.banks.len())
    }

    /// Lends every bank out (for the speculative weave phase), leaving
    /// this instance bankless; pair with [`Self::put_banks`]. While
    /// lent, every addressed accessor would panic — callers must not
    /// touch the shared levels until the banks return.
    pub(crate) fn take_banks(&mut self) -> Vec<LevelBank> {
        std::mem::take(&mut self.banks)
    }

    /// Returns the banks lent by [`Self::take_banks`], in bank order.
    pub(crate) fn put_banks(&mut self, banks: Vec<LevelBank>) {
        debug_assert!(self.banks.is_empty(), "banks returned while not lent");
        self.banks = banks;
    }

    /// The bank holding `line_addr`.
    #[inline]
    pub fn bank_mut(&mut self, line_addr: u64) -> &mut LevelBank {
        let b = self.bank_of(line_addr);
        &mut self.banks[b]
    }

    /// Total DRAM line fetches across banks.
    pub fn dram_accesses(&self) -> u64 {
        self.banks.iter().map(|b| b.dram_accesses).sum()
    }

    /// Inserts (or refreshes) a line in the L2, rippling dirty evictions
    /// down to L3 and DRAM — the write-back path for L1 spills.
    pub fn insert_l2(&mut self, line_addr: u64, line: L2Line, dirty: bool) {
        self.bank_mut(line_addr).insert_l2(line_addr, line, dirty);
    }

    /// Fetches a line in sentinel format from L2/L3/DRAM, returning the
    /// added latency (beyond L1).
    pub fn fetch(&mut self, line_addr: u64) -> (L2Line, u32) {
        self.bank_mut(line_addr).fetch(line_addr)
    }

    /// Functional (stat-free, LRU-free) read of a line from whichever
    /// shared level holds it, falling through to DRAM.
    pub fn peek_line(&self, line_addr: u64) -> L2Line {
        self.banks[self.bank_of(line_addr)].peek_line(line_addr)
    }

    /// Drops every cached copy of a line, writing the freshest one back to
    /// DRAM (page-eviction building block). The L1 levels above must have
    /// been handled by the caller first.
    pub fn evict_to_dram(&mut self, line_addr: u64) {
        self.bank_mut(line_addr).evict_to_dram(line_addr);
    }

    /// Overwrites a line's DRAM copy and drops stale cached copies.
    pub fn set_dram_line(&mut self, line_addr: u64, line: L2Line) {
        self.bank_mut(line_addr).dram.store(line_addr, line);
    }

    /// Reads a line's DRAM copy.
    pub fn dram_line(&self, line_addr: u64) -> L2Line {
        self.banks[self.bank_of(line_addr)].dram.load(line_addr)
    }

    /// Removes a line from DRAM entirely (its page was swapped out).
    pub fn remove_dram_line(&mut self, line_addr: u64) {
        self.bank_mut(line_addr).dram.lines.remove(&line_addr);
    }

    /// Flushes the L2 and L3 to DRAM.
    pub fn flush(&mut self) {
        for bank in &mut self.banks {
            bank.flush();
        }
    }

    /// Per-bank shared-level counters — the per-shard lanes of the
    /// telemetry registry (the summed view is [`Self::export_stats`]).
    pub fn bank_stats(&self) -> Vec<BankLevelStats> {
        self.banks
            .iter()
            .map(|bank| BankLevelStats {
                l2: bank.l2.stats,
                l3: bank.l3.stats,
                dram_accesses: bank.dram_accesses,
                l2_resident_lines: bank.l2.resident_lines() as u64,
                l3_resident_lines: bank.l3.resident_lines() as u64,
            })
            .collect()
    }

    /// Copies the shared-level counters into a stats block (summed over
    /// banks).
    pub fn export_stats(&self, stats: &mut SimStats) {
        let mut l2 = crate::stats::CacheStats::default();
        let mut l3 = crate::stats::CacheStats::default();
        for bank in &self.banks {
            l2.hits += bank.l2.stats.hits;
            l2.misses += bank.l2.stats.misses;
            l2.evictions += bank.l2.stats.evictions;
            l2.writebacks += bank.l2.stats.writebacks;
            l3.hits += bank.l3.stats.hits;
            l3.misses += bank.l3.stats.misses;
            l3.evictions += bank.l3.stats.evictions;
            l3.writebacks += bank.l3.stats.writebacks;
        }
        stats.l2 = l2;
        stats.l3 = l3;
        stats.dram_accesses = self.dram_accesses();
    }
}

/// The simulated L1D/L2/L3/DRAM hierarchy with Califorms support.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1d: SetAssocCache<L1Line>,
    shared: SharedLevels,
    /// Conversion and traffic counters, merged into the engine's stats.
    pub spills: u64,
    /// L2→L1 fill conversions of califormed lines.
    pub fills: u64,
    /// Misses whose latency the stream prefetcher hid.
    pub prefetch_hits: u64,
    /// Last-missed-line trackers (4 independent streams).
    streams: [u64; 4],
    stream_cursor: usize,
}

impl Hierarchy {
    /// Builds a hierarchy from a configuration.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1d: SetAssocCache::new(cfg.l1d_size, cfg.l1d_ways, cfg.l1d_latency),
            shared: SharedLevels::new(cfg),
            cfg,
            spills: 0,
            fills: 0,
            prefetch_hits: 0,
            streams: [u64::MAX; 4],
            stream_cursor: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// DRAM line fetches performed so far.
    pub fn dram_accesses(&self) -> u64 {
        self.shared.dram_accesses()
    }

    /// Detects sequential miss streams: returns true when `line_addr`
    /// continues one of the tracked streams (the prefetcher would already
    /// have the line in flight), updating the trackers either way.
    fn stream_hit(&mut self, line_addr: u64) -> bool {
        for s in &mut self.streams {
            if line_addr == s.wrapping_add(LINE_BYTES) {
                *s = line_addr;
                return true;
            }
        }
        self.streams[self.stream_cursor] = line_addr;
        self.stream_cursor = (self.stream_cursor + 1) % self.streams.len();
        false
    }

    /// Ensures `line_addr` is resident in the L1D (fill on miss, spill of
    /// the victim), returning the latency beyond the L1 hit latency.
    fn ensure_l1(&mut self, line_addr: u64) -> u32 {
        if self.l1d.access(line_addr).is_some() {
            return 0;
        }
        self.fill_l1_miss(line_addr)
    }

    /// The miss half of [`Self::ensure_l1`]: fetches `line_addr` from the
    /// shared levels into the L1 (spilling the victim) and returns the
    /// latency beyond the L1 hit latency. The caller has already probed
    /// the L1 (counting the miss).
    fn fill_l1_miss(&mut self, line_addr: u64) -> u32 {
        let prefetched = self.cfg.stream_prefetcher && self.stream_hit(line_addr);
        let (l2line, extra) = self.shared.fetch(line_addr);
        let extra = if prefetched {
            self.prefetch_hits += 1;
            extra.min(self.cfg.prefetch_residual)
        } else {
            extra
        };
        if l2line.califormed {
            self.fills += 1;
        }
        let l1line = fill_canonical(&l2line);
        if let Some(ev) = self.l1d.insert(line_addr, l1line, false) {
            if ev.dirty {
                let spilled = spill_canonical(&ev.value);
                if spilled.califormed {
                    self.spills += 1;
                }
                self.shared.insert_l2(ev.line_addr, spilled, true);
            }
        }
        extra
    }

    fn l1_line_mut(&mut self, line_addr: u64) -> &mut L1Line {
        // `ensure_l1` has run and already counted the architectural access.
        self.l1d
            .access_uncounted(line_addr)
            // analyze::allow(hot-path-unwrap): ensure_l1 on the line above pinned it
            .expect("line was just ensured resident")
    }

    /// Performs a load of `len` bytes at `addr` (line-crossing loads are
    /// split, as the cache controller would).
    ///
    /// Single-line accesses take a fast path: the security check is one
    /// AND against the line's bit vector, so a line with no security
    /// bytes skips the exception bookkeeping entirely.
    pub fn load(&mut self, addr: u64, len: usize, pc: u64) -> MemResult {
        let offset = line_offset(addr);
        if len != 0 && offset + len <= LINE_BYTES as usize {
            let line_addr = line_base(addr);
            let (latency, violating) = self.probe_line(line_addr, offset, len);
            // Canonical-line invariant: security bytes hold zero, so the
            // returned data is a straight copy either way. (The extra
            // peek is off the replay hot path — the engine uses
            // `load_quiet`.)
            // analyze::allow(hot-path-unwrap): probe_line just confirmed residency
            let l1 = self.l1d.peek(line_addr).expect("line was just probed");
            let data = l1.line().data()[offset..offset + len].to_vec();
            return MemResult {
                latency,
                data,
                exception: load_violation(violating, line_addr, pc),
            };
        }
        let mut latency = 0u32;
        let mut data = Vec::with_capacity(len);
        let mut exception = None;
        let mut cur = addr;
        let end = access_end(addr, len);
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_l1(line_addr);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let l1 = self.l1_line_mut(line_addr);
            let r = l1.load(offset, chunk);
            data.extend_from_slice(&r.data);
            if r.violation && exception.is_none() {
                let first = r.violating_bytes.trailing_zeros() as u64;
                exception = Some(CaliformsException {
                    fault_addr: cur + first,
                    access: AccessKind::Load,
                    kind: ExceptionKind::SecurityByteAccess,
                    pc,
                });
            }
            cur += chunk as u64;
        }
        MemResult {
            latency,
            data,
            exception,
        }
    }

    /// Performs a load of `len` bytes at `addr` **without materialising
    /// the data** — the replay hot path ([`crate::engine::Engine`]) only
    /// needs latency and exception, so this never touches the heap.
    /// Timing, LRU, stats and exception behaviour are identical to
    /// [`Self::load`]; the returned `data` is always empty.
    pub fn load_quiet(&mut self, addr: u64, len: usize, pc: u64) -> MemResult {
        let offset = line_offset(addr);
        if len != 0 && offset + len <= LINE_BYTES as usize {
            let line_addr = line_base(addr);
            let (latency, violating) = self.probe_line(line_addr, offset, len);
            return MemResult::quiet(latency, load_violation(violating, line_addr, pc));
        }
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = access_end(addr, len);
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_l1(line_addr);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let bv = self.l1_line_mut(line_addr).bitvector();
            if exception.is_none() {
                exception = load_violation(bv & range_mask(offset, chunk), line_addr, pc);
            }
            cur += chunk as u64;
        }
        MemResult::quiet(latency, exception)
    }

    /// Single-line access core shared by the [`Self::load`] /
    /// [`Self::load_quiet`] fast paths: ensures residency (counting the
    /// hit or miss), and returns the access latency plus the
    /// line-relative mask of accessed security bytes. On an L1 hit this
    /// is one set scan and one AND — a line with no security bytes
    /// incurs no exception bookkeeping at all.
    #[inline]
    fn probe_line(&mut self, line_addr: u64, offset: usize, len: usize) -> (u32, u64) {
        if let Some(hit) = self.l1d.access_entry(line_addr) {
            let bv = hit.value.bitvector();
            let violating = if bv == 0 {
                0
            } else {
                bv & range_mask(offset, len)
            };
            return (self.cfg.l1d_latency, violating);
        }
        let extra = self.fill_l1_miss(line_addr);
        let violating = self.l1_line_mut(line_addr).bitvector() & range_mask(offset, len);
        (self.cfg.l1d_latency + extra, violating)
    }

    /// Performs a store of `bytes` at `addr`. On a security-byte violation
    /// the store (to that line) is suppressed and the exception reported.
    ///
    /// The per-line security check is a single AND against the bit vector
    /// ([`califorms_core::CaliformedLine::write_bytes`]), so stores to
    /// lines with no security bytes skip the exception bookkeeping.
    pub fn store(&mut self, addr: u64, bytes: &[u8], pc: u64) -> MemResult {
        let offset = line_offset(addr);
        let len = bytes.len();
        if len != 0 && offset + len <= LINE_BYTES as usize {
            let line_addr = line_base(addr);
            // L1 hit: one set scan; the dirty bit is set through the same
            // entry handle, not a second scan.
            if let Some(hit) = self.l1d.access_entry(line_addr) {
                let exception = match hit.value.store(offset, bytes) {
                    Ok(()) => {
                        *hit.dirty = true;
                        None
                    }
                    Err(e) => Some(store_violation(e, line_addr, pc)),
                };
                return MemResult::quiet(self.cfg.l1d_latency, exception);
            }
            let extra = self.fill_l1_miss(line_addr);
            let latency = self.cfg.l1d_latency + extra;
            let exception = match self.l1_line_mut(line_addr).store(offset, bytes) {
                Ok(()) => {
                    self.l1d.mark_dirty(line_addr);
                    None
                }
                Err(e) => Some(store_violation(e, line_addr, pc)),
            };
            return MemResult::quiet(latency, exception);
        }
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = access_end(addr, bytes.len());
        let mut consumed = 0usize;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_l1(line_addr);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let l1 = self.l1_line_mut(line_addr);
            match l1.store(offset, &bytes[consumed..consumed + chunk]) {
                Ok(()) => self.l1d.mark_dirty(line_addr),
                Err(CoreError::StoreToSecurityByte { index }) => {
                    if exception.is_none() {
                        exception = Some(CaliformsException {
                            fault_addr: line_addr + index as u64,
                            access: AccessKind::Store,
                            kind: ExceptionKind::SecurityByteAccess,
                            pc,
                        });
                    }
                }
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            }
            cur += chunk as u64;
            consumed += chunk;
        }
        MemResult::quiet(latency, exception)
    }

    /// Executes a `CFORM` instruction (treated like a store in the
    /// pipeline: write-allocate fetch, then metadata update).
    pub fn cform(&mut self, insn: &CformInstruction, pc: u64) -> MemResult {
        let extra = self.ensure_l1(insn.line_addr);
        let latency = self.cfg.l1d_latency + extra;
        let l1 = self.l1_line_mut(insn.line_addr);
        let exception = match insn.execute(l1.line_mut()) {
            Ok(_) => {
                self.l1d.mark_dirty(insn.line_addr);
                None
            }
            Err(e) => Some(kmap_exception(e, insn.line_addr, pc)),
        };
        MemResult::quiet(latency, exception)
    }

    /// Reads a byte functionally (no timing, no LRU effect), searching the
    /// L1 first, then lower levels. Security bytes read as zero. Intended
    /// for tests and the attack simulations.
    pub fn peek_byte(&self, addr: u64) -> u8 {
        let line_addr = line_base(addr);
        let offset = line_offset(addr);
        if let Some(l1) = self.l1d.peek(line_addr) {
            return l1.line().data()[offset];
        }
        let l2line = self.shared.peek_line(line_addr);
        let l1 = fill_canonical(&l2line);
        l1.line().data()[offset]
    }

    /// Functional snapshot of a line's canonical *(data, security-mask)*
    /// state through whichever level currently holds it — no timing, LRU
    /// or stats effects. This is the hook the differential oracle
    /// (`califorms-oracle`) diffs final memory and blacklist state
    /// against.
    pub fn snapshot_line(&self, line_addr: u64) -> califorms_core::CaliformedLine {
        if let Some(l1) = self.l1d.peek(line_addr) {
            return *l1.line();
        }
        let l2line = self.shared.peek_line(line_addr);
        *fill_canonical(&l2line).line()
    }

    /// Whether the byte at `addr` is currently a security byte (functional
    /// check through whichever level holds the line).
    pub fn peek_is_security_byte(&self, addr: u64) -> bool {
        let line_addr = line_base(addr);
        let offset = line_offset(addr);
        if let Some(l1) = self.l1d.peek(line_addr) {
            return l1.line().is_security_byte(offset);
        }
        let l2line = self.shared.peek_line(line_addr);
        let l1 = fill_canonical(&l2line);
        l1.line().is_security_byte(offset)
    }

    /// Executes a **non-temporal** `CFORM` (the footnote-3 variant): the
    /// line is modified in place at the L2 (fetching it there if needed)
    /// without being allocated into the L1 — deallocation-time califorming
    /// should not pollute the L1 with dead lines.
    pub fn cform_nt(&mut self, insn: &CformInstruction, pc: u64) -> MemResult {
        // Invalidate any L1 copy (write back if dirty) so the L2 copy is
        // authoritative.
        if let Some((l1line, dirty)) = self.l1d.invalidate(insn.line_addr) {
            if dirty {
                let spilled = spill_canonical(&l1line);
                if spilled.califormed {
                    self.spills += 1;
                }
                self.shared.insert_l2(insn.line_addr, spilled, true);
            }
        }
        let (l2line, extra) = self.shared.fetch(insn.line_addr);
        let latency = self.cfg.l1d_latency + extra;
        let mut l1line = fill_canonical(&l2line);
        let exception = match insn.execute(l1line.line_mut()) {
            Ok(_) => {
                let spilled = spill_canonical(&l1line);
                self.shared.insert_l2(insn.line_addr, spilled, true);
                None
            }
            Err(e) => Some(kmap_exception(e, insn.line_addr, pc)),
        };
        MemResult::quiet(latency, exception)
    }

    /// Whether a line is currently resident in the L1 data cache (used by
    /// the non-temporal-CFORM pollution tests).
    pub fn l1_contains(&self, line_addr: u64) -> bool {
        self.l1d.peek(line_addr).is_some()
    }

    /// Writes one line back to DRAM and drops every cached copy — the
    /// building block of page swap-out (the OS must see the line's current
    /// content and metadata bit in memory).
    pub fn evict_line_to_dram(&mut self, line_addr: u64) {
        if let Some((l1line, _)) = self.l1d.invalidate(line_addr) {
            let spilled = spill_canonical(&l1line);
            if spilled.califormed {
                self.spills += 1;
            }
            self.shared.evict_to_dram(line_addr); // drop stale copies
            self.shared.set_dram_line(line_addr, spilled);
            return;
        }
        self.shared.evict_to_dram(line_addr);
    }

    /// Reads a line's DRAM copy (sentinel format; the *califormed?* bit
    /// conceptually lives in the spare ECC bits).
    pub fn dram_line(&self, line_addr: u64) -> L2Line {
        self.shared.dram_line(line_addr)
    }

    /// Overwrites a line's DRAM copy (page swap-in path).
    pub fn set_dram_line(&mut self, line_addr: u64, line: L2Line) {
        self.shared.set_dram_line(line_addr, line);
    }

    /// Removes a line from DRAM entirely (its page was swapped out).
    pub fn remove_dram_line(&mut self, line_addr: u64) {
        self.shared.remove_dram_line(line_addr);
    }

    /// Flushes every cache level to DRAM (end-of-run or I/O boundary).
    pub fn flush(&mut self) {
        for (addr, l1line, dirty) in self.l1d.drain() {
            if dirty {
                let spilled = spill_canonical(&l1line);
                if spilled.califormed {
                    self.spills += 1;
                }
                self.shared.insert_l2(addr, spilled, true);
            }
        }
        self.shared.flush();
    }

    /// Copies the cache counters into a stats block.
    pub fn export_stats(&self, stats: &mut SimStats) {
        stats.l1d = self.l1d.stats;
        self.shared.export_stats(stats);
        stats.spills = self.spills;
        stats.fills = self.fills;
    }
}

// --- checkpoint serialization -----------------------------------------
//
// Implemented here (not in `checkpoint`) because the hierarchy's fields
// are private: the format module supplies the byte codecs, each owner
// serializes its own state.

use crate::checkpoint::{self as ck, CheckpointError};

impl Dram {
    /// DRAM lines in canonical form: sorted by address. `LineMap`
    /// iteration order is deterministic but insertion-history-dependent,
    /// and DRAM content is never iterated in a result-bearing path, so
    /// sorting here buys byte-identical checkpoints for
    /// semantically-equal states at no simulation cost.
    fn save_state(&self, w: &mut ck::Wr) {
        let mut lines: Vec<(u64, &L2Line)> = self.lines.iter().map(|(k, v)| (*k, v)).collect();
        lines.sort_unstable_by_key(|&(addr, _)| addr);
        w.u64(lines.len() as u64);
        for (addr, line) in lines {
            w.u64(addr);
            ck::put_l2_line(w, line);
        }
    }

    fn restore_state(r: &mut ck::Rd<'_>) -> ck::Result<Self> {
        let n = r.count()?;
        let mut dram = Dram::default();
        let mut prev = None;
        for _ in 0..n {
            let addr = r.u64()?;
            if addr % LINE_BYTES != 0 {
                return Err(CheckpointError::Corrupt("DRAM line address unaligned"));
            }
            if prev.is_some_and(|p| addr <= p) {
                return Err(CheckpointError::Corrupt(
                    "DRAM lines out of canonical order",
                ));
            }
            prev = Some(addr);
            dram.lines.insert(addr, ck::get_l2_line(r)?);
        }
        Ok(dram)
    }
}

impl LevelBank {
    pub(crate) fn save_state(&self, w: &mut ck::Wr) {
        ck::put_cache(w, &self.l2, ck::put_l2_line);
        ck::put_cache(w, &self.l3, ck::put_l2_line);
        self.dram.save_state(w);
        w.u64(self.dram_accesses);
    }

    /// Restores into a freshly-built bank of the same geometry (`self.cfg`
    /// and the bank indices are reconstructed from the config section, so
    /// only the mutable state travels in the payload).
    pub(crate) fn restore_state(&mut self, r: &mut ck::Rd<'_>) -> ck::Result<()> {
        ck::get_cache(r, &mut self.l2, ck::get_l2_line)?;
        ck::get_cache(r, &mut self.l3, ck::get_l2_line)?;
        self.dram = Dram::restore_state(r)?;
        self.dram_accesses = r.u64()?;
        Ok(())
    }
}

impl SharedLevels {
    pub(crate) fn save_state(&self, w: &mut ck::Wr) {
        w.u64(self.banks.len() as u64);
        for bank in &self.banks {
            bank.save_state(w);
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut ck::Rd<'_>) -> ck::Result<()> {
        let n = r.count()?;
        if n != self.banks.len() {
            return Err(CheckpointError::ConfigMismatch("shared-level bank count"));
        }
        for bank in &mut self.banks {
            bank.restore_state(r)?;
        }
        Ok(())
    }
}

impl Hierarchy {
    /// Serializes the full mutable hierarchy state (the `SEC_HIERARCHY`
    /// payload). The configuration travels separately in `SEC_CONFIG`.
    pub(crate) fn save_state(&self, w: &mut ck::Wr) {
        w.u64(self.spills);
        w.u64(self.fills);
        w.u64(self.prefetch_hits);
        for s in self.streams {
            w.u64(s);
        }
        w.u64(self.stream_cursor as u64);
        ck::put_cache(w, &self.l1d, ck::put_l1_line);
        self.shared.save_state(w);
    }

    /// Rebuilds a hierarchy from a `SEC_HIERARCHY` payload against `cfg`.
    pub(crate) fn restore_state(cfg: HierarchyConfig, r: &mut ck::Rd<'_>) -> ck::Result<Self> {
        let mut h = Hierarchy::new(cfg);
        h.spills = r.u64()?;
        h.fills = r.u64()?;
        h.prefetch_hits = r.u64()?;
        for s in &mut h.streams {
            *s = r.u64()?;
        }
        let cursor = r.u64()?;
        if cursor as usize >= h.streams.len() {
            return Err(CheckpointError::Corrupt("stream cursor out of range"));
        }
        h.stream_cursor = cursor as usize;
        ck::get_cache(r, &mut h.l1d, ck::get_l1_line)?;
        h.shared.restore_state(r)?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::westmere())
    }

    #[test]
    fn store_then_load_round_trips_through_l1() {
        let mut h = hier();
        let r = h.store(0x1000, &[1, 2, 3, 4], 0);
        assert!(r.exception.is_none());
        let r = h.load(0x1000, 4, 0);
        assert_eq!(r.data, vec![1, 2, 3, 4]);
        assert!(r.exception.is_none());
        assert_eq!(r.latency, 4, "second access hits in L1");
    }

    #[test]
    fn miss_latency_accumulates_through_levels() {
        let mut h = hier();
        let r = h.load(0x4000, 1, 0);
        // Cold miss: L1(4) + L2(7) + L3(27) + DRAM(300)
        assert_eq!(r.latency, 4 + 7 + 27 + 300);
        let r = h.load(0x4000, 1, 0);
        assert_eq!(r.latency, 4);
    }

    #[test]
    fn plus_one_cycle_config_adds_to_l2_and_l3() {
        let mut h = Hierarchy::new(HierarchyConfig::westmere_plus_one_cycle());
        let r = h.load(0x4000, 1, 0);
        assert_eq!(r.latency, 4 + 8 + 28 + 300);
    }

    #[test]
    fn cform_then_rogue_load_raises_exception() {
        let mut h = hier();
        h.store(0x2000, &[0xAA; 16], 0);
        // Caliform bytes 4..8 of the line.
        let insn = CformInstruction::set(0x2000, 0b1111 << 4);
        // The store above left non-zero data at 4..8; CFORM zeroes it.
        assert!(h.cform(&insn, 1).exception.is_none());
        let r = h.load(0x2000 + 4, 1, 2);
        let exc = r.exception.expect("touching a security byte faults");
        assert_eq!(exc.fault_addr, 0x2004);
        assert_eq!(exc.access, AccessKind::Load);
        assert_eq!(r.data, vec![0], "loads of security bytes return zero");
    }

    #[test]
    fn rogue_store_is_suppressed() {
        let mut h = hier();
        h.cform(&CformInstruction::set(0x2000, 1 << 10), 0);
        let r = h.store(0x2000 + 8, &[7, 7, 7, 7], 1);
        let exc = r.exception.expect("store sweeping a security byte faults");
        assert_eq!(exc.fault_addr, 0x200A);
        assert_eq!(exc.access, AccessKind::Store);
        // The whole chunk was suppressed.
        assert_eq!(h.load(0x2008, 1, 2).data, vec![0]);
    }

    #[test]
    fn califormed_line_survives_eviction_and_returns() {
        let mut h = hier();
        let target = 0x8000u64;
        h.cform(&CformInstruction::set(target, 1 << 3), 0);
        assert!(h.store(target, &[9, 9, 9], 0).exception.is_none());
        // Thrash the L1 set this line maps to. L1: 32KB/8way/64B = 64 sets;
        // stride of 64*64 = 4096 revisits the same set.
        for i in 1..=16u64 {
            h.load(target + i * 4096, 1, 0);
        }
        assert!(h.l1d.peek(target).is_none(), "victim was evicted");
        assert!(h.spills >= 1, "dirty califormed line was spilled");
        // Security byte still detected after the fill conversion.
        let r = h.load(target + 3, 1, 1);
        assert!(r.exception.is_some());
        // And the data survived the format conversions.
        assert_eq!(h.load(target, 3, 1).data, vec![9, 9, 9]);
    }

    #[test]
    fn cform_kmap_violation_surfaces_as_exception() {
        let mut h = hier();
        let insn = CformInstruction::set(0x3000, 1 << 5);
        assert!(h.cform(&insn, 0).exception.is_none());
        let exc = h.cform(&insn, 1).exception.expect("double set faults");
        assert_eq!(exc.kind, ExceptionKind::CformDoubleSet);
        assert_eq!(exc.fault_addr, 0x3005);
    }

    #[test]
    fn flush_pushes_califormed_data_to_dram() {
        let mut h = hier();
        h.store(0x5000, &[1, 2, 3], 0);
        h.cform(&CformInstruction::set(0x5000, 1 << 60), 0);
        h.flush();
        assert_eq!(h.peek_byte(0x5000), 1);
        assert!(h.peek_is_security_byte(0x5000 + 60));
        assert!(!h.peek_is_security_byte(0x5000 + 59));
    }

    #[test]
    fn line_crossing_load_is_split_and_checked() {
        let mut h = hier();
        h.store(0x1000 + 60, &[1, 2, 3, 4], 0);
        h.store(0x1040, &[5, 6, 7, 8], 0);
        let r = h.load(0x1000 + 60, 8, 0);
        assert_eq!(r.data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // Now blacklist a byte in the second line and re-check.
        h.cform(&CformInstruction::set(0x1040, 1 << 1), 0);
        let r = h.load(0x1000 + 60, 8, 0);
        assert_eq!(r.exception.unwrap().fault_addr, 0x1041);
        assert_eq!(r.data[5], 0);
    }

    #[test]
    fn nt_cform_does_not_pollute_the_l1() {
        let mut h = hier();
        let target = 0xA000u64;
        let r = h.cform_nt(&CformInstruction::set(target, 1 << 5), 0);
        assert!(r.exception.is_none());
        assert!(!h.l1_contains(target), "NT variant bypasses the L1");
        // The metadata is live: a subsequent rogue access faults.
        let r = h.load(target + 5, 1, 1);
        assert!(r.exception.is_some());
        assert_eq!(r.data, vec![0]);
    }

    #[test]
    fn nt_cform_sees_dirty_l1_data_first() {
        let mut h = hier();
        h.store(0xB000, &[1, 2, 3, 4], 0);
        assert!(h.l1_contains(0xB000));
        h.cform_nt(&CformInstruction::set(0xB000, 1 << 40), 0);
        assert!(!h.l1_contains(0xB000), "L1 copy was written back");
        assert_eq!(h.load(0xB000, 4, 0).data, vec![1, 2, 3, 4]);
        assert!(h.peek_is_security_byte(0xB000 + 40));
    }

    #[test]
    fn nt_cform_kmap_faults_like_the_temporal_variant() {
        let mut h = hier();
        h.cform_nt(&CformInstruction::set(0xC000, 1), 0);
        let exc = h
            .cform_nt(&CformInstruction::set(0xC000, 1), 1)
            .exception
            .expect("double set faults");
        assert_eq!(exc.kind, ExceptionKind::CformDoubleSet);
    }

    #[test]
    fn evict_line_to_dram_moves_content_and_metadata() {
        let mut h = hier();
        h.store(0xD000, &[9, 8, 7], 0);
        h.cform(&CformInstruction::set(0xD000, 1 << 33), 0);
        h.evict_line_to_dram(0xD000);
        assert!(!h.l1_contains(0xD000));
        let dram = h.dram_line(0xD000);
        assert!(dram.califormed, "metadata bit reached the ECC bits");
        // Round-trip through fill shows content integrity.
        let l1 = califorms_core::fill(&dram).unwrap();
        assert_eq!(&l1.line().data()[..3], &[9, 8, 7]);
        assert!(l1.line().is_security_byte(33));
    }

    #[test]
    fn peek_does_not_perturb_stats() {
        let mut h = hier();
        h.store(0x9000, &[1], 0);
        let hits_before = h.l1d.stats.hits;
        let misses_before = h.l1d.stats.misses;
        let _ = h.peek_byte(0x9000);
        let _ = h.peek_is_security_byte(0x9040);
        assert_eq!(h.l1d.stats.hits, hits_before);
        assert_eq!(h.l1d.stats.misses, misses_before);
    }
}
