//! `tracepack`: a compact, streaming binary trace format.
//!
//! The paper's evaluation replays SimPoint regions of hundreds of millions
//! of memory operations; holding them as `Vec<TraceOp>` costs 32 B per op
//! and walking them through boxed iterator chains wastes the replay hot
//! path. A *trace pack* stores the same stream in a few bytes per op:
//!
//! ```text
//! header  := magic "CFTP" | version u8 (=1)
//! op      := tag u8 | payload
//! end     := 0xFF
//!
//! tag 0  Exec     | varint n
//! tag 1  Load     | svarint addr-delta | u8 size (1..=64)
//! tag 2  Store    | svarint addr-delta | u8 size (1..=64)
//! tag 3  Cform    | svarint addr-delta | varint attrs | varint mask
//! tag 4  CformNt  | svarint addr-delta | varint attrs | varint mask
//! tag 5  MaskPush |
//! tag 6  MaskPop  |
//! ```
//!
//! `varint` is LEB128 (7 bits per byte, low bits first); `svarint` is a
//! zigzag-encoded varint. Addresses are **delta-encoded** against the
//! previous op's address (`Cform`/`CformNt` use their line address), so
//! the sequential and strided streams real programs produce collapse to
//! one- or two-byte deltas. The `0xFF` end marker lets a reader
//! distinguish a complete stream from a truncated one.
//!
//! [`TracePackWriter`] and [`TracePackReader`] encode/decode against any
//! `io::Write`/`io::Read` without materialising the trace (the reader
//! refills a fixed internal buffer); [`TracePack`] is the owned in-memory
//! form the replay hot path batch-decodes from (see
//! [`crate::engine::Engine::run_pack`]).

use crate::trace::TraceOp;
use std::io::{self, Read, Write};

/// The four magic bytes opening every pack.
pub const MAGIC: [u8; 4] = *b"CFTP";

/// Current format version.
pub const VERSION: u8 = 1;

/// End-of-stream marker tag.
const TAG_END: u8 = 0xFF;

/// Largest access size a packed `Load`/`Store` may carry (one cache line;
/// the cache controller splits anything larger before it reaches the
/// hierarchy, and the generators never emit it).
pub const MAX_ACCESS_BYTES: usize = 64;

/// Worst-case encoded size of one op: tag + 10-byte address delta + two
/// 10-byte varints (`Cform` attrs/mask).
pub const MAX_OP_BYTES: usize = 1 + 10 + 10 + 10;

/// Decoding failure.
#[derive(Debug)]
pub enum TracePackError {
    /// Underlying reader/writer failed.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is newer than this decoder.
    UnsupportedVersion(u8),
    /// An op carried an unknown tag byte.
    BadTag(u8),
    /// The stream ended without the end marker (or inside an op).
    Truncated,
    /// Bytes follow the end marker (corrupted tail or concatenated
    /// streams); the payload is the number of trailing bytes.
    TrailingBytes(usize),
    /// A varint ran past 10 bytes (cannot fit in `u64`).
    VarintOverflow,
    /// A `Load`/`Store` size outside `1..=`[`MAX_ACCESS_BYTES`].
    BadSize(u8),
}

impl std::fmt::Display for TracePackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TracePackError::Io(e) => write!(f, "trace pack I/O error: {e}"),
            TracePackError::BadMagic => write!(f, "not a trace pack (bad magic)"),
            TracePackError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace pack version {v} (decoder knows {VERSION})"
                )
            }
            TracePackError::BadTag(t) => write!(f, "unknown trace pack op tag {t:#04x}"),
            TracePackError::Truncated => write!(f, "trace pack truncated (no end marker)"),
            TracePackError::TrailingBytes(n) => {
                write!(f, "trace pack has {n} byte(s) after the end marker")
            }
            TracePackError::VarintOverflow => write!(f, "trace pack varint exceeds 64 bits"),
            TracePackError::BadSize(s) => {
                write!(
                    f,
                    "trace pack access size {s} outside 1..={MAX_ACCESS_BYTES}"
                )
            }
        }
    }
}

impl std::error::Error for TracePackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TracePackError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TracePackError {
    fn from(e: io::Error) -> Self {
        TracePackError::Io(e)
    }
}

/// Decoding result alias.
pub type Result<T> = std::result::Result<T, TracePackError>;

// --- varint primitives over byte slices -------------------------------

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over an encoded byte slice: the shared decoding core of the
/// streaming reader and the in-memory batch decoder.
#[derive(Debug, Clone)]
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    #[inline]
    fn byte(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or(TracePackError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 63 && b > if shift == 63 { 1 } else { 0 } {
                return Err(TracePackError::VarintOverflow);
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TracePackError::VarintOverflow);
            }
        }
    }

    /// Decodes one op (or the end marker → `None`), updating `last_addr`.
    #[inline]
    fn op(&mut self, last_addr: &mut u64) -> Result<Option<TraceOp>> {
        let tag = self.byte()?;
        let op = match tag {
            0 => TraceOp::Exec(
                u32::try_from(self.varint()?).map_err(|_| TracePackError::VarintOverflow)?,
            ),
            1 | 2 => {
                let delta = unzigzag(self.varint()?);
                let addr = last_addr.wrapping_add(delta as u64);
                *last_addr = addr;
                let size = self.byte()?;
                if size == 0 || size as usize > MAX_ACCESS_BYTES {
                    return Err(TracePackError::BadSize(size));
                }
                if tag == 1 {
                    TraceOp::Load { addr, size }
                } else {
                    TraceOp::Store { addr, size }
                }
            }
            3 | 4 => {
                let delta = unzigzag(self.varint()?);
                let line_addr = last_addr.wrapping_add(delta as u64);
                *last_addr = line_addr;
                let attrs = self.varint()?;
                let mask = self.varint()?;
                if tag == 3 {
                    TraceOp::Cform {
                        line_addr,
                        attrs,
                        mask,
                    }
                } else {
                    TraceOp::CformNt {
                        line_addr,
                        attrs,
                        mask,
                    }
                }
            }
            5 => TraceOp::MaskPush,
            6 => TraceOp::MaskPop,
            TAG_END => return Ok(None),
            other => return Err(TracePackError::BadTag(other)),
        };
        Ok(Some(op))
    }
}

// --- encoding ---------------------------------------------------------

/// Encoder state shared by the streaming writer and [`TracePack::from_ops`].
#[derive(Debug, Default)]
struct Encoder {
    last_addr: u64,
    ops: u64,
}

impl Encoder {
    #[inline]
    fn addr_delta(&mut self, out: &mut Vec<u8>, addr: u64) {
        let delta = addr.wrapping_sub(self.last_addr) as i64;
        self.last_addr = addr;
        put_varint(out, zigzag(delta));
    }

    /// Appends one encoded op to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a `Load`/`Store` size is `0` or exceeds
    /// [`MAX_ACCESS_BYTES`] — the format's (and hierarchy's) access-size
    /// contract.
    fn encode(&mut self, out: &mut Vec<u8>, op: TraceOp) {
        self.ops += 1;
        match op {
            TraceOp::Exec(n) => {
                out.push(0);
                put_varint(out, u64::from(n));
            }
            TraceOp::Load { addr, size } | TraceOp::Store { addr, size } => {
                assert!(
                    size != 0 && size as usize <= MAX_ACCESS_BYTES,
                    "trace pack access size {size} outside 1..={MAX_ACCESS_BYTES}"
                );
                out.push(if matches!(op, TraceOp::Load { .. }) {
                    1
                } else {
                    2
                });
                self.addr_delta(out, addr);
                out.push(size);
            }
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            }
            | TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => {
                out.push(if matches!(op, TraceOp::Cform { .. }) {
                    3
                } else {
                    4
                });
                self.addr_delta(out, line_addr);
                put_varint(out, attrs);
                put_varint(out, mask);
            }
            TraceOp::MaskPush => out.push(5),
            TraceOp::MaskPop => out.push(6),
        }
    }
}

/// Streaming encoder: writes the header up front, ops as they arrive, and
/// the end marker on [`finish`](Self::finish). Never materialises the
/// trace; ops are staged through a small internal buffer that is flushed
/// to the sink whenever it fills.
#[derive(Debug)]
pub struct TracePackWriter<W: Write> {
    sink: W,
    buf: Vec<u8>,
    enc: Encoder,
    finished: bool,
}

/// Flush threshold of the writer's staging buffer.
const WRITER_BUF: usize = 64 * 1024;

impl<W: Write> TracePackWriter<W> {
    /// Starts a pack on `sink`, writing the header.
    ///
    /// # Errors
    ///
    /// Propagates sink write failures.
    pub fn new(mut sink: W) -> Result<Self> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&[VERSION])?;
        Ok(Self {
            sink,
            buf: Vec::with_capacity(WRITER_BUF + MAX_OP_BYTES),
            enc: Encoder::default(),
            finished: false,
        })
    }

    /// Encodes and stages one op.
    ///
    /// # Errors
    ///
    /// Propagates sink write failures when the staging buffer flushes.
    ///
    /// # Panics
    ///
    /// Panics on an access size outside `1..=`[`MAX_ACCESS_BYTES`].
    pub fn write_op(&mut self, op: TraceOp) -> Result<()> {
        debug_assert!(!self.finished, "write_op after finish");
        self.enc.encode(&mut self.buf, op);
        if self.buf.len() >= WRITER_BUF {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Ops written so far.
    pub fn ops_written(&self) -> u64 {
        self.enc.ops
    }

    /// Writes the end marker, flushes, and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink write/flush failures.
    pub fn finish(mut self) -> Result<W> {
        self.finished = true;
        self.buf.push(TAG_END);
        self.sink.write_all(&self.buf)?;
        self.buf.clear();
        self.sink.flush()?;
        Ok(self.sink)
    }
}

// --- streaming reader -------------------------------------------------

/// Refill size of the reader's internal buffer.
const READER_BUF: usize = 64 * 1024;

/// Streaming decoder over any `io::Read`: refills a fixed internal buffer
/// and decodes ops from it, so a multi-gigabyte pack file replays in
/// constant memory. Use [`next_batch`](Self::next_batch) on the hot path;
/// the `Iterator` impl yields one op at a time for convenience.
#[derive(Debug)]
pub struct TracePackReader<R: Read> {
    source: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    source_done: bool,
    last_addr: u64,
    ops_read: u64,
    finished: bool,
}

impl<R: Read> TracePackReader<R> {
    /// Opens a pack, validating the header.
    ///
    /// # Errors
    ///
    /// [`TracePackError::BadMagic`] / [`TracePackError::UnsupportedVersion`]
    /// on a foreign stream, I/O errors from the source.
    pub fn new(mut source: R) -> Result<Self> {
        let mut header = [0u8; 5];
        source.read_exact(&mut header).map_err(|e| {
            // A short stream is "not a pack"; a real I/O failure must
            // surface as such, not masquerade as corruption.
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TracePackError::BadMagic
            } else {
                TracePackError::Io(e)
            }
        })?;
        if header[..4] != MAGIC {
            return Err(TracePackError::BadMagic);
        }
        if header[4] > VERSION {
            return Err(TracePackError::UnsupportedVersion(header[4]));
        }
        Ok(Self {
            source,
            buf: vec![0u8; READER_BUF],
            start: 0,
            end: 0,
            source_done: false,
            last_addr: 0,
            ops_read: 0,
            finished: false,
        })
    }

    /// Tops up the internal buffer so at least [`MAX_OP_BYTES`] are
    /// available (unless the source is exhausted).
    fn refill(&mut self) -> Result<()> {
        if self.source_done || self.end - self.start >= MAX_OP_BYTES {
            return Ok(());
        }
        self.buf.copy_within(self.start..self.end, 0);
        self.end -= self.start;
        self.start = 0;
        while self.end < MAX_OP_BYTES {
            let n = self.source.read(&mut self.buf[self.end..])?;
            if n == 0 {
                self.source_done = true;
                break;
            }
            self.end += n;
        }
        Ok(())
    }

    /// Decodes the next op; `Ok(None)` at the (validated) end of stream.
    ///
    /// # Errors
    ///
    /// Any [`TracePackError`]; [`TracePackError::Truncated`] if the source
    /// ends before the end marker.
    pub fn next_op(&mut self) -> Result<Option<TraceOp>> {
        if self.finished {
            return Ok(None);
        }
        self.refill()?;
        let mut cur = Cursor {
            buf: &self.buf[self.start..self.end],
            pos: 0,
        };
        let op = cur.op(&mut self.last_addr)?;
        self.start += cur.pos;
        match op {
            Some(op) => {
                self.ops_read += 1;
                Ok(Some(op))
            }
            None => {
                self.finished = true;
                Ok(None)
            }
        }
    }

    /// Decodes up to `out.len()` ops into `out`, returning how many were
    /// written (0 at end of stream). The replay engines call this to amortise
    /// per-op dispatch over a fixed ring.
    ///
    /// # Errors
    ///
    /// Any [`TracePackError`].
    pub fn next_batch(&mut self, out: &mut [TraceOp]) -> Result<usize> {
        let mut n = 0;
        while n < out.len() {
            match self.next_op()? {
                Some(op) => {
                    out[n] = op;
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// Ops decoded so far.
    pub fn ops_read(&self) -> u64 {
        self.ops_read
    }
}

impl<R: Read> Iterator for TracePackReader<R> {
    type Item = Result<TraceOp>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_op().transpose()
    }
}

// --- owned pack -------------------------------------------------------

/// An owned, fully-encoded trace pack: the in-memory form the replay hot
/// path batch-decodes from, and the unit [`crate::multicore::MulticoreEngine`]
/// shards across cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePack {
    bytes: Vec<u8>,
    ops: u64,
}

impl TracePack {
    /// Encodes an op stream into a pack.
    ///
    /// # Panics
    ///
    /// Panics on an access size outside `1..=`[`MAX_ACCESS_BYTES`].
    pub fn from_ops<I: IntoIterator<Item = TraceOp>>(ops: I) -> Self {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        let mut enc = Encoder::default();
        for op in ops {
            enc.encode(&mut bytes, op);
        }
        bytes.push(TAG_END);
        Self {
            bytes,
            ops: enc.ops,
        }
    }

    /// Parses a pack from its serialised bytes (e.g. read back from disk),
    /// validating the header and walking the stream once to count ops and
    /// reject corruption up front.
    ///
    /// # Errors
    ///
    /// Any [`TracePackError`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        if bytes.len() < 5 || bytes[..4] != MAGIC {
            return Err(TracePackError::BadMagic);
        }
        if bytes[4] > VERSION {
            return Err(TracePackError::UnsupportedVersion(bytes[4]));
        }
        let mut cur = Cursor {
            buf: &bytes[5..],
            pos: 0,
        };
        let mut last_addr = 0u64;
        let mut ops = 0u64;
        while cur.op(&mut last_addr)?.is_some() {
            ops += 1;
        }
        if cur.pos != cur.buf.len() {
            return Err(TracePackError::TrailingBytes(cur.buf.len() - cur.pos));
        }
        Ok(Self { bytes, ops })
    }

    /// The serialised bytes (header + op stream + end marker).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of ops in the pack.
    pub fn len_ops(&self) -> u64 {
        self.ops
    }

    /// Whether the pack holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// Encoded bytes per op — the compaction the format buys.
    pub fn bytes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            (self.bytes.len() - 6) as f64 / self.ops as f64
        }
    }

    /// A zero-I/O batch decoder over this pack.
    pub fn decoder(&self) -> PackDecoder<'_> {
        PackDecoder {
            cur: Cursor {
                buf: &self.bytes[5..],
                pos: 0,
            },
            last_addr: 0,
            done: false,
            ops_read: 0,
        }
    }

    /// A decoder positioned at `point`, as captured by
    /// [`PackDecoder::resume_point`] against this same pack: decoding
    /// from here is byte-for-byte identical to decoding from the start
    /// and skipping `point.ops_read` ops (the resume seam of
    /// `crate::checkpoint`).
    ///
    /// # Errors
    ///
    /// [`TracePackError::Truncated`] when the offset runs past the
    /// encoded stream — a resume point can only be *too far*, never
    /// misaligned, because the checkpoint reader validates its own
    /// checksum first; a lying offset on a shorter pack must surface as
    /// a typed error, not a panic.
    pub fn resume_from(&self, point: ResumePoint) -> Result<PackDecoder<'_>> {
        let body = &self.bytes[5..];
        if point.byte_offset > body.len() as u64 {
            return Err(TracePackError::Truncated);
        }
        Ok(PackDecoder {
            cur: Cursor {
                buf: body,
                pos: point.byte_offset as usize,
            },
            last_addr: point.last_addr,
            done: point.done,
            ops_read: point.ops_read,
        })
    }

    /// Iterates the decoded ops.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt stream — a pack built by [`Self::from_ops`] or
    /// validated by [`Self::from_bytes`] is always well-formed.
    pub fn iter(&self) -> impl Iterator<Item = TraceOp> + '_ {
        let mut dec = self.decoder();
        // analyze::allow(hot-path-unwrap): packs are validated at construction by from_ops/from_bytes
        std::iter::from_fn(move || dec.next_op().expect("validated pack is well-formed"))
    }

    /// Decodes the whole pack into a `Vec` (tests and tools; replay paths
    /// should batch-decode instead).
    pub fn to_vec(&self) -> Vec<TraceOp> {
        // analyze::allow(hot-path-alloc): tests-and-tools convenience; replay engines batch-decode instead
        self.iter().collect()
    }
}

/// A seekable decode-resume point: where a [`PackDecoder`] stands in the
/// encoded stream, plus the delta-decoding context needed to continue
/// from there. Addresses are delta-encoded, so the byte offset alone is
/// not enough — `last_addr` carries the decoder's address context across
/// the seam. Obtained from [`PackDecoder::resume_point`]; turned back
/// into a live decoder by [`TracePack::resume_from`]. Checkpoints
/// (`crate::checkpoint`) persist exactly this per replay lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumePoint {
    /// Encoded bytes consumed past the 5-byte header.
    pub byte_offset: u64,
    /// Ops decoded so far.
    pub ops_read: u64,
    /// Address context for delta decoding (the previous op's address).
    pub last_addr: u64,
    /// Whether the end marker has already been consumed.
    pub done: bool,
}

/// Zero-I/O decoder over an in-memory [`TracePack`]; the replay engines
/// drive it a batch at a time.
#[derive(Debug, Clone)]
pub struct PackDecoder<'a> {
    cur: Cursor<'a>,
    last_addr: u64,
    done: bool,
    ops_read: u64,
}

impl PackDecoder<'_> {
    /// Decodes the next op; `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Any [`TracePackError`] on a corrupt stream.
    #[inline]
    pub fn next_op(&mut self) -> Result<Option<TraceOp>> {
        if self.done {
            return Ok(None);
        }
        let op = self.cur.op(&mut self.last_addr)?;
        if op.is_none() {
            self.done = true;
        } else {
            self.ops_read += 1;
        }
        Ok(op)
    }

    /// Ops decoded so far (deterministic decode-progress counter).
    pub fn ops_read(&self) -> u64 {
        self.ops_read
    }

    /// Encoded bytes consumed so far, including the end marker once the
    /// stream is drained.
    pub fn bytes_consumed(&self) -> u64 {
        self.cur.pos as u64
    }

    /// Captures the decoder's current position as a seekable
    /// [`ResumePoint`]; [`TracePack::resume_from`] reconstructs an
    /// equivalent decoder from it.
    pub fn resume_point(&self) -> ResumePoint {
        ResumePoint {
            byte_offset: self.cur.pos as u64,
            ops_read: self.ops_read,
            last_addr: self.last_addr,
            done: self.done,
        }
    }

    /// Decodes up to `out.len()` ops into `out`, returning the count
    /// (0 at end of stream).
    ///
    /// # Errors
    ///
    /// Any [`TracePackError`] on a corrupt stream.
    #[inline]
    pub fn next_batch(&mut self, out: &mut [TraceOp]) -> Result<usize> {
        let mut n = 0;
        while n < out.len() {
            match self.next_op()? {
                Some(op) => {
                    out[n] = op;
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::Exec(400),
            TraceOp::Store {
                addr: 0x1000,
                size: 8,
            },
            TraceOp::Load {
                addr: 0x1008,
                size: 8,
            },
            TraceOp::Cform {
                line_addr: 0x1040,
                attrs: 0x7F << 56,
                mask: 0x7F << 56,
            },
            TraceOp::MaskPush,
            TraceOp::Load {
                addr: 0x1041,
                size: 1,
            },
            TraceOp::MaskPop,
            TraceOp::CformNt {
                line_addr: 0x1040,
                attrs: 0,
                mask: 0x7F << 56,
            },
            TraceOp::Exec(0),
            TraceOp::Load {
                addr: u64::MAX - 63,
                size: 64,
            },
        ]
    }

    #[test]
    fn round_trip_in_memory() {
        let ops = sample_ops();
        let pack = TracePack::from_ops(ops.iter().copied());
        assert_eq!(pack.len_ops(), ops.len() as u64);
        assert_eq!(pack.to_vec(), ops);
    }

    #[test]
    fn round_trip_through_writer_and_reader() {
        let ops = sample_ops();
        let mut w = TracePackWriter::new(Vec::new()).unwrap();
        for &op in &ops {
            w.write_op(op).unwrap();
        }
        assert_eq!(w.ops_written(), ops.len() as u64);
        let bytes = w.finish().unwrap();

        let pack = TracePack::from_ops(ops.iter().copied());
        assert_eq!(bytes, pack.bytes(), "writer and from_ops agree");

        let mut r = TracePackReader::new(bytes.as_slice()).unwrap();
        let mut got = Vec::new();
        while let Some(op) = r.next_op().unwrap() {
            got.push(op);
        }
        assert_eq!(got, ops);
        assert!(r.next_op().unwrap().is_none(), "end is sticky");
    }

    #[test]
    fn batch_decode_matches_one_at_a_time() {
        let ops = sample_ops();
        let pack = TracePack::from_ops(ops.iter().copied());
        let mut dec = pack.decoder();
        let mut buf = [TraceOp::Exec(0); 3];
        let mut got = Vec::new();
        loop {
            let n = dec.next_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, ops);
    }

    #[test]
    fn sequential_streams_compress_hard() {
        let ops: Vec<TraceOp> = (0..10_000u64)
            .map(|i| TraceOp::Load {
                addr: 0x8000_0000 + i * 8,
                size: 8,
            })
            .collect();
        let pack = TracePack::from_ops(ops.iter().copied());
        assert!(
            pack.bytes_per_op() <= 3.5,
            "sequential loads must pack to a few bytes/op, got {}",
            pack.bytes_per_op()
        );
        assert_eq!(pack.to_vec(), ops);
    }

    #[test]
    fn from_bytes_validates_and_counts() {
        let ops = sample_ops();
        let pack = TracePack::from_ops(ops.iter().copied());
        let reparsed = TracePack::from_bytes(pack.bytes().to_vec()).unwrap();
        assert_eq!(reparsed, pack);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let pack = TracePack::from_ops(sample_ops());
        let cut = pack.bytes()[..pack.bytes().len() - 1].to_vec();
        assert!(matches!(
            TracePack::from_bytes(cut),
            Err(TracePackError::Truncated)
        ));
        let mut r = TracePackReader::new(&pack.bytes()[..pack.bytes().len() - 1]).unwrap();
        let err = loop {
            match r.next_op() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncation must not look like clean EOF"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TracePackError::Truncated));
    }

    #[test]
    fn trailing_bytes_after_end_marker_are_rejected() {
        let mut bytes = TracePack::from_ops(sample_ops()).bytes().to_vec();
        bytes.push(0x00); // garbage (or a concatenated second stream)
        assert!(matches!(
            TracePack::from_bytes(bytes),
            Err(TracePackError::TrailingBytes(1))
        ));
    }

    #[test]
    fn foreign_streams_are_rejected() {
        assert!(matches!(
            TracePack::from_bytes(b"ELF\x7f....".to_vec()),
            Err(TracePackError::BadMagic)
        ));
        let mut bytes = TracePack::from_ops([TraceOp::MaskPush]).bytes().to_vec();
        bytes[4] = VERSION + 1;
        assert!(matches!(
            TracePack::from_bytes(bytes),
            Err(TracePackError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn bad_tag_and_bad_size_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0x42);
        assert!(matches!(
            TracePack::from_bytes(bytes),
            Err(TracePackError::BadTag(0x42))
        ));

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(1); // Load
        bytes.push(0); // addr delta 0
        bytes.push(65); // size 65 > 64
        assert!(matches!(
            TracePack::from_bytes(bytes),
            Err(TracePackError::BadSize(65))
        ));
    }

    #[test]
    #[should_panic(expected = "access size")]
    fn encoding_oversized_access_panics() {
        TracePack::from_ops([TraceOp::Load { addr: 0, size: 65 }]);
    }

    #[test]
    fn empty_pack_round_trips() {
        let pack = TracePack::from_ops(std::iter::empty());
        assert!(pack.is_empty());
        assert_eq!(pack.to_vec(), Vec::<TraceOp>::new());
        assert_eq!(pack.bytes().len(), 6, "header + end marker");
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 63, -64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn resume_from_matches_decode_from_start_then_skip() {
        let ops = sample_ops();
        let pack = TracePack::from_ops(ops.iter().copied());
        // At every op boundary: capture a resume point, then prove the
        // resumed decoder yields exactly the suffix a fresh decoder
        // yields after skipping the same number of ops.
        for skip in 0..=ops.len() {
            let mut dec = pack.decoder();
            for _ in 0..skip {
                dec.next_op().unwrap().unwrap();
            }
            let point = dec.resume_point();
            let mut resumed = pack.resume_from(point).unwrap();
            assert_eq!(resumed.ops_read(), skip as u64);
            assert_eq!(resumed.bytes_consumed(), dec.bytes_consumed());
            let mut from_start = pack.decoder();
            for _ in 0..skip {
                from_start.next_op().unwrap().unwrap();
            }
            loop {
                let a = resumed.next_op().unwrap();
                let b = from_start.next_op().unwrap();
                assert_eq!(a, b, "suffix diverged after skipping {skip}");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(resumed.bytes_consumed(), from_start.bytes_consumed());
        }
    }

    #[test]
    fn resume_from_rejects_offset_past_stream() {
        let pack = TracePack::from_ops(sample_ops());
        let point = ResumePoint {
            byte_offset: pack.bytes().len() as u64, // 5 past the body end
            ..ResumePoint::default()
        };
        assert!(matches!(
            pack.resume_from(point),
            Err(TracePackError::Truncated)
        ));
    }

    #[test]
    fn resume_point_after_drain_is_done() {
        let pack = TracePack::from_ops(sample_ops());
        let mut dec = pack.decoder();
        while dec.next_op().unwrap().is_some() {}
        let point = dec.resume_point();
        assert!(point.done);
        let mut resumed = pack.resume_from(point).unwrap();
        assert!(resumed.next_op().unwrap().is_none(), "done is sticky");
    }

    #[test]
    fn decoder_tracks_ops_and_bytes_consumed() {
        let ops = sample_ops();
        let pack = TracePack::from_ops(ops.iter().copied());
        let mut dec = pack.decoder();
        assert_eq!((dec.ops_read(), dec.bytes_consumed()), (0, 0));
        let mut buf = [TraceOp::Exec(0); 2];
        let n = dec.next_batch(&mut buf).unwrap();
        assert_eq!(n, 2);
        assert_eq!(dec.ops_read(), 2);
        let mid = dec.bytes_consumed();
        assert!(mid > 0);
        while dec.next_op().unwrap().is_some() {}
        assert_eq!(dec.ops_read(), ops.len() as u64);
        // Drained: every encoded byte after the header is accounted for.
        assert_eq!(dec.bytes_consumed(), (pack.bytes().len() - 5) as u64);
        assert!(dec.bytes_consumed() > mid);
    }
}
