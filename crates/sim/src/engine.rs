//! The simulation engine: runs a trace through the core model and the
//! memory hierarchy, handling Califorms exceptions and whitelist masks.

use crate::checkpoint::{self as ck, CheckpointError};
use crate::cpu::CoreConfig;
use crate::hierarchy::{Hierarchy, HierarchyConfig};
use crate::lsq::LoadStoreQueue;
use crate::os::SwapManager;
use crate::stats::SimStats;
use crate::trace::TraceOp;
use crate::tracepack::{self, ResumePoint, TracePack, TracePackReader, MAX_ACCESS_BYTES};
use califorms_core::{CaliformsException, CformInstruction, ExceptionMask};

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Aggregate statistics.
    pub stats: SimStats,
    /// The delivered exceptions, in order, capped at
    /// [`Engine::MAX_RECORDED_EXCEPTIONS`] (a real handler would have
    /// terminated the program at the first one; attack experiments want a
    /// few for inspection, not millions).
    pub exceptions: Vec<CaliformsException>,
}

/// Trace-driven simulator: Westmere-like core + Califorms hierarchy.
#[derive(Debug)]
pub struct Engine {
    /// The simulated memory hierarchy (public: attack simulations inspect
    /// and prod it directly).
    pub hierarchy: Hierarchy,
    core: CoreConfig,
    mask: ExceptionMask,
    cycles: f64,
    instructions: u64,
    loads: u64,
    stores: u64,
    cforms: u64,
    stores_suppressed: u64,
    exceptions: Vec<CaliformsException>,
    pc: u64,
}

impl Engine {
    /// Exceptions recorded verbatim before only counting.
    pub const MAX_RECORDED_EXCEPTIONS: usize = 1024;

    /// Builds an engine from hierarchy and core configurations.
    pub fn new(hcfg: HierarchyConfig, core: CoreConfig) -> Self {
        Self {
            hierarchy: Hierarchy::new(hcfg),
            core,
            mask: ExceptionMask::new(),
            cycles: 0.0,
            instructions: 0,
            loads: 0,
            stores: 0,
            cforms: 0,
            stores_suppressed: 0,
            exceptions: Vec::new(),
            pc: 0,
        }
    }

    /// Convenience constructor with the paper's default configuration.
    pub fn westmere() -> Self {
        Self::new(HierarchyConfig::westmere(), CoreConfig::westmere())
    }

    /// Executes one trace operation.
    pub fn step(&mut self, op: TraceOp) {
        self.pc += 1;
        self.instructions += op.instruction_count();
        match op {
            TraceOp::Exec(n) => {
                self.cycles += self.core.exec_cycles(u64::from(n));
            }
            TraceOp::Load { addr, size } => {
                self.loads += 1;
                let r = self.hierarchy.load_quiet(addr, size as usize, self.pc);
                self.account_memory(r.latency);
                self.deliver(r.exception);
            }
            TraceOp::Store { addr, size } => {
                self.stores += 1;
                let (hierarchy, pc) = (&mut self.hierarchy, self.pc);
                let r =
                    with_store_data(addr, size as usize, |data| hierarchy.store(addr, data, pc));
                self.account_memory(r.latency);
                if r.exception.is_some() {
                    self.stores_suppressed += 1;
                }
                self.deliver(r.exception);
            }
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            } => {
                self.cforms += 1;
                let insn = CformInstruction::new(line_addr, attrs, mask);
                let r = self.hierarchy.cform(&insn, self.pc);
                self.account_memory(r.latency);
                self.deliver(r.exception);
            }
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => {
                self.cforms += 1;
                let insn = CformInstruction::new(line_addr, attrs, mask);
                let r = self.hierarchy.cform_nt(&insn, self.pc);
                self.account_memory(r.latency);
                self.deliver(r.exception);
            }
            TraceOp::MaskPush => {
                self.cycles += self.core.exec_cycles(1);
                self.mask.push_allow_all();
            }
            TraceOp::MaskPop => {
                self.cycles += self.core.exec_cycles(1);
                self.mask.pop_window();
            }
        }
    }

    fn account_memory(&mut self, latency: u32) {
        let l1 = self.hierarchy.config().l1d_latency;
        self.cycles += self.core.exec_cycles(1) + self.core.memory_stall(latency, l1);
    }

    fn deliver(&mut self, exception: Option<CaliformsException>) {
        if let Some(exc) = exception {
            if let Some(delivered) = self.mask.filter(exc) {
                if self.exceptions.len() < Self::MAX_RECORDED_EXCEPTIONS {
                    self.exceptions.push(delivered);
                }
            }
        }
    }

    /// Runs a whole trace to completion and returns the outcome.
    pub fn run<I>(mut self, trace: I) -> SimOutcome
    where
        I: IntoIterator<Item = TraceOp>,
    {
        for op in trace {
            self.step(op);
        }
        self.finish()
    }

    /// Ops batch-decoded into the replay ring at a time (see
    /// [`Self::run_pack`]).
    pub const REPLAY_BATCH: usize = 1024;

    /// Replays a packed trace to completion: ops are batch-decoded into a
    /// fixed stack ring of [`Self::REPLAY_BATCH`] slots and stepped from
    /// there, so the pack never materialises as a `Vec<TraceOp>` and the
    /// per-op decode/dispatch cost is amortised. Bit-identical in stats
    /// and exceptions to [`Self::run`] over the same ops.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt pack — packs built by
    /// [`TracePack::from_ops`] or validated by [`TracePack::from_bytes`]
    /// are always well-formed.
    pub fn run_pack(self, pack: &TracePack) -> SimOutcome {
        let mut dec = pack.decoder();
        self.run_batches(|ring| dec.next_batch(ring))
            .expect("validated pack is well-formed")
    }

    /// [`Self::run_pack`] with telemetry: alternating decode/bound spans
    /// per [`Self::REPLAY_BATCH`]-op batch on one track, plus the
    /// deterministic counter snapshot (including `decode.*` progress).
    /// Results are bit-identical to [`Self::run_pack`] — the spans are
    /// host-time-only output and every counter is derived from the same
    /// [`SimStats`] the plain path produces.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt pack — packs built by
    /// [`TracePack::from_ops`] or validated by [`TracePack::from_bytes`]
    /// are always well-formed.
    pub fn run_pack_telemetry(
        mut self,
        pack: &TracePack,
    ) -> (SimOutcome, califorms_telemetry::TelemetryReport) {
        use califorms_telemetry::{Phase, TelemetryClock, TelemetryReport, TrackRecorder};
        let clock = TelemetryClock::start();
        let mut track = TrackRecorder::new(0, clock);
        let mut dec = pack.decoder();
        let mut ring = [TraceOp::Exec(0); Self::REPLAY_BATCH];
        loop {
            let decode_start = track.start();
            let n = dec
                .next_batch(&mut ring)
                .expect("validated pack is well-formed");
            if n == 0 {
                break;
            }
            track.record_since(Phase::Decode, 0, decode_start);
            let exec_start = track.start();
            for &op in &ring[..n] {
                self.step(op);
            }
            track.record_since(Phase::Bound, 0, exec_start);
        }
        let decode = Some((dec.ops_read(), dec.bytes_consumed()));
        let outcome = self.finish();
        let counters = crate::telemetry::single_core_counters(&outcome.stats, decode).snapshot();
        let dropped_spans = track.dropped();
        let (spans, _) = track.into_parts();
        let report = TelemetryReport {
            counters,
            spans,
            track_names: vec![(0, "core 0".to_string())],
            dropped_spans,
            ..TelemetryReport::default()
        };
        (outcome, report)
    }

    /// Streaming variant of [`Self::run_pack`]: replays a pack from any
    /// `io::Read` source (e.g. a multi-gigabyte pack file) in constant
    /// memory through the reader's internal refill buffer.
    ///
    /// # Errors
    ///
    /// Propagates decode/I/O failures from the reader.
    pub fn run_reader<R: std::io::Read>(
        self,
        reader: &mut TracePackReader<R>,
    ) -> tracepack::Result<SimOutcome> {
        self.run_batches(|ring| reader.next_batch(ring))
    }

    /// The shared batch-replay drain: fills the fixed ring from `next`
    /// until it runs dry, stepping every decoded op.
    fn run_batches(
        mut self,
        mut next: impl FnMut(&mut [TraceOp]) -> tracepack::Result<usize>,
    ) -> tracepack::Result<SimOutcome> {
        let mut ring = [TraceOp::Exec(0); Self::REPLAY_BATCH];
        loop {
            let n = next(&mut ring)?;
            if n == 0 {
                break;
            }
            for &op in &ring[..n] {
                self.step(op);
            }
        }
        Ok(self.finish())
    }

    /// Finalises the run (no flush: cache state is part of steady-state
    /// measurement, as with the paper's SimPoint regions).
    pub fn finish(self) -> SimOutcome {
        let mut stats = SimStats {
            cycles: self.cycles,
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            cforms: self.cforms,
            stores_suppressed: self.stores_suppressed,
            exceptions_delivered: self.mask.delivered_count(),
            exceptions_suppressed: self.mask.suppressed_count(),
            ..SimStats::default()
        };
        self.hierarchy.export_stats(&mut stats);
        SimOutcome {
            stats,
            exceptions: self.exceptions,
        }
    }

    /// Cycles accumulated so far (for incremental drivers).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Exceptions delivered so far.
    pub fn delivered_exceptions(&self) -> &[CaliformsException] {
        &self.exceptions
    }

    // --- checkpoint / resume ------------------------------------------

    /// Serializes the complete engine state (core counters, exception
    /// mask, hierarchy, configuration) plus the replay `cursor` into a
    /// self-contained checkpoint. Taking `cursor` from
    /// [`crate::tracepack::PackDecoder::resume_point`] at a decode-batch
    /// boundary makes [`Self::resume_pack`] bit-identical to a
    /// straight-through [`Self::run_pack`].
    pub fn checkpoint(&self, cursor: ResumePoint) -> Vec<u8> {
        self.checkpoint_with(cursor, None, None)
    }

    /// [`Self::checkpoint`] with optional attachments: the OS swap state
    /// and an in-flight LSQ, for drivers that thread those alongside the
    /// engine.
    pub fn checkpoint_with(
        &self,
        cursor: ResumePoint,
        os: Option<&SwapManager>,
        lsq: Option<&LoadStoreQueue>,
    ) -> Vec<u8> {
        let mut w = ck::Wr::checkpoint();
        let s = w.begin_section(ck::SEC_META);
        w.u8(ck::KIND_SINGLE);
        w.u64(1);
        w.end_section(s);
        let s = w.begin_section(ck::SEC_CONFIG);
        ck::put_hier_config(&mut w, self.hierarchy.config());
        ck::put_core_config(&mut w, &self.core);
        w.end_section(s);
        let s = w.begin_section(ck::SEC_CORE);
        w.u64(self.pc);
        w.f64(self.cycles);
        w.u64(self.instructions);
        w.u64(self.loads);
        w.u64(self.stores);
        w.u64(self.cforms);
        w.u64(self.stores_suppressed);
        ck::put_mask(&mut w, &self.mask);
        ck::put_exceptions(&mut w, &self.exceptions);
        w.end_section(s);
        let s = w.begin_section(ck::SEC_HIERARCHY);
        self.hierarchy.save_state(&mut w);
        w.end_section(s);
        let s = w.begin_section(ck::SEC_CURSOR);
        w.u64(1);
        ck::put_resume_point(&mut w, &cursor);
        w.end_section(s);
        if let Some(os) = os {
            let s = w.begin_section(ck::SEC_OS);
            os.save_state(&mut w);
            w.end_section(s);
        }
        if let Some(lsq) = lsq {
            let s = w.begin_section(ck::SEC_LSQ);
            lsq.save_state(&mut w);
            w.end_section(s);
        }
        w.finish()
    }

    /// Reconstructs an engine and its replay cursor from checkpoint
    /// bytes.
    ///
    /// # Errors
    ///
    /// Every malformed input — bad magic, truncation, checksum mismatch,
    /// section-length lies, semantically impossible payloads, or a
    /// multicore checkpoint — returns a typed [`CheckpointError`], never
    /// panics.
    pub fn restore(bytes: &[u8]) -> ck::Result<(Self, ResumePoint)> {
        let (engine, cursor, _, _) = Self::restore_with(bytes)?;
        Ok((engine, cursor))
    }

    /// [`Self::restore`] that also returns the optional OS swap state and
    /// LSQ attachments if the checkpoint carried them.
    ///
    /// # Errors
    ///
    /// See [`Self::restore`].
    pub fn restore_with(
        bytes: &[u8],
    ) -> ck::Result<(
        Self,
        ResumePoint,
        Option<SwapManager>,
        Option<LoadStoreQueue>,
    )> {
        let sections = ck::parse_sections(bytes)?;
        let mut r = ck::require(&sections, ck::SEC_META, "meta")?;
        if r.u8()? != ck::KIND_SINGLE {
            return Err(CheckpointError::ConfigMismatch(
                "multicore checkpoint resumed on the single-core engine",
            ));
        }
        if r.u64()? != 1 {
            return Err(CheckpointError::Corrupt(
                "single-core checkpoint with core count != 1",
            ));
        }
        ck::consumed(&r, ck::SEC_META)?;

        let mut r = ck::require(&sections, ck::SEC_CONFIG, "config")?;
        let hcfg = ck::get_hier_config(&mut r)?;
        let core = ck::get_core_config(&mut r)?;
        ck::consumed(&r, ck::SEC_CONFIG)?;

        let mut engine = Engine::new(hcfg, core);
        let mut r = ck::require(&sections, ck::SEC_CORE, "core")?;
        engine.pc = r.u64()?;
        engine.cycles = r.f64()?;
        engine.instructions = r.u64()?;
        engine.loads = r.u64()?;
        engine.stores = r.u64()?;
        engine.cforms = r.u64()?;
        engine.stores_suppressed = r.u64()?;
        engine.mask = ck::get_mask(&mut r)?;
        engine.exceptions = ck::get_exceptions(&mut r)?;
        if engine.exceptions.len() > Self::MAX_RECORDED_EXCEPTIONS {
            return Err(CheckpointError::Corrupt(
                "recorded exceptions exceed the engine cap",
            ));
        }
        ck::consumed(&r, ck::SEC_CORE)?;

        let mut r = ck::require(&sections, ck::SEC_HIERARCHY, "hierarchy")?;
        engine.hierarchy = Hierarchy::restore_state(hcfg, &mut r)?;
        ck::consumed(&r, ck::SEC_HIERARCHY)?;

        let mut r = ck::require(&sections, ck::SEC_CURSOR, "cursor")?;
        if r.u64()? != 1 {
            return Err(CheckpointError::Corrupt(
                "single-core checkpoint with more than one cursor lane",
            ));
        }
        let cursor = ck::get_resume_point(&mut r)?;
        ck::consumed(&r, ck::SEC_CURSOR)?;

        let os = match ck::optional(&sections, ck::SEC_OS) {
            Some(mut r) => {
                let os = SwapManager::restore_state(&mut r)?;
                ck::consumed(&r, ck::SEC_OS)?;
                Some(os)
            }
            None => None,
        };
        let lsq = match ck::optional(&sections, ck::SEC_LSQ) {
            Some(mut r) => {
                let lsq = LoadStoreQueue::restore_state(&mut r)?;
                ck::consumed(&r, ck::SEC_LSQ)?;
                Some(lsq)
            }
            None => None,
        };
        Ok((engine, cursor, os, lsq))
    }

    /// Restores an engine from checkpoint bytes and replays the rest of
    /// `pack` to completion — the crash-recovery path. The outcome is
    /// bit-identical (stats, exceptions) to [`Self::run_pack`] over the
    /// whole pack when the checkpoint was taken by
    /// [`Self::run_pack_checkpointed`] on the same pack.
    ///
    /// # Errors
    ///
    /// Typed [`CheckpointError`] on corrupt checkpoint bytes or a cursor
    /// that does not fit `pack` (truncated/wrong pack).
    pub fn resume_pack(pack: &TracePack, bytes: &[u8]) -> ck::Result<SimOutcome> {
        let (engine, cursor) = Self::restore(bytes)?;
        let mut dec = pack.resume_from(cursor)?;
        Ok(engine.run_batches(|ring| dec.next_batch(ring))?)
    }

    /// [`Self::run_pack`] that also emits a checkpoint every
    /// `interval_batches` decode batches (each batch is
    /// [`Self::REPLAY_BATCH`] ops), in order taken.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt pack (like [`Self::run_pack`]) or if
    /// `interval_batches` is zero.
    pub fn run_pack_checkpointed(
        mut self,
        pack: &TracePack,
        interval_batches: u64,
    ) -> (SimOutcome, Vec<Vec<u8>>) {
        assert!(interval_batches > 0, "checkpoint interval must be positive");
        let mut dec = pack.decoder();
        let mut ring = [TraceOp::Exec(0); Self::REPLAY_BATCH];
        let mut checkpoints = Vec::new();
        let mut batch = 0u64;
        loop {
            let n = dec
                .next_batch(&mut ring)
                .expect("validated pack is well-formed");
            if n == 0 {
                break;
            }
            for &op in &ring[..n] {
                self.step(op);
            }
            batch += 1;
            if batch.is_multiple_of(interval_batches) {
                checkpoints.push(self.checkpoint(dec.resume_point()));
            }
        }
        (self.finish(), checkpoints)
    }
}

/// Deterministic store payload: traces carry no data, but the califormed
/// format conversions need real byte values flowing through the
/// hierarchy, so stores write a pattern derived from the address. Shared
/// by [`Engine`] and [`crate::multicore::MulticoreEngine`] so single- and
/// multi-core replays of the same shard write identical bytes.
///
/// This is the allocating form (public so external replay drivers can
/// reproduce the engine's payloads); the replay hot path uses
/// [`fill_store_pattern`] over a stack buffer instead.
pub fn store_pattern(addr: u64, len: usize) -> Vec<u8> {
    // analyze::allow(hot-path-alloc): allocating form for external drivers; the replay path uses fill_store_pattern over a stack buffer
    let mut buf = vec![0u8; len];
    fill_store_pattern(addr, &mut buf);
    buf
}

/// Fills `buf` with the deterministic store pattern for a store at
/// `addr` — the allocation-free form of [`store_pattern`] the replay hot
/// path threads through [`Hierarchy::store`] via a stack `[u8; 64]`.
#[inline]
pub fn fill_store_pattern(addr: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((addr + i as u64).wrapping_mul(0x9E37_79B9) >> 16) as u8;
    }
}

/// Synthesises the store payload for `addr`/`len` and hands it to `f`:
/// on the hot path (`len <= 64`, the trace-pack contract) the payload
/// lives in a stack buffer; oversized hand-built stores fall back to the
/// allocating form. Shared by [`Engine`] and
/// [`crate::multicore::MulticoreEngine`] so every replay path writes
/// identical bytes.
#[inline]
pub(crate) fn with_store_data<R>(addr: u64, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
    if len <= MAX_ACCESS_BYTES {
        let mut buf = [0u8; MAX_ACCESS_BYTES];
        fill_store_pattern(addr, &mut buf[..len]);
        f(&buf[..len])
    } else {
        f(&store_pattern(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use califorms_core::AccessKind;

    #[test]
    fn exec_only_trace_is_width_limited() {
        let out = Engine::westmere().run([TraceOp::Exec(400)]);
        assert!((out.stats.cycles - 100.0).abs() < 1e-9);
        assert_eq!(out.stats.instructions, 400);
    }

    #[test]
    fn store_load_cform_counts() {
        let trace = [
            TraceOp::Store {
                addr: 0x100,
                size: 8,
            },
            TraceOp::Load {
                addr: 0x100,
                size: 8,
            },
            TraceOp::Cform {
                line_addr: 0x100,
                attrs: 1 << 20,
                mask: 1 << 20,
            },
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.loads, 1);
        assert_eq!(out.stats.stores, 1);
        assert_eq!(out.stats.cforms, 1);
        assert_eq!(out.stats.instructions, 3);
    }

    #[test]
    fn rogue_access_is_delivered_by_default() {
        let trace = [
            TraceOp::Cform {
                line_addr: 0x200,
                attrs: 1 << 5,
                mask: 1 << 5,
            },
            TraceOp::Load {
                addr: 0x205,
                size: 1,
            },
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.exceptions_delivered, 1);
        assert_eq!(out.exceptions.len(), 1);
        assert_eq!(out.exceptions[0].fault_addr, 0x205);
        assert_eq!(out.exceptions[0].access, AccessKind::Load);
    }

    #[test]
    fn whitelisted_access_is_suppressed_but_counted() {
        let trace = [
            TraceOp::Cform {
                line_addr: 0x200,
                attrs: 1 << 5,
                mask: 1 << 5,
            },
            TraceOp::MaskPush,
            TraceOp::Load {
                addr: 0x205,
                size: 1,
            }, // memcpy-style sweep
            TraceOp::MaskPop,
            TraceOp::Load {
                addr: 0x205,
                size: 1,
            }, // rogue again
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.exceptions_suppressed, 1);
        assert_eq!(out.stats.exceptions_delivered, 1);
    }

    #[test]
    fn suppressed_store_is_counted() {
        let trace = [
            TraceOp::Cform {
                line_addr: 0x40,
                attrs: 0xF,
                mask: 0xF,
            },
            TraceOp::Store {
                addr: 0x40,
                size: 4,
            },
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.stores_suppressed, 1);
    }

    #[test]
    fn identical_traces_are_deterministic() {
        let trace: Vec<TraceOp> = (0..1000)
            .map(|i| TraceOp::Load {
                addr: (i * 8389) % 65536,
                size: 8,
            })
            .collect();
        let a = Engine::westmere().run(trace.clone());
        let b = Engine::westmere().run(trace);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.l1d, b.stats.l1d);
    }

    #[test]
    fn telemetry_replay_is_bit_identical_and_reports_decode_progress() {
        use califorms_telemetry::Phase;
        let trace: Vec<TraceOp> = (0..3000)
            .map(|i| TraceOp::Load {
                addr: (i * 4099) % 65536,
                size: 8,
            })
            .collect();
        let pack = TracePack::from_ops(trace.iter().copied());
        let plain = Engine::westmere().run_pack(&pack);
        let (out, report) = Engine::westmere().run_pack_telemetry(&pack);
        assert_eq!(out.stats, plain.stats);
        assert_eq!(out.exceptions, plain.exceptions);
        assert_eq!(
            report.counters.total("decode.ops"),
            Some(trace.len() as u64)
        );
        assert_eq!(
            report.counters.total("core.cycles_fp_bits"),
            Some(plain.stats.cycles.to_bits())
        );
        assert!(report.spans.iter().any(|s| s.phase == Phase::Decode));
        assert!(report.spans.iter().any(|s| s.phase == Phase::Bound));
        assert_eq!(report.dropped_spans, 0);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_at_every_boundary() {
        // A trace mixing every op kind, long enough for several decode
        // batches, with califormed lines, suppressed stores and both
        // delivered and masked exceptions in flight at checkpoint time.
        let mut trace = Vec::new();
        for i in 0..5000u64 {
            trace.push(TraceOp::Exec((i % 7) as u32 + 1));
            trace.push(TraceOp::Load {
                addr: (i * 4099) % 262_144,
                size: 8,
            });
            trace.push(TraceOp::Store {
                addr: (i * 8389) % 262_144,
                size: 8,
            });
            if i % 17 == 0 {
                trace.push(TraceOp::Cform {
                    line_addr: (i * 64) % 131_072,
                    attrs: 1 << (i % 64),
                    mask: 1 << (i % 64),
                });
            }
            if i % 29 == 0 {
                trace.push(TraceOp::Load {
                    addr: ((i / 29) * 64) % 131_072 + (i % 64),
                    size: 1,
                });
            }
            if i % 97 == 0 {
                trace.push(TraceOp::MaskPush);
            }
            if i % 97 == 5 && i > 5 {
                trace.push(TraceOp::MaskPop);
            }
        }
        let pack = TracePack::from_ops(trace.iter().copied());
        let straight = Engine::westmere().run_pack(&pack);
        let (out, checkpoints) = Engine::westmere().run_pack_checkpointed(&pack, 1);
        assert_eq!(out.stats, straight.stats);
        assert_eq!(out.exceptions, straight.exceptions);
        assert!(
            checkpoints.len() >= 4,
            "trace spans several decode batches ({} checkpoints)",
            checkpoints.len()
        );
        for (i, cp) in checkpoints.iter().enumerate() {
            let resumed = Engine::resume_pack(&pack, cp)
                .unwrap_or_else(|e| panic!("resume from checkpoint {i} failed: {e}"));
            assert_eq!(resumed.stats, straight.stats, "checkpoint {i} stats");
            assert_eq!(
                resumed.exceptions, straight.exceptions,
                "checkpoint {i} exceptions"
            );
        }
    }

    #[test]
    fn checkpoint_round_trips_os_and_lsq_attachments() {
        use crate::os::SwapManager;
        let mut engine = Engine::westmere();
        engine.step(TraceOp::Store {
            addr: 0x10_0000,
            size: 8,
        });
        let mut swap = SwapManager::new();
        swap.swap_out(&mut engine.hierarchy, 0x10_0000);
        let mut lsq = crate::lsq::LoadStoreQueue::new();
        lsq.push_store(0x200, vec![1, 2, 3]);
        lsq.push_cform(0x1000, 0xFF);
        let _ = lsq.resolve_load(0x200, 2);

        let bytes = engine.checkpoint_with(
            crate::tracepack::ResumePoint::default(),
            Some(&swap),
            Some(&lsq),
        );
        let (engine2, _, os2, lsq2) = Engine::restore_with(&bytes).expect("restore");
        let mut swap2 = os2.expect("OS section round-trips");
        assert_eq!(swap2.swapped_pages(), 1);
        let mut lsq2 = lsq2.expect("LSQ section round-trips");
        assert_eq!(lsq2.len(), 2);
        assert_eq!(lsq2.stats(), lsq.stats());
        // The restored swap state swaps back in against the restored
        // hierarchy exactly like the original would.
        let mut h2 = engine2.hierarchy;
        swap2.swap_in(&mut h2, 0x10_0000);
        assert_eq!(
            h2.load(0x10_0000, 8, 0).data,
            store_pattern(0x10_0000, 8),
            "swapped-out data survives the checkpoint"
        );
        assert_eq!(
            lsq2.resolve_load(0x200, 2),
            crate::lsq::ForwardResult::Forwarded(vec![1, 2])
        );
    }

    #[test]
    fn restore_rejects_attachment_confusion_and_cap_lies() {
        let engine = Engine::westmere();
        let bytes = engine.checkpoint(crate::tracepack::ResumePoint::default());
        // Sanity: clean restore works.
        assert!(Engine::restore(&bytes).is_ok());
        // A truncated tail is typed, not a panic.
        for cut in 1..16 {
            let truncated = &bytes[..bytes.len() - cut];
            assert!(Engine::restore(truncated).is_err());
        }
    }

    #[test]
    fn extra_latency_slows_the_same_trace() {
        let trace: Vec<TraceOp> = (0..2000u64)
            .flat_map(|i| {
                [
                    TraceOp::Exec(10),
                    TraceOp::Load {
                        addr: (i * 4096) % (8 * 1024 * 1024),
                        size: 8,
                    },
                ]
            })
            .collect();
        let base = Engine::westmere().run(trace.clone());
        let plus = Engine::new(
            HierarchyConfig::westmere_plus_one_cycle(),
            CoreConfig::westmere(),
        )
        .run(trace);
        let slowdown = plus.stats.slowdown_vs(&base.stats);
        assert!(slowdown > 0.0, "extra latency must cost cycles");
        assert!(slowdown < 0.05, "one cycle must cost little");
    }
}
