//! The simulation engine: runs a trace through the core model and the
//! memory hierarchy, handling Califorms exceptions and whitelist masks.

use crate::cpu::CoreConfig;
use crate::hierarchy::{Hierarchy, HierarchyConfig};
use crate::stats::SimStats;
use crate::trace::TraceOp;
use califorms_core::{CaliformsException, CformInstruction, ExceptionMask};

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregate statistics.
    pub stats: SimStats,
    /// The delivered exceptions, in order, capped at
    /// [`Engine::MAX_RECORDED_EXCEPTIONS`] (a real handler would have
    /// terminated the program at the first one; attack experiments want a
    /// few for inspection, not millions).
    pub exceptions: Vec<CaliformsException>,
}

/// Trace-driven simulator: Westmere-like core + Califorms hierarchy.
#[derive(Debug)]
pub struct Engine {
    /// The simulated memory hierarchy (public: attack simulations inspect
    /// and prod it directly).
    pub hierarchy: Hierarchy,
    core: CoreConfig,
    mask: ExceptionMask,
    cycles: f64,
    instructions: u64,
    loads: u64,
    stores: u64,
    cforms: u64,
    stores_suppressed: u64,
    exceptions: Vec<CaliformsException>,
    pc: u64,
}

impl Engine {
    /// Exceptions recorded verbatim before only counting.
    pub const MAX_RECORDED_EXCEPTIONS: usize = 1024;

    /// Builds an engine from hierarchy and core configurations.
    pub fn new(hcfg: HierarchyConfig, core: CoreConfig) -> Self {
        Self {
            hierarchy: Hierarchy::new(hcfg),
            core,
            mask: ExceptionMask::new(),
            cycles: 0.0,
            instructions: 0,
            loads: 0,
            stores: 0,
            cforms: 0,
            stores_suppressed: 0,
            exceptions: Vec::new(),
            pc: 0,
        }
    }

    /// Convenience constructor with the paper's default configuration.
    pub fn westmere() -> Self {
        Self::new(HierarchyConfig::westmere(), CoreConfig::westmere())
    }

    /// Executes one trace operation.
    pub fn step(&mut self, op: TraceOp) {
        self.pc += 1;
        self.instructions += op.instruction_count();
        match op {
            TraceOp::Exec(n) => {
                self.cycles += self.core.exec_cycles(u64::from(n));
            }
            TraceOp::Load { addr, size } => {
                self.loads += 1;
                let r = self.hierarchy.load(addr, size as usize, self.pc);
                self.account_memory(r.latency);
                self.deliver(r.exception);
            }
            TraceOp::Store { addr, size } => {
                self.stores += 1;
                let data = store_pattern(addr, size as usize);
                let r = self.hierarchy.store(addr, &data, self.pc);
                self.account_memory(r.latency);
                if r.exception.is_some() {
                    self.stores_suppressed += 1;
                }
                self.deliver(r.exception);
            }
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            } => {
                self.cforms += 1;
                let insn = CformInstruction::new(line_addr, attrs, mask);
                let r = self.hierarchy.cform(&insn, self.pc);
                self.account_memory(r.latency);
                self.deliver(r.exception);
            }
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => {
                self.cforms += 1;
                let insn = CformInstruction::new(line_addr, attrs, mask);
                let r = self.hierarchy.cform_nt(&insn, self.pc);
                self.account_memory(r.latency);
                self.deliver(r.exception);
            }
            TraceOp::MaskPush => {
                self.cycles += self.core.exec_cycles(1);
                self.mask.push_allow_all();
            }
            TraceOp::MaskPop => {
                self.cycles += self.core.exec_cycles(1);
                self.mask.pop_window();
            }
        }
    }

    fn account_memory(&mut self, latency: u32) {
        let l1 = self.hierarchy.config().l1d_latency;
        self.cycles += self.core.exec_cycles(1) + self.core.memory_stall(latency, l1);
    }

    fn deliver(&mut self, exception: Option<CaliformsException>) {
        if let Some(exc) = exception {
            if let Some(delivered) = self.mask.filter(exc) {
                if self.exceptions.len() < Self::MAX_RECORDED_EXCEPTIONS {
                    self.exceptions.push(delivered);
                }
            }
        }
    }

    /// Runs a whole trace to completion and returns the outcome.
    pub fn run<I>(mut self, trace: I) -> SimOutcome
    where
        I: IntoIterator<Item = TraceOp>,
    {
        for op in trace {
            self.step(op);
        }
        self.finish()
    }

    /// Finalises the run (no flush: cache state is part of steady-state
    /// measurement, as with the paper's SimPoint regions).
    pub fn finish(self) -> SimOutcome {
        let mut stats = SimStats {
            cycles: self.cycles,
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            cforms: self.cforms,
            stores_suppressed: self.stores_suppressed,
            exceptions_delivered: self.mask.delivered_count(),
            exceptions_suppressed: self.mask.suppressed_count(),
            ..SimStats::default()
        };
        self.hierarchy.export_stats(&mut stats);
        SimOutcome {
            stats,
            exceptions: self.exceptions,
        }
    }

    /// Cycles accumulated so far (for incremental drivers).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Exceptions delivered so far.
    pub fn delivered_exceptions(&self) -> &[CaliformsException] {
        &self.exceptions
    }
}

/// Deterministic store payload: traces carry no data, but the califormed
/// format conversions need real byte values flowing through the
/// hierarchy, so stores write a pattern derived from the address. Shared
/// by [`Engine`] and [`crate::multicore::MulticoreEngine`] so single- and
/// multi-core replays of the same shard write identical bytes.
pub(crate) fn store_pattern(addr: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((addr + i as u64).wrapping_mul(0x9E37_79B9) >> 16) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use califorms_core::AccessKind;

    #[test]
    fn exec_only_trace_is_width_limited() {
        let out = Engine::westmere().run([TraceOp::Exec(400)]);
        assert!((out.stats.cycles - 100.0).abs() < 1e-9);
        assert_eq!(out.stats.instructions, 400);
    }

    #[test]
    fn store_load_cform_counts() {
        let trace = [
            TraceOp::Store {
                addr: 0x100,
                size: 8,
            },
            TraceOp::Load {
                addr: 0x100,
                size: 8,
            },
            TraceOp::Cform {
                line_addr: 0x100,
                attrs: 1 << 20,
                mask: 1 << 20,
            },
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.loads, 1);
        assert_eq!(out.stats.stores, 1);
        assert_eq!(out.stats.cforms, 1);
        assert_eq!(out.stats.instructions, 3);
    }

    #[test]
    fn rogue_access_is_delivered_by_default() {
        let trace = [
            TraceOp::Cform {
                line_addr: 0x200,
                attrs: 1 << 5,
                mask: 1 << 5,
            },
            TraceOp::Load {
                addr: 0x205,
                size: 1,
            },
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.exceptions_delivered, 1);
        assert_eq!(out.exceptions.len(), 1);
        assert_eq!(out.exceptions[0].fault_addr, 0x205);
        assert_eq!(out.exceptions[0].access, AccessKind::Load);
    }

    #[test]
    fn whitelisted_access_is_suppressed_but_counted() {
        let trace = [
            TraceOp::Cform {
                line_addr: 0x200,
                attrs: 1 << 5,
                mask: 1 << 5,
            },
            TraceOp::MaskPush,
            TraceOp::Load {
                addr: 0x205,
                size: 1,
            }, // memcpy-style sweep
            TraceOp::MaskPop,
            TraceOp::Load {
                addr: 0x205,
                size: 1,
            }, // rogue again
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.exceptions_suppressed, 1);
        assert_eq!(out.stats.exceptions_delivered, 1);
    }

    #[test]
    fn suppressed_store_is_counted() {
        let trace = [
            TraceOp::Cform {
                line_addr: 0x40,
                attrs: 0xF,
                mask: 0xF,
            },
            TraceOp::Store {
                addr: 0x40,
                size: 4,
            },
        ];
        let out = Engine::westmere().run(trace);
        assert_eq!(out.stats.stores_suppressed, 1);
    }

    #[test]
    fn identical_traces_are_deterministic() {
        let trace: Vec<TraceOp> = (0..1000)
            .map(|i| TraceOp::Load {
                addr: (i * 8389) % 65536,
                size: 8,
            })
            .collect();
        let a = Engine::westmere().run(trace.clone());
        let b = Engine::westmere().run(trace);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.l1d, b.stats.l1d);
    }

    #[test]
    fn extra_latency_slows_the_same_trace() {
        let trace: Vec<TraceOp> = (0..2000u64)
            .flat_map(|i| {
                [
                    TraceOp::Exec(10),
                    TraceOp::Load {
                        addr: (i * 4096) % (8 * 1024 * 1024),
                        size: 8,
                    },
                ]
            })
            .collect();
        let base = Engine::westmere().run(trace.clone());
        let plus = Engine::new(
            HierarchyConfig::westmere_plus_one_cycle(),
            CoreConfig::westmere(),
        )
        .run(trace);
        let slowdown = plus.stats.slowdown_vs(&base.stats);
        assert!(slowdown > 0.0, "extra latency must cost cycles");
        assert!(slowdown < 0.05, "one cycle must cost little");
    }
}
