//! Operating-system support (Section 6.3): page swap with metadata
//! preservation, and the I/O boundary where califormed data must be
//! un-califormed.
//!
//! * **Page swaps.** Lines stay califormed throughout the memory
//!   hierarchy, with the per-line metadata bit parked in spare ECC bits —
//!   which swap devices don't have. On swap-out the page-fault handler
//!   gathers the 64 per-line bits of a 4 KB page into one 8 B word stored
//!   in a reserved kernel region ("the metadata for a 4KB page consumes
//!   only 8B"); on swap-in the bits are reclaimed and the ECC bits
//!   restored.
//! * **I/O boundary.** A califormed line is un-califormed only when its
//!   bytes cross a boundary where the format cannot be understood (pipe,
//!   filesystem, socket): the exported copy carries zeros in security-byte
//!   positions and the metadata never leaves the machine.

use crate::hierarchy::{Hierarchy, LineMap};
use crate::{line_base, LINE_BYTES};
use califorms_core::{fill, L2Line};

/// Page size: 4 KB = 64 cache lines.
pub const PAGE_BYTES: u64 = 4096;
/// Lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// The kernel's swap state: page payloads on the (simulated) swap device
/// plus the reserved-region metadata words.
///
/// # Determinism invariant
///
/// Both maps use the deterministic [`LineMap`] hasher, **not** the
/// default per-process-seeded `RandomState`: their iteration order (and
/// therefore anything derived from it, like [`Self::swapped_page_addrs`]
/// or a future swap-storm/stats path) is a pure function of the
/// swap-out/swap-in sequence, identical across fresh processes. The
/// `nondet-map` lint in `califorms-analyze` enforces this structurally.
#[derive(Debug, Default)]
pub struct SwapManager {
    /// Swap device: page base → 64 line payloads (raw bytes only — no
    /// metadata bit, that's the point).
    device: LineMap<Vec<[u8; LINE_BYTES as usize]>>,
    /// Reserved kernel region: page base → one 64-bit word, bit `i` =
    /// *line i of the page is califormed*.
    metadata: LineMap<u64>,
}

impl SwapManager {
    /// A fresh swap manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages currently swapped out.
    pub fn swapped_pages(&self) -> usize {
        self.device.len()
    }

    /// Bytes of reserved kernel address space consumed by swap metadata
    /// (8 B per swapped page — the Section 6.3 accounting).
    pub fn metadata_bytes(&self) -> usize {
        self.metadata.len() * 8
    }

    /// Base addresses of the currently swapped-out pages, in the swap
    /// device's map-iteration order. Because the device is a [`LineMap`],
    /// that order is a deterministic function of the swap-out/swap-in
    /// sequence — the same across fresh processes — so callers (swap-storm
    /// workloads, kernel stats) may iterate it without perturbing
    /// bit-identical results (`crates/sim/tests/os_determinism.rs` checks
    /// this across processes).
    pub fn swapped_page_addrs(&self) -> Vec<u64> {
        self.device.keys().copied().collect()
    }

    /// Swaps a page out: every line is first written back from the caches,
    /// then its payload goes to the swap device and its metadata bit into
    /// the reserved region; the DRAM copies are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `page_addr` is not page-aligned or the page is already
    /// swapped out (kernel invariant violations).
    pub fn swap_out(&mut self, hierarchy: &mut Hierarchy, page_addr: u64) {
        assert_eq!(page_addr % PAGE_BYTES, 0, "page-aligned address required");
        assert!(
            !self.device.contains_key(&page_addr),
            "page already swapped out"
        );
        let mut payload = Vec::with_capacity(LINES_PER_PAGE as usize);
        let mut meta = 0u64;
        for i in 0..LINES_PER_PAGE {
            let line_addr = page_addr + i * LINE_BYTES;
            hierarchy.evict_line_to_dram(line_addr);
            let line = hierarchy.dram_line(line_addr);
            if line.califormed {
                meta |= 1 << i;
            }
            payload.push(line.bytes);
            hierarchy.remove_dram_line(line_addr);
        }
        self.device.insert(page_addr, payload);
        self.metadata.insert(page_addr, meta);
    }

    /// Swaps a page back in, restoring each line's payload to DRAM and its
    /// metadata bit to the spare ECC bits; the reserved-region word is
    /// reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if the page is not currently swapped out.
    pub fn swap_in(&mut self, hierarchy: &mut Hierarchy, page_addr: u64) {
        let payload = self
            .device
            .remove(&page_addr)
            .expect("swap-in of a resident page");
        let meta = self
            .metadata
            .remove(&page_addr)
            .expect("metadata exists for every swapped page");
        for (i, bytes) in payload.into_iter().enumerate() {
            let line_addr = page_addr + i as u64 * LINE_BYTES;
            hierarchy.set_dram_line(
                line_addr,
                L2Line {
                    bytes,
                    califormed: meta >> i & 1 == 1,
                },
            );
        }
    }
}

// --- checkpoint serialization -----------------------------------------

use crate::checkpoint::{self as ck, CheckpointError};

impl SwapManager {
    /// Serializes the swap device + reserved-region metadata (the
    /// optional `SEC_OS` checkpoint payload). Pages are written sorted by
    /// base address so semantically-equal swap states serialize
    /// byte-identically regardless of swap history.
    pub(crate) fn save_state(&self, w: &mut ck::Wr) {
        let mut pages: Vec<u64> = self.device.keys().copied().collect();
        pages.sort_unstable();
        w.u64(pages.len() as u64);
        for page in pages {
            w.u64(page);
            // analyze::allow(hot-path-unwrap): key came from the map one line up
            let payload = self.device.get(&page).expect("page key is present");
            let meta = self
                .metadata
                .get(&page)
                .copied()
                .expect("metadata exists for every swapped page");
            w.u64(meta);
            for line in payload {
                w.bytes(line);
            }
        }
    }

    pub(crate) fn restore_state(r: &mut ck::Rd<'_>) -> ck::Result<Self> {
        let n = r.count()?;
        let mut swap = SwapManager::new();
        let mut prev = None;
        for _ in 0..n {
            let page = r.u64()?;
            if page % PAGE_BYTES != 0 {
                return Err(CheckpointError::Corrupt("swap page address unaligned"));
            }
            if prev.is_some_and(|p| page <= p) {
                return Err(CheckpointError::Corrupt(
                    "swap pages out of canonical order",
                ));
            }
            prev = Some(page);
            let meta = r.u64()?;
            let mut payload = Vec::with_capacity(LINES_PER_PAGE as usize);
            for _ in 0..LINES_PER_PAGE {
                let raw = r.take(LINE_BYTES as usize)?;
                let mut line = [0u8; LINE_BYTES as usize];
                line.copy_from_slice(raw);
                payload.push(line);
            }
            swap.device.insert(page, payload);
            swap.metadata.insert(page, meta);
        }
        Ok(swap)
    }
}

/// Result of exporting memory across the I/O boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoExport {
    /// The un-califormed bytes as the other end sees them (zeros where
    /// security bytes sat).
    pub data: Vec<u8>,
    /// How many security bytes were crossed (audit trail; a `write()` of a
    /// struct with spans is legitimate, but the kernel can log it).
    pub security_bytes_crossed: usize,
}

/// Copies `[addr, addr+len)` out of the memory system in un-califormed
/// form — the `write(2)`-to-pipe/file/socket path. The in-memory lines
/// remain califormed; only the exported copy is stripped.
pub fn io_write(hierarchy: &mut Hierarchy, addr: u64, len: usize) -> IoExport {
    let mut data = Vec::with_capacity(len);
    let mut crossed = 0usize;
    let mut cur = addr;
    let end = addr + len as u64;
    while cur < end {
        let line_addr = line_base(cur);
        // The kernel reads through the hierarchy's coherent view.
        hierarchy.evict_line_to_dram(line_addr);
        let l1 = fill(&hierarchy.dram_line(line_addr)).expect("well-formed line");
        let chunk_end = (line_addr + LINE_BYTES).min(end);
        while cur < chunk_end {
            let off = (cur - line_addr) as usize;
            if l1.line().is_security_byte(off) {
                crossed += 1;
                data.push(0);
            } else {
                data.push(l1.line().data()[off]);
            }
            cur += 1;
        }
    }
    IoExport {
        data,
        security_bytes_crossed: crossed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use califorms_core::CformInstruction;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::westmere())
    }

    #[test]
    fn swap_out_in_preserves_data_and_metadata() {
        let mut h = hier();
        let page = 0x10_0000u64;
        // Populate a few lines, caliform some bytes.
        h.store(page, &[1, 2, 3, 4], 0);
        h.store(page + 128, &[5, 6], 0);
        h.cform(&CformInstruction::set(page, 1 << 60), 0);
        h.cform(&CformInstruction::set(page + 128, 1 << 7), 0);

        let mut swap = SwapManager::new();
        swap.swap_out(&mut h, page);
        assert_eq!(swap.swapped_pages(), 1);
        assert_eq!(swap.metadata_bytes(), 8, "8B of metadata per 4KB page");
        // Page is gone from memory.
        assert_eq!(h.dram_line(page), L2Line::plain([0; 64]));

        swap.swap_in(&mut h, page);
        assert_eq!(swap.swapped_pages(), 0);
        assert_eq!(swap.metadata_bytes(), 0, "metadata reclaimed");
        assert_eq!(h.load(page, 4, 0).data, vec![1, 2, 3, 4]);
        assert_eq!(h.load(page + 128, 2, 0).data, vec![5, 6]);
        assert!(h.peek_is_security_byte(page + 60));
        assert!(h.peek_is_security_byte(page + 128 + 7));
        assert!(!h.peek_is_security_byte(page + 1));
        // Tripwires still live after the round trip.
        assert!(h.load(page + 60, 1, 0).exception.is_some());
    }

    #[test]
    fn swap_handles_fully_clean_pages() {
        let mut h = hier();
        let page = 0x20_0000u64;
        h.store(page + 64, &[7; 8], 0);
        let mut swap = SwapManager::new();
        swap.swap_out(&mut h, page);
        swap.swap_in(&mut h, page);
        assert_eq!(h.load(page + 64, 8, 0).data, vec![7; 8]);
        assert!(!h.dram_line(page + 64).califormed);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_swap_out_panics() {
        SwapManager::new().swap_out(&mut hier(), 0x100);
    }

    #[test]
    #[should_panic(expected = "already swapped")]
    fn double_swap_out_panics() {
        let mut h = hier();
        let mut swap = SwapManager::new();
        swap.swap_out(&mut h, 0x30_0000);
        swap.swap_out(&mut h, 0x30_0000);
    }

    #[test]
    fn io_write_strips_security_bytes_without_unarming_them() {
        let mut h = hier();
        let base = 0x40_0000u64;
        h.store(base, &[0xAA; 8], 0);
        h.cform(&CformInstruction::set(base, 1 << 3), 0);
        let export = io_write(&mut h, base, 8);
        assert_eq!(
            export.data,
            vec![0xAA, 0xAA, 0xAA, 0, 0xAA, 0xAA, 0xAA, 0xAA]
        );
        assert_eq!(export.security_bytes_crossed, 1);
        // The in-memory copy is still protected.
        assert!(h.peek_is_security_byte(base + 3));
        assert!(h.load(base + 3, 1, 0).exception.is_some());
    }

    #[test]
    fn io_write_spans_lines() {
        let mut h = hier();
        let base = 0x50_0000u64 + 60;
        h.store(base, &[1, 2, 3, 4, 5, 6, 7, 8], 0);
        let export = io_write(&mut h, base, 8);
        assert_eq!(export.data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(export.security_bytes_crossed, 0);
    }
}
