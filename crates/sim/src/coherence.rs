//! MESI directory coherence over per-core califormed L1 data caches.
//!
//! Multi-core layout of the Califorms hierarchy (DESIGN.md §7): every core
//! owns a private L1D holding lines in the *califorms-bitvector* format,
//! and all cores share the sentinel-format L2/L3/DRAM levels
//! ([`SharedLevels`]). A full-map directory (conceptually co-located with
//! the shared L2 tags) tracks, per line, which cores cache it and whether
//! one of them holds it exclusively.
//!
//! The protocol is MESI:
//!
//! * **M**odified — sole copy, dirty; the directory records the owner.
//! * **E**xclusive — sole copy, clean; a silent local E→M upgrade on the
//!   first store (the directory cannot distinguish E from M and does not
//!   need to).
//! * **S**hared — one of possibly many clean copies.
//! * **I**nvalid — not resident (absence from the L1).
//!
//! The Califorms-specific part is what happens on every transfer across an
//! L1 boundary: a recall from a remote owner runs the **real** Algorithm 1
//! spill (bitvector → sentinel) in the source L1 and the Algorithm 2 fill
//! (sentinel → bitvector) in the destination L1, exactly as a hardware
//! implementation would — the shared levels and the interconnect only ever
//! carry sentinel-format lines. Because spill/fill are exact inverses and
//! the canonical line type zeroes data under security bytes, the
//! security-byte zeroing invariant survives every invalidation, downgrade
//! and cache-to-cache transfer (property-tested in
//! `crates/sim/tests/multicore.rs`).

use crate::cache::SetAssocCache;
use crate::hierarchy::{
    kmap_exception, load_violation, HierarchyConfig, LevelBank, LineMap, MemResult, SharedLevels,
};
use crate::stats::{CacheStats, CoherenceStats, SimStats};
use crate::{line_base, line_offset, LINE_BYTES};
use califorms_core::{
    fill_canonical, range_mask, spill_canonical, AccessKind, CaliformsException, CformInstruction,
    CoreError, ExceptionKind, L1Line,
};

/// MESI residency state of a line in one core's L1 (absence = Invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// Sole copy, dirty.
    Modified,
    /// Sole copy, clean (silently upgradable to M).
    Exclusive,
    /// Possibly one of many clean copies.
    Shared,
}

impl Mesi {
    /// Whether this state permits a store without a directory transaction.
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }
}

/// One L1 entry: the bitvector-format line plus its MESI state.
#[derive(Debug, Clone, Copy)]
pub struct CoherentLine {
    /// The line in L1 (califorms-bitvector) format.
    pub line: L1Line,
    /// Current MESI state.
    pub state: Mesi,
}

/// Latency parameters of the coherence fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// Cycles to consult the directory on an L1 miss or upgrade (charged
    /// on top of whatever services the request).
    pub directory_latency: u32,
    /// Cycles for a cache-to-cache transfer: probe the remote L1, spill,
    /// move the line across the interconnect, fill.
    pub cache_to_cache_latency: u32,
    /// Cycles for an S→M upgrade that must invalidate remote sharers.
    pub upgrade_latency: u32,
}

impl CoherenceConfig {
    /// Defaults in line with the Table 3 machine: directory lookup rides
    /// the L2 pipeline, a remote-L1 recall costs about two L2 trips.
    pub fn westmere() -> Self {
        Self {
            directory_latency: 2,
            cache_to_cache_latency: 15,
            upgrade_latency: 11,
        }
    }
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self::westmere()
    }
}

/// Full-map directory entry for one line.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bit `c` set ⇒ core `c` has a copy.
    sharers: u64,
    /// `Some(c)` ⇒ core `c` holds the line in M or E (then
    /// `sharers == 1 << c`).
    owner: Option<usize>,
}

/// One core's private L1D with its MESI states — the per-core slice of the
/// L1 boundary.
///
/// This type owns everything a core may touch **without** synchronisation:
/// during the parallel phase of a quantum
/// ([`crate::multicore::MulticoreEngine`]) each worker thread holds `&mut`
/// to exactly one `CoreL1`, and the `try_*` methods below complete only
/// the accesses that need no directory transaction (hits with sufficient
/// MESI permission). Everything else returns `None` and is replayed
/// through [`CoherentHierarchy`] in the deterministic serial phase.
///
/// `Clone` exists for the speculative weave's rollback snapshots
/// (DESIGN.md §15): a worker clones its L1 before executing an epoch
/// optimistically and the commit point restores the clone on abort.
#[derive(Debug, Clone)]
pub struct CoreL1 {
    cache: SetAssocCache<CoherentLine>,
}

impl CoreL1 {
    fn new(cfg: &HierarchyConfig) -> Self {
        Self {
            cache: SetAssocCache::new(cfg.l1d_size, cfg.l1d_ways, cfg.l1d_latency),
        }
    }

    /// Hit/miss/eviction counters of this L1.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Lines currently resident (telemetry occupancy numerator).
    pub fn resident_lines(&self) -> usize {
        self.cache.resident_lines()
    }

    /// Line-slot capacity (telemetry occupancy denominator).
    pub fn capacity_lines(&self) -> usize {
        self.cache.capacity_lines()
    }

    /// Whether all lines covered by `[addr, addr + len)` are resident
    /// (`write` additionally requires M or E on each).
    fn servable_locally(&self, addr: u64, len: usize, write: bool) -> bool {
        let mut line_addr = line_base(addr);
        let end = addr + len as u64;
        while line_addr < end {
            match self.cache.peek(line_addr) {
                Some(e) if !write || e.state.writable() => {}
                _ => return false,
            }
            line_addr += LINE_BYTES;
        }
        true
    }

    /// A structurally empty stand-in left behind while the real L1 is
    /// lent to a bound-phase worker. Never accessed.
    pub(crate) fn detached() -> Self {
        Self {
            cache: SetAssocCache::detached(),
        }
    }

    /// Completes a load entirely within this L1 **without materialising
    /// the data** — the replay hot path only needs latency and exception.
    /// Returns `None` if any covered line is absent.
    ///
    /// Single-line accesses (the trace-pack common case) take a one-scan
    /// fast path: probe once, count the hit only if the access completes
    /// locally, one bit-vector AND for the security check.
    pub fn try_load_quiet(&mut self, addr: u64, len: usize, pc: u64) -> Option<MemResult> {
        let offset = line_offset(addr);
        if len != 0 && offset + len <= LINE_BYTES as usize {
            let line_addr = line_base(addr);
            let latency = self.cache.latency;
            let hit = self.cache.probe_entry(line_addr)?;
            let bv = hit.value.line.bitvector();
            self.cache.stats.hits += 1;
            return Some(MemResult::quiet(
                latency,
                load_violation(bv & range_mask(offset, len), line_addr, pc),
            ));
        }
        if !self.servable_locally(addr, len, false) {
            return None;
        }
        let latency = self.cache.latency;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            // analyze::allow(hot-path-unwrap): residency checked by the enclosing probe
            let e = self.cache.access(line_addr).expect("checked resident");
            let bv = e.line.bitvector();
            if exception.is_none() {
                exception = load_violation(bv & range_mask(offset, chunk), line_addr, pc);
            }
            cur += chunk as u64;
        }
        Some(MemResult::quiet(latency, exception))
    }

    /// Completes a load entirely within this L1, or returns `None` if any
    /// covered line is absent (the coherence path must run).
    pub fn try_load(&mut self, addr: u64, len: usize, pc: u64) -> Option<MemResult> {
        if !self.servable_locally(addr, len, false) {
            return None;
        }
        let latency = self.cache.latency;
        let mut data = Vec::with_capacity(len);
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let e = self.cache.access(line_addr).expect("checked resident");
            let r = e.line.load(offset, chunk);
            data.extend_from_slice(&r.data);
            if r.violation && exception.is_none() {
                let first = r.violating_bytes.trailing_zeros() as u64;
                exception = Some(CaliformsException {
                    fault_addr: cur + first,
                    access: AccessKind::Load,
                    kind: ExceptionKind::SecurityByteAccess,
                    pc,
                });
            }
            cur += chunk as u64;
        }
        Some(MemResult {
            latency,
            data,
            exception,
        })
    }

    /// Completes a store entirely within this L1, or returns `None` if any
    /// covered line is absent or lacks write permission.
    ///
    /// Single-line stores take a one-scan fast path: probe once, check
    /// MESI write permission, write and mark dirty through the same
    /// entry handle.
    pub fn try_store(&mut self, addr: u64, bytes: &[u8], pc: u64) -> Option<MemResult> {
        let offset = line_offset(addr);
        if !bytes.is_empty() && offset + bytes.len() <= LINE_BYTES as usize {
            let line_addr = line_base(addr);
            let latency = self.cache.latency;
            let hit = self.cache.probe_entry(line_addr)?;
            if !hit.value.state.writable() {
                // S-state store: the upgrade (and its hit count) belongs
                // to whichever phase runs the directory transaction.
                return None;
            }
            let exception = match hit.value.line.store(offset, bytes) {
                Ok(()) => {
                    hit.value.state = Mesi::Modified; // silent E→M
                    *hit.dirty = true;
                    None
                }
                Err(CoreError::StoreToSecurityByte { index }) => Some(CaliformsException {
                    fault_addr: line_addr + index as u64,
                    access: AccessKind::Store,
                    kind: ExceptionKind::SecurityByteAccess,
                    pc,
                }),
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            };
            self.cache.stats.hits += 1;
            return Some(MemResult::quiet(latency, exception));
        }
        if !self.servable_locally(addr, bytes.len(), true) {
            return None;
        }
        let latency = self.cache.latency;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + bytes.len() as u64;
        let mut consumed = 0usize;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            // analyze::allow(hot-path-unwrap): residency checked by the enclosing probe
            let e = self.cache.access(line_addr).expect("checked resident");
            match e.line.store(offset, &bytes[consumed..consumed + chunk]) {
                Ok(()) => {
                    e.state = Mesi::Modified; // silent E→M
                    self.cache.mark_dirty(line_addr);
                }
                Err(CoreError::StoreToSecurityByte { index }) => {
                    if exception.is_none() {
                        exception = Some(CaliformsException {
                            fault_addr: line_addr + index as u64,
                            access: AccessKind::Store,
                            kind: ExceptionKind::SecurityByteAccess,
                            pc,
                        });
                    }
                }
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            }
            cur += chunk as u64;
            consumed += chunk;
        }
        Some(MemResult::quiet(latency, exception))
    }

    /// Completes a `CFORM` entirely within this L1 (the line must be held
    /// M or E), or returns `None`. One probe scan, like the store path.
    pub fn try_cform(&mut self, insn: &CformInstruction, pc: u64) -> Option<MemResult> {
        let latency = self.cache.latency;
        let hit = self.cache.probe_entry(insn.line_addr)?;
        if !hit.value.state.writable() {
            return None;
        }
        let exception = match insn.execute(hit.value.line.line_mut()) {
            Ok(_) => {
                hit.value.state = Mesi::Modified;
                *hit.dirty = true;
                None
            }
            Err(err) => Some(kmap_exception(err, insn.line_addr, pc)),
        };
        self.cache.stats.hits += 1;
        Some(MemResult::quiet(latency, exception))
    }
}

/// Per-bank coherence-side state: the directory shard covering one
/// [`LevelBank`]'s lines, plus the counters whose events are attributable
/// to a single bank (and may therefore be bumped by a bound-phase worker
/// that owns the bank, without any synchronisation).
///
/// `Clone` exists for the speculative weave (DESIGN.md §15): a worker
/// that claims a bank executes against a clone of its shard and the
/// commit point installs the clone wholesale (or drops it on abort).
#[derive(Debug, Default, Clone)]
pub(crate) struct BankExt {
    /// Directory shard: full-map entries for this bank's lines.
    dir: LineMap<DirEntry>,
    /// Directory consultations against this shard.
    lookups: u64,
    /// S→M upgrades resolved through this shard.
    upgrades: u64,
    /// L1→L2 spill conversions of califormed lines into this bank.
    spills: u64,
    /// L2→L1 fill conversions of califormed lines out of this bank.
    fills: u64,
    /// Weave transactions whose line lives in this shard.
    weave_transactions: u64,
    /// Of those, transactions that rode an earlier transaction's turn.
    weave_batched: u64,
    /// Of those, transactions that involved another core.
    weave_contended: u64,
}

/// Public snapshot of one directory shard's counters — the per-shard
/// telemetry lanes ([`CoherentHierarchy::coherence_totals`] sums the
/// lookup/upgrade columns away; the weave split used to be one global
/// total in [`crate::runtime::RuntimeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryShardStats {
    /// Directory consultations against this shard.
    pub lookups: u64,
    /// S→M upgrades resolved through this shard.
    pub upgrades: u64,
    /// L1→L2 spill conversions of califormed lines into this shard's bank.
    pub spills: u64,
    /// L2→L1 fill conversions of califormed lines out of this shard's bank.
    pub fills: u64,
    /// Weave transactions whose line lives in this shard.
    pub weave_transactions: u64,
    /// Of those, transactions that rode an earlier transaction's turn.
    pub weave_batched: u64,
    /// Of those, transactions that involved another core.
    pub weave_contended: u64,
}

/// The multi-core hierarchy: N per-core L1Ds kept coherent by a MESI
/// directory over the shared sentinel-format L2/L3/DRAM. The shared
/// levels and the directory are sharded into banks (see [`LevelBank`])
/// so the bound phase of [`crate::multicore::MulticoreEngine`] can lend
/// each worker exclusive ownership of a slice.
#[derive(Debug)]
pub struct CoherentHierarchy {
    cfg: HierarchyConfig,
    ccfg: CoherenceConfig,
    l1s: Vec<CoreL1>,
    shared: SharedLevels,
    /// Per-bank directory shards + bank-attributable counters.
    exts: Vec<BankExt>,
    /// Cross-core coherence-traffic counters (weave-phase only; the
    /// per-bank `lookups`/`upgrades`/`spills`/`fills` are merged in by
    /// [`Self::coherence_totals`]).
    coherence: CoherenceStats,
}

/// How far [`CoherentHierarchy::ensure_state_private`] got: either the
/// request was fully satisfied without involving another core, or it
/// needs one of the remote arms — which only the serial weave may run
/// (the speculative weave aborts its epoch instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrivateOutcome {
    /// Handled entirely core-locally; latency beyond the L1 hit latency.
    Done(u32),
    /// Resident Shared + write with remote sharers to invalidate. The
    /// L1 hit and the shard's lookup/upgrade counters are already
    /// accounted; the directory entry itself is untouched.
    RemoteUpgrade,
    /// Not resident, and the directory names a remote owner or sharer.
    /// The L1 miss and the shard lookup are already accounted; the
    /// entry exists (possibly just created) and is untouched.
    RemoteMiss,
}

/// Largest bank count the coherent hierarchy shards into.
const MAX_BANKS: usize = 8;

/// Largest power-of-two divisor of `n` (1 for odd `n`).
fn pow2_divisor(n: usize) -> usize {
    if n == 0 {
        1
    } else {
        1 << n.trailing_zeros()
    }
}

/// Bank count for a configuration: the largest power of two ≤
/// [`MAX_BANKS`] **dividing** the L1, L2 and L3 set counts (for the
/// power-of-two set counts `SetAssocCache` enforces this is just their
/// minimum, capped). Dividing the **L1** set count is what guarantees
/// an L1 victim always lives in the same bank as the line that evicted
/// it (same L1 set ⇒ same line index modulo the bank count), so a
/// private-miss transaction never has to touch a foreign bank to
/// retire a victim.
fn bank_count(cfg: &HierarchyConfig) -> usize {
    let line = LINE_BYTES as usize;
    let l1_sets = cfg.l1d_size / (cfg.l1d_ways * line);
    let l2_sets = cfg.l2_size / (cfg.l2_ways * line);
    let l3_sets = cfg.l3_size / (cfg.l3_ways * line);
    MAX_BANKS
        .min(pow2_divisor(l1_sets))
        .min(pow2_divisor(l2_sets))
        .min(pow2_divisor(l3_sets))
}

impl CoherentHierarchy {
    /// Builds a coherent hierarchy with `cores` private L1Ds.
    ///
    /// `cfg.stream_prefetcher` / `cfg.prefetch_residual` are ignored:
    /// the multi-core L1s carry no prefetcher (DESIGN.md §7).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ cores ≤ 64` (the directory's sharer set is one
    /// machine word, as in real full-map directories of this scale).
    pub fn new(cfg: HierarchyConfig, ccfg: CoherenceConfig, cores: usize) -> Self {
        assert!(
            (1..=64).contains(&cores),
            "directory supports 1..=64 cores, got {cores}"
        );
        let banks = bank_count(&cfg);
        Self {
            l1s: (0..cores).map(|_| CoreL1::new(&cfg)).collect(),
            shared: SharedLevels::banked(cfg, banks),
            exts: (0..banks).map(|_| BankExt::default()).collect(),
            cfg,
            ccfg,
            coherence: CoherenceStats::default(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1s.len()
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Mutable access to the per-core L1 slices — the multicore engine
    /// hands each worker thread exactly one during the parallel phase.
    pub fn l1s_mut(&mut self) -> &mut [CoreL1] {
        &mut self.l1s
    }

    /// Read-only view of the per-core L1 slices.
    pub fn l1s(&self) -> &[CoreL1] {
        &self.l1s
    }

    /// Mutable access to one core's L1.
    pub fn l1_mut(&mut self, c: usize) -> &mut CoreL1 {
        &mut self.l1s[c]
    }

    /// Lends core `c`'s L1 out for a bound phase, leaving a detached
    /// stand-in; pair with [`Self::put_l1`].
    pub(crate) fn take_l1(&mut self, c: usize) -> CoreL1 {
        std::mem::replace(&mut self.l1s[c], CoreL1::detached())
    }

    /// Returns a lent L1.
    pub(crate) fn put_l1(&mut self, c: usize, l1: CoreL1) {
        self.l1s[c] = l1;
    }

    /// Number of banks the shared levels and the directory are sharded
    /// into (the claim-table width of the speculative weave).
    pub(crate) fn banks(&self) -> usize {
        self.exts.len()
    }

    /// Lends every bank (shared-level slice + directory shard) out for a
    /// speculative weave phase, leaving the hierarchy bankless; pair
    /// with [`Self::put_banks`]. While lent, only the per-core L1
    /// accessors may be used.
    pub(crate) fn take_banks(&mut self) -> (Vec<LevelBank>, Vec<BankExt>) {
        (self.shared.take_banks(), std::mem::take(&mut self.exts))
    }

    /// Returns the banks lent by [`Self::take_banks`] (or the committed
    /// clones replacing them), in bank order.
    pub(crate) fn put_banks(&mut self, banks: Vec<LevelBank>, exts: Vec<BankExt>) {
        debug_assert!(self.exts.is_empty(), "banks returned while not lent");
        self.shared.put_banks(banks);
        self.exts = exts;
    }

    /// L1→L2 spill conversions of califormed lines (all cores, all banks).
    pub fn spills(&self) -> u64 {
        self.exts.iter().map(|e| e.spills).sum()
    }

    /// L2→L1 fill conversions of califormed lines (all cores, all banks).
    pub fn fills(&self) -> u64 {
        self.exts.iter().map(|e| e.fills).sum()
    }

    /// The full coherence-traffic counters: the weave-phase cross-core
    /// events plus the per-bank directory lookup and upgrade counts.
    pub fn coherence_totals(&self) -> CoherenceStats {
        let mut c = self.coherence;
        c.directory_lookups += self.exts.iter().map(|e| e.lookups).sum::<u64>();
        c.upgrades_s_to_m += self.exts.iter().map(|e| e.upgrades).sum::<u64>();
        c
    }

    /// Monotonic count of coherence events that involved more than one
    /// core (invalidations + cache-to-cache transfers). The weave uses
    /// deltas of this to detect whether a transaction was contended, and
    /// the adaptive quantum controller to measure a quantum's contention
    /// — both purely simulated state.
    pub(crate) fn cross_core_events(&self) -> u64 {
        self.coherence.invalidations + self.coherence.cache_to_cache_transfers
    }

    /// Attributes one weave transaction on `line_addr` to the directory
    /// shard holding the line (called by the weave after each committed
    /// transaction; purely simulated state, so the split is
    /// deterministic).
    pub(crate) fn note_weave_txn(&mut self, line_addr: u64, batched: bool, contended: bool) {
        let ext = &mut self.exts[self.shared.bank_of(line_addr)];
        ext.weave_transactions += 1;
        ext.weave_batched += u64::from(batched);
        ext.weave_contended += u64::from(contended);
    }

    /// Per-shard directory counters (telemetry and the weave breakdown).
    pub fn shard_stats(&self) -> Vec<DirectoryShardStats> {
        self.exts
            .iter()
            .map(|e| DirectoryShardStats {
                lookups: e.lookups,
                upgrades: e.upgrades,
                spills: e.spills,
                fills: e.fills,
                weave_transactions: e.weave_transactions,
                weave_batched: e.weave_batched,
                weave_contended: e.weave_contended,
            })
            .collect()
    }

    /// Per-bank shared-level counters (delegates to
    /// [`SharedLevels::bank_stats`]).
    pub fn bank_level_stats(&self) -> Vec<crate::hierarchy::BankLevelStats> {
        self.shared.bank_stats()
    }

    /// Spills `line` back into `bank` (running the real
    /// bitvector→sentinel conversion). `dirty` decides whether the L2
    /// copy is marked dirty.
    fn writeback_into(
        bank: &mut LevelBank,
        ext: &mut BankExt,
        line_addr: u64,
        line: &L1Line,
        dirty: bool,
    ) {
        let spilled = spill_canonical(line);
        if spilled.califormed {
            ext.spills += 1;
        }
        bank.insert_l2(line_addr, spilled, dirty);
    }

    /// Removes core `c` from a victim line's directory entry (L1 capacity
    /// eviction), writing a dirty victim back through the spill path. The
    /// caller supplies the victim's own bank. One hash operation in the
    /// common case (sole resident core evicts → entry removed); the entry
    /// is reinserted only when other cores still share the line.
    fn retire_victim(
        bank: &mut LevelBank,
        ext: &mut BankExt,
        c: usize,
        line_addr: u64,
        victim: CoherentLine,
        dirty: bool,
    ) {
        let mut entry = ext
            .dir
            .remove(&line_addr)
            // analyze::allow(hot-path-unwrap): coherence invariant: every resident line has a directory entry
            .expect("resident lines are in the directory");
        entry.sharers &= !(1u64 << c);
        if entry.sharers != 0 {
            if entry.owner == Some(c) {
                entry.owner = None;
            }
            ext.dir.insert(line_addr, entry);
        }
        if dirty {
            Self::writeback_into(bank, ext, line_addr, &victim.line, true);
        }
    }

    /// The private slice of the MESI state machine: every arm of
    /// [`Self::ensure_state`] that involves no core other than `c`,
    /// factored over explicit borrows of the core's L1 and the line's
    /// bank so the serial weave (on `self`) and the speculative weave
    /// ([`SpecExec`], on bank clones) execute the *same statements* —
    /// the statement-for-statement production counterpart of the
    /// `califorms-analyze` `sched::weave` model's `execute` step.
    /// Accounting (L1 hit/miss, shard lookup/upgrade counters) lands
    /// exactly where the unfactored code counted it; a `Remote*` return
    /// leaves the directory entry itself untouched.
    fn ensure_state_private(
        ccfg: &CoherenceConfig,
        l1: &mut CoreL1,
        bank: &mut LevelBank,
        ext: &mut BankExt,
        c: usize,
        line_addr: u64,
        write: bool,
    ) -> PrivateOutcome {
        // Fast path: already resident with sufficient permission.
        if let Some(e) = l1.cache.access(line_addr) {
            match (e.state, write) {
                (_, false) | (Mesi::Modified, true) | (Mesi::Exclusive, true) => {
                    return PrivateOutcome::Done(0)
                }
                (Mesi::Shared, true) => {
                    // S→M upgrade.
                    ext.lookups += 1;
                    ext.upgrades += 1;
                    let entry = ext
                        .dir
                        .get_mut(&line_addr)
                        // analyze::allow(hot-path-unwrap): coherence invariant: shared lines keep their directory entry
                        .expect("shared lines are in the directory");
                    let others = entry.sharers & !(1u64 << c);
                    if others != 0 {
                        return PrivateOutcome::RemoteUpgrade;
                    }
                    // Sole sharer (the peers' copies were evicted):
                    // the upgrade is bank-local.
                    entry.sharers = 1 << c;
                    entry.owner = Some(c);
                    let e = l1
                        .cache
                        .peek_mut(line_addr)
                        // analyze::allow(hot-path-unwrap): the line was pinned resident earlier in this transaction
                        .expect("still resident");
                    e.state = Mesi::Modified;
                    return PrivateOutcome::Done(ccfg.directory_latency);
                }
            }
        }

        // Miss: consult the directory shard (one hash op for the whole
        // transaction — the entry is created and updated in place).
        ext.lookups += 1;
        let entry = ext.dir.entry(line_addr).or_default();
        let remote_owner = entry.owner.filter(|&o| o != c);
        let remote_sharers = entry.sharers & !(1u64 << c);
        if remote_owner.is_some() || remote_sharers != 0 {
            return PrivateOutcome::RemoteMiss;
        }

        // No other core involved: the transaction touches only this
        // core's L1 and the line's own bank — the private case the
        // weave batches, the adaptive quantum grows over, and the
        // speculative weave commits in parallel.
        entry.sharers = 1 << c;
        entry.owner = Some(c);
        let state = if write {
            Mesi::Modified
        } else {
            Mesi::Exclusive
        };
        let mut latency = ccfg.directory_latency;
        let (l2line, fetch_latency) = bank.fetch(line_addr);
        latency += fetch_latency;
        if l2line.califormed {
            ext.fills += 1;
        }
        let l1line = fill_canonical(&l2line);
        if let Some(victim) = l1.cache.insert(
            line_addr,
            CoherentLine {
                line: l1line,
                state,
            },
            false,
        ) {
            // NB divides the L1 set count, so the victim (same L1
            // set) provably lives in the same bank as the line.
            Self::retire_victim(bank, ext, c, victim.line_addr, victim.value, victim.dirty);
        }
        PrivateOutcome::Done(latency)
    }

    /// The MESI state machine: makes `line_addr` resident in core `c`'s
    /// L1 with read (`write == false`) or write permission, returning the
    /// latency beyond the L1 hit latency. The private arms live in
    /// [`Self::ensure_state_private`] (shared with the speculative
    /// weave); only the remote arms below are serial-weave-only.
    fn ensure_state(&mut self, c: usize, line_addr: u64, write: bool) -> u32 {
        let b = self.shared.bank_of(line_addr);
        match Self::ensure_state_private(
            &self.ccfg,
            &mut self.l1s[c],
            self.shared.bank_mut(line_addr),
            &mut self.exts[b],
            c,
            line_addr,
            write,
        ) {
            PrivateOutcome::Done(latency) => return latency,
            PrivateOutcome::RemoteUpgrade => {
                // S→M upgrade with remote sharers: invalidate each.
                let entry = self.exts[b]
                    .dir
                    .get_mut(&line_addr)
                    // analyze::allow(hot-path-unwrap): coherence invariant: shared lines keep their directory entry
                    .expect("shared lines are in the directory");
                let others = entry.sharers & !(1u64 << c);
                entry.sharers = 1 << c;
                entry.owner = Some(c);
                let latency = self.ccfg.directory_latency + self.ccfg.upgrade_latency;
                for o in 0..self.l1s.len() {
                    if others >> o & 1 == 1 {
                        // Shared copies are clean: drop silently.
                        self.l1s[o].cache.invalidate(line_addr);
                        self.coherence.invalidations += 1;
                    }
                }
                let e = self.l1s[c]
                    .cache
                    .peek_mut(line_addr)
                    // analyze::allow(hot-path-unwrap): the line was pinned resident earlier in this transaction
                    .expect("still resident");
                e.state = Mesi::Modified;
                return latency;
            }
            PrivateOutcome::RemoteMiss => {}
        }

        // Miss with a remote core involved. The lookup was counted and
        // the entry created by the private slice; re-read its verdict.
        let (remote_owner, remote_sharers) = {
            let entry = self.exts[b]
                .dir
                .get(&line_addr)
                // analyze::allow(hot-path-unwrap): the private slice just consulted (or created) the entry
                .expect("the private slice consulted the entry");
            (
                entry.owner.filter(|&o| o != c),
                entry.sharers & !(1u64 << c),
            )
        };

        let mut latency = self.ccfg.directory_latency;
        let l2line = if let Some(o) = remote_owner {
            // Cache-to-cache: recall the line from the remote owner's L1.
            // The spill conversion runs in the source L1 either way; on a
            // read the owner keeps a Shared copy, on a write it is
            // invalidated.
            latency += self.ccfg.cache_to_cache_latency;
            self.coherence.cache_to_cache_transfers += 1;
            let (owner_line, owner_dirty) = if write {
                let (victim, dirty) = self.l1s[o]
                    .cache
                    .invalidate(line_addr)
                    // analyze::allow(hot-path-unwrap): directory owner state implies the line is in that L1
                    .expect("directory says owner has the line");
                self.coherence.invalidations += 1;
                (victim.line, dirty)
            } else {
                let e = self.l1s[o]
                    .cache
                    .peek_mut(line_addr)
                    // analyze::allow(hot-path-unwrap): directory owner state implies the line is in that L1
                    .expect("directory says owner has the line");
                e.state = Mesi::Shared;
                let line = e.line;
                let dirty = self.l1s[o].cache.is_dirty(line_addr).unwrap_or(false);
                self.l1s[o].cache.clear_dirty(line_addr);
                (line, dirty)
            };
            let spilled = spill_canonical(&owner_line);
            if spilled.califormed {
                self.exts[b].spills += 1;
                self.coherence.califormed_transfers += 1;
            }
            self.shared.insert_l2(line_addr, spilled, owner_dirty);
            spilled
        } else {
            if write {
                // Write to a line shared (clean) by others: invalidate.
                latency += self.ccfg.upgrade_latency;
                for o in 0..self.l1s.len() {
                    if remote_sharers >> o & 1 == 1 {
                        self.l1s[o].cache.invalidate(line_addr);
                        self.coherence.invalidations += 1;
                    }
                }
            }
            let (line, fetch_latency) = self.shared.fetch(line_addr);
            latency += fetch_latency;
            line
        };

        if l2line.califormed {
            self.exts[b].fills += 1;
        }
        let l1line = fill_canonical(&l2line);
        let entry = self.exts[b].dir.entry(line_addr).or_default();
        let state = if write {
            entry.sharers = 1 << c;
            entry.owner = Some(c);
            Mesi::Modified
        } else {
            entry.sharers |= 1 << c;
            entry.owner = None;
            Mesi::Shared
        };
        if let Some(victim) = self.l1s[c].cache.insert(
            line_addr,
            CoherentLine {
                line: l1line,
                state,
            },
            false,
        ) {
            let vb = self.shared.bank_of(victim.line_addr);
            Self::retire_victim(
                self.shared.bank_mut(victim.line_addr),
                &mut self.exts[vb],
                c,
                victim.line_addr,
                victim.value,
                victim.dirty,
            );
        }
        latency
    }

    fn l1_line_mut(&mut self, c: usize, line_addr: u64) -> &mut CoherentLine {
        // `ensure_state` has run and already counted the access.
        self.l1s[c]
            .cache
            .access_uncounted(line_addr)
            // analyze::allow(hot-path-unwrap): ensure_resident on the line above pinned it
            .expect("line was just ensured resident")
    }

    /// Performs a load by core `c` **without materialising the data** —
    /// the replay hot path only needs latency and exception. Timing, LRU,
    /// stats and exception behaviour are identical to [`Self::load`].
    pub fn load_quiet(&mut self, c: usize, addr: u64, len: usize, pc: u64) -> MemResult {
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_state(c, line_addr, false);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let bv = self.l1_line_mut(c, line_addr).line.bitvector();
            if exception.is_none() {
                exception = load_violation(bv & range_mask(offset, chunk), line_addr, pc);
            }
            cur += chunk as u64;
        }
        MemResult::quiet(latency, exception)
    }

    /// Performs a load by core `c` (line-crossing loads are split).
    pub fn load(&mut self, c: usize, addr: u64, len: usize, pc: u64) -> MemResult {
        let mut latency = 0u32;
        let mut data = Vec::with_capacity(len);
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_state(c, line_addr, false);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let e = self.l1_line_mut(c, line_addr);
            let r = e.line.load(offset, chunk);
            data.extend_from_slice(&r.data);
            if r.violation && exception.is_none() {
                let first = r.violating_bytes.trailing_zeros() as u64;
                exception = Some(CaliformsException {
                    fault_addr: cur + first,
                    access: AccessKind::Load,
                    kind: ExceptionKind::SecurityByteAccess,
                    pc,
                });
            }
            cur += chunk as u64;
        }
        MemResult {
            latency,
            data,
            exception,
        }
    }

    /// Performs a store by core `c`; on a security-byte violation the
    /// store to that line is suppressed and the exception reported.
    pub fn store(&mut self, c: usize, addr: u64, bytes: &[u8], pc: u64) -> MemResult {
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + bytes.len() as u64;
        let mut consumed = 0usize;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_state(c, line_addr, true);
            latency = latency.max(self.cfg.l1d_latency + extra);
            let e = self.l1_line_mut(c, line_addr);
            match e.line.store(offset, &bytes[consumed..consumed + chunk]) {
                Ok(()) => {
                    e.state = Mesi::Modified;
                    self.l1s[c].cache.mark_dirty(line_addr);
                }
                Err(CoreError::StoreToSecurityByte { index }) => {
                    if exception.is_none() {
                        exception = Some(CaliformsException {
                            fault_addr: line_addr + index as u64,
                            access: AccessKind::Store,
                            kind: ExceptionKind::SecurityByteAccess,
                            pc,
                        });
                    }
                }
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            }
            cur += chunk as u64;
            consumed += chunk;
        }
        MemResult::quiet(latency, exception)
    }

    /// Executes a `CFORM` by core `c` (write-allocate: the line is pulled
    /// into the core's L1 in M state first, like a store).
    pub fn cform(&mut self, c: usize, insn: &CformInstruction, pc: u64) -> MemResult {
        let extra = self.ensure_state(c, insn.line_addr, true);
        let latency = self.cfg.l1d_latency + extra;
        let e = self.l1_line_mut(c, insn.line_addr);
        let exception = match insn.execute(e.line.line_mut()) {
            Ok(_) => {
                e.state = Mesi::Modified;
                self.l1s[c].cache.mark_dirty(insn.line_addr);
                None
            }
            Err(err) => Some(kmap_exception(err, insn.line_addr, pc)),
        };
        MemResult::quiet(latency, exception)
    }

    /// Executes a **non-temporal** `CFORM` by core `c`: every L1 copy is
    /// recalled/invalidated (write-back through the spill conversion where
    /// dirty) and the line is updated in place at the shared L2 without
    /// re-entering any L1.
    /// (`_c` identifies the requesting core for API symmetry; the NT
    /// variant never allocates into any L1, so it does not use it.)
    pub fn cform_nt(&mut self, _c: usize, insn: &CformInstruction, pc: u64) -> MemResult {
        let line_addr = insn.line_addr;
        let b = self.shared.bank_of(line_addr);
        self.exts[b].lookups += 1;
        let mut latency = self.ccfg.directory_latency;
        if let Some(entry) = self.exts[b].dir.remove(&line_addr) {
            for o in 0..self.l1s.len() {
                if entry.sharers >> o & 1 == 1 {
                    if let Some((victim, dirty)) = self.l1s[o].cache.invalidate(line_addr) {
                        self.coherence.invalidations += 1;
                        if dirty {
                            Self::writeback_into(
                                self.shared.bank_mut(line_addr),
                                &mut self.exts[b],
                                line_addr,
                                &victim.line,
                                true,
                            );
                            latency += self.ccfg.cache_to_cache_latency;
                        }
                    }
                }
            }
        }
        let (l2line, extra) = self.shared.fetch(line_addr);
        latency += extra;
        let mut l1line = fill_canonical(&l2line);
        let exception = match insn.execute(l1line.line_mut()) {
            Ok(_) => {
                let spilled = spill_canonical(&l1line);
                self.shared.insert_l2(line_addr, spilled, true);
                None
            }
            Err(err) => Some(kmap_exception(err, line_addr, pc)),
        };
        MemResult::quiet(self.cfg.l1d_latency + latency, exception)
    }

    /// Functional view of the line holding `addr`: the authoritative copy
    /// is the owning core's L1 if any, then any Shared L1 copy, then the
    /// shared levels. No timing, LRU or counter effects.
    fn peek_line(&self, addr: u64) -> L1Line {
        let line_addr = line_base(addr);
        if let Some(entry) = self.exts[self.shared.bank_of(line_addr)]
            .dir
            .get(&line_addr)
        {
            for o in 0..self.l1s.len() {
                if entry.sharers >> o & 1 == 1 {
                    if let Some(e) = self.l1s[o].cache.peek(line_addr) {
                        return e.line;
                    }
                }
            }
        }
        fill_canonical(&self.shared.peek_line(line_addr))
    }

    /// Functional snapshot of a line's canonical *(data, security-mask)*
    /// state through the coherent machine (freshest copy: an owning L1
    /// first, then the shared levels) — no timing, LRU or stats effects.
    /// The differential oracle (`califorms-oracle`) diffs final memory
    /// and blacklist state against this.
    pub fn snapshot_line(&self, line_addr: u64) -> califorms_core::CaliformedLine {
        *self.peek_line(line_addr).line()
    }

    /// Functional read of one byte (security bytes read as zero).
    pub fn peek_byte(&self, addr: u64) -> u8 {
        self.peek_line(addr).line().data()[line_offset(addr)]
    }

    /// Whether `addr` currently marks a security byte.
    pub fn peek_is_security_byte(&self, addr: u64) -> bool {
        self.peek_line(addr)
            .line()
            .is_security_byte(line_offset(addr))
    }

    /// The current security mask of the line holding `addr`.
    pub fn peek_mask(&self, addr: u64) -> u64 {
        self.peek_line(addr).line().security_mask()
    }

    /// MESI state of a line in core `c`'s L1 (`None` = Invalid/absent).
    pub fn l1_state(&self, c: usize, line_addr: u64) -> Option<Mesi> {
        self.l1s[c].cache.peek(line_addr).map(|e| e.state)
    }

    /// Copies the shared-level and coherence counters into `stats` (the
    /// whole-machine "combined" block of
    /// [`crate::stats::MulticoreStats`]).
    pub fn export_stats(&self, stats: &mut SimStats) {
        self.shared.export_stats(stats);
        let mut l1d = CacheStats::default();
        for l1 in &self.l1s {
            let s = l1.stats();
            l1d.hits += s.hits;
            l1d.misses += s.misses;
            l1d.evictions += s.evictions;
            l1d.writebacks += s.writebacks;
        }
        stats.l1d = l1d;
        stats.spills = self.spills();
        stats.fills = self.fills();
        stats.coherence = self.coherence_totals();
    }
}

// ---------------------------------------------------------------------------
// Speculative weave execution (DESIGN.md §15).
// ---------------------------------------------------------------------------

/// One worker's execution context for the speculative weave phase
/// (DESIGN.md §15): the core's own L1 plus clones of every bank the
/// stream has claimed so far. The `load_quiet`/`store`/`cform` methods
/// mirror the [`CoherentHierarchy`] wrappers statement for statement,
/// with [`CoherentHierarchy::ensure_state_private`] standing in for the
/// full MESI machine — any transaction the private slice cannot finish
/// (a remote owner, remote sharers) returns `None`, which aborts the
/// epoch. `claim` is consulted once per bank on first touch; `None`
/// from it means another worker holds the claim — also an abort.
/// Non-temporal CFORMs (which cross every core's L1) have no mirror
/// here at all: the caller aborts without executing them.
pub(crate) struct SpecExec<'a, F> {
    cfg: &'a HierarchyConfig,
    ccfg: &'a CoherenceConfig,
    c: usize,
    banks: usize,
    /// The core's real L1 (the commit point rolls it back on abort).
    pub(crate) l1: &'a mut CoreL1,
    claimed: Vec<Option<(LevelBank, BankExt)>>,
    claim: F,
}

impl<'a, F: FnMut(usize) -> Option<(LevelBank, BankExt)>> SpecExec<'a, F> {
    pub(crate) fn new(
        cfg: &'a HierarchyConfig,
        ccfg: &'a CoherenceConfig,
        c: usize,
        banks: usize,
        l1: &'a mut CoreL1,
        claim: F,
    ) -> Self {
        Self {
            cfg,
            ccfg,
            c,
            banks,
            l1,
            // analyze::allow(hot-path-alloc): one bank-count Vec per speculative epoch, amortized over the whole quantum's transactions
            claimed: (0..banks).map(|_| None).collect(),
            claim,
        }
    }

    /// The claimed bank clones (bank index → mutated clone), for the
    /// commit point to install wholesale.
    pub(crate) fn into_claimed(self) -> Vec<Option<(LevelBank, BankExt)>> {
        self.claimed
    }

    /// Same address→bank split as [`SharedLevels::bank_of`].
    fn bank_of(&self, line_addr: u64) -> usize {
        crate::hierarchy::bank_index(line_addr, self.banks)
    }

    /// Mirrors the private slice of [`CoherentHierarchy::ensure_state`]
    /// against the claimed clone of the line's bank; `None` = abort.
    fn ensure_state(&mut self, line_addr: u64, write: bool) -> Option<u32> {
        let b = self.bank_of(line_addr);
        if self.claimed[b].is_none() {
            self.claimed[b] = Some((self.claim)(b)?);
        }
        // analyze::allow(hot-path-unwrap): the bank was claimed just above
        let (bank, ext) = self.claimed[b].as_mut().expect("bank just claimed");
        match CoherentHierarchy::ensure_state_private(
            self.ccfg, self.l1, bank, ext, self.c, line_addr, write,
        ) {
            PrivateOutcome::Done(latency) => Some(latency),
            PrivateOutcome::RemoteUpgrade | PrivateOutcome::RemoteMiss => None,
        }
    }

    /// Mirrors [`CoherentHierarchy::l1_line_mut`].
    fn l1_line_mut(&mut self, line_addr: u64) -> &mut CoherentLine {
        // `ensure_state` has run and already counted the access.
        self.l1
            .cache
            .access_uncounted(line_addr)
            // analyze::allow(hot-path-unwrap): ensure_state on the line above pinned it
            .expect("line was just ensured resident")
    }

    /// Mirrors [`CoherentHierarchy::load_quiet`]; `None` aborts.
    pub(crate) fn load_quiet(&mut self, addr: u64, len: usize, pc: u64) -> Option<MemResult> {
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_state(line_addr, false)?;
            latency = latency.max(self.cfg.l1d_latency + extra);
            let bv = self.l1_line_mut(line_addr).line.bitvector();
            if exception.is_none() {
                exception = load_violation(bv & range_mask(offset, chunk), line_addr, pc);
            }
            cur += chunk as u64;
        }
        Some(MemResult::quiet(latency, exception))
    }

    /// Mirrors [`CoherentHierarchy::store`]; `None` aborts.
    pub(crate) fn store(&mut self, addr: u64, bytes: &[u8], pc: u64) -> Option<MemResult> {
        let mut latency = 0u32;
        let mut exception = None;
        let mut cur = addr;
        let end = addr + bytes.len() as u64;
        let mut consumed = 0usize;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES - offset as u64).min(end - cur)) as usize;
            let extra = self.ensure_state(line_addr, true)?;
            latency = latency.max(self.cfg.l1d_latency + extra);
            let e = self.l1_line_mut(line_addr);
            match e.line.store(offset, &bytes[consumed..consumed + chunk]) {
                Ok(()) => {
                    e.state = Mesi::Modified;
                    self.l1.cache.mark_dirty(line_addr);
                }
                Err(CoreError::StoreToSecurityByte { index }) => {
                    if exception.is_none() {
                        exception = Some(CaliformsException {
                            fault_addr: line_addr + index as u64,
                            access: AccessKind::Store,
                            kind: ExceptionKind::SecurityByteAccess,
                            pc,
                        });
                    }
                }
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            }
            cur += chunk as u64;
            consumed += chunk;
        }
        Some(MemResult::quiet(latency, exception))
    }

    /// Mirrors [`CoherentHierarchy::cform`]; `None` aborts.
    pub(crate) fn cform(&mut self, insn: &CformInstruction, pc: u64) -> Option<MemResult> {
        let extra = self.ensure_state(insn.line_addr, true)?;
        let latency = self.cfg.l1d_latency + extra;
        let e = self.l1_line_mut(insn.line_addr);
        let exception = match insn.execute(e.line.line_mut()) {
            Ok(_) => {
                e.state = Mesi::Modified;
                self.l1.cache.mark_dirty(insn.line_addr);
                None
            }
            Err(err) => Some(kmap_exception(err, insn.line_addr, pc)),
        };
        Some(MemResult::quiet(latency, exception))
    }

    /// Attributes one committed speculative transaction to its (claimed)
    /// shard — the [`CoherentHierarchy::note_weave_txn`] mirror.
    /// Contended transactions cannot exist on this path: remote
    /// involvement aborts the epoch before any transaction commits.
    pub(crate) fn note_weave_txn(&mut self, line_addr: u64, batched: bool) {
        let b = self.bank_of(line_addr);
        let (_, ext) = self.claimed[b]
            .as_mut()
            // analyze::allow(hot-path-unwrap): the committed transaction just executed against this bank
            .expect("committed transaction claimed its bank");
        ext.weave_transactions += 1;
        ext.weave_batched += u64::from(batched);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint state (DESIGN.md §14). Implemented here (not in `checkpoint`)
// because the coherent hierarchy's fields are private.
// ---------------------------------------------------------------------------

use crate::checkpoint::{self as ck, CheckpointError};

/// Stable wire tags for [`Mesi`] (absence from the cache = Invalid).
fn mesi_tag(state: Mesi) -> u8 {
    match state {
        Mesi::Modified => 0,
        Mesi::Exclusive => 1,
        Mesi::Shared => 2,
    }
}

fn put_coherent_line(w: &mut ck::Wr, line: &CoherentLine) {
    ck::put_l1_line(w, &line.line);
    w.u8(mesi_tag(line.state));
}

fn get_coherent_line(r: &mut ck::Rd<'_>) -> ck::Result<CoherentLine> {
    let line = ck::get_l1_line(r)?;
    let state = match r.u8()? {
        0 => Mesi::Modified,
        1 => Mesi::Exclusive,
        2 => Mesi::Shared,
        _ => return Err(CheckpointError::Corrupt("unknown MESI state tag")),
    };
    Ok(CoherentLine { line, state })
}

impl BankExt {
    fn save_state(&self, w: &mut ck::Wr) {
        // Directory entries in canonical form: sorted by line address
        // (`LineMap` iteration order is insertion-history-dependent, the
        // sort buys byte-identical checkpoints for equal states).
        let mut entries: Vec<(u64, DirEntry)> = self.dir.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        w.u64(entries.len() as u64);
        for (addr, e) in entries {
            w.u64(addr);
            w.u64(e.sharers);
            match e.owner {
                Some(o) => {
                    w.bool(true);
                    w.u64(o as u64);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.lookups);
        w.u64(self.upgrades);
        w.u64(self.spills);
        w.u64(self.fills);
        w.u64(self.weave_transactions);
        w.u64(self.weave_batched);
        w.u64(self.weave_contended);
    }

    fn restore_state(r: &mut ck::Rd<'_>, cores: usize) -> ck::Result<Self> {
        let n = r.count()?;
        let mut dir = LineMap::default();
        let mut prev = None;
        for _ in 0..n {
            let addr = r.u64()?;
            if addr % LINE_BYTES != 0 {
                return Err(CheckpointError::Corrupt("directory line address unaligned"));
            }
            if prev.is_some_and(|p| addr <= p) {
                return Err(CheckpointError::Corrupt(
                    "directory entries out of canonical order",
                ));
            }
            prev = Some(addr);
            let sharers = r.u64()?;
            if sharers == 0 {
                return Err(CheckpointError::Corrupt("directory entry with no sharers"));
            }
            if cores < 64 && sharers >> cores != 0 {
                return Err(CheckpointError::Corrupt(
                    "directory sharer beyond the core count",
                ));
            }
            let owner = if r.bool()? {
                let o = r.u64()? as usize;
                if o >= cores || sharers != 1u64 << o {
                    return Err(CheckpointError::Corrupt(
                        "directory owner inconsistent with its sharer set",
                    ));
                }
                Some(o)
            } else {
                None
            };
            dir.insert(addr, DirEntry { sharers, owner });
        }
        Ok(Self {
            dir,
            lookups: r.u64()?,
            upgrades: r.u64()?,
            spills: r.u64()?,
            fills: r.u64()?,
            weave_transactions: r.u64()?,
            weave_batched: r.u64()?,
            weave_contended: r.u64()?,
        })
    }
}

impl CoherentHierarchy {
    /// Serializes the full mutable coherent-machine state (the
    /// `SEC_COHERENT` payload): per-core L1s with their MESI states, the
    /// shared levels, every directory shard, and the coherence counters.
    /// The configuration travels separately in `SEC_CONFIG`.
    pub(crate) fn save_state(&self, w: &mut ck::Wr) {
        w.u64(self.l1s.len() as u64);
        for l1 in &self.l1s {
            ck::put_cache(w, &l1.cache, put_coherent_line);
        }
        self.shared.save_state(w);
        w.u64(self.exts.len() as u64);
        for ext in &self.exts {
            ext.save_state(w);
        }
        w.u64(self.coherence.invalidations);
        w.u64(self.coherence.upgrades_s_to_m);
        w.u64(self.coherence.cache_to_cache_transfers);
        w.u64(self.coherence.califormed_transfers);
        w.u64(self.coherence.directory_lookups);
    }

    /// Rebuilds a coherent hierarchy from a `SEC_COHERENT` payload
    /// against `cfg`/`ccfg`/`cores` (already decoded from `SEC_CONFIG` /
    /// `SEC_META`).
    pub(crate) fn restore_state(
        cfg: HierarchyConfig,
        ccfg: CoherenceConfig,
        cores: usize,
        r: &mut ck::Rd<'_>,
    ) -> ck::Result<Self> {
        let mut h = CoherentHierarchy::new(cfg, ccfg, cores);
        if r.count()? != cores {
            return Err(CheckpointError::ConfigMismatch("per-core L1 count"));
        }
        for l1 in &mut h.l1s {
            ck::get_cache(r, &mut l1.cache, get_coherent_line)?;
        }
        h.shared.restore_state(r)?;
        if r.count()? != h.exts.len() {
            return Err(CheckpointError::ConfigMismatch("directory shard count"));
        }
        for ext in &mut h.exts {
            *ext = BankExt::restore_state(r, cores)?;
        }
        h.coherence.invalidations = r.u64()?;
        h.coherence.upgrades_s_to_m = r.u64()?;
        h.coherence.cache_to_cache_transfers = r.u64()?;
        h.coherence.califormed_transfers = r.u64()?;
        h.coherence.directory_lookups = r.u64()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coh(cores: usize) -> CoherentHierarchy {
        CoherentHierarchy::new(
            HierarchyConfig::westmere(),
            CoherenceConfig::westmere(),
            cores,
        )
    }

    #[test]
    fn first_reader_gets_exclusive_second_demotes_to_shared() {
        let mut h = coh(2);
        h.store(0, 0x1000, &[1, 2, 3, 4], 0);
        assert_eq!(h.l1_state(0, 0x1000), Some(Mesi::Modified));
        let r = h.load(1, 0x1000, 4, 1);
        assert_eq!(r.data, vec![1, 2, 3, 4], "dirty data travels core-to-core");
        assert_eq!(h.l1_state(0, 0x1000), Some(Mesi::Shared));
        assert_eq!(h.l1_state(1, 0x1000), Some(Mesi::Shared));
        assert_eq!(h.coherence_totals().cache_to_cache_transfers, 1);
    }

    #[test]
    fn cold_read_is_exclusive_and_silently_upgrades() {
        let mut h = coh(2);
        h.load(0, 0x2000, 8, 0);
        assert_eq!(h.l1_state(0, 0x2000), Some(Mesi::Exclusive));
        // The silent E→M store needs no directory transaction.
        let lookups = h.coherence_totals().directory_lookups;
        h.store(0, 0x2000, &[9], 1);
        assert_eq!(h.l1_state(0, 0x2000), Some(Mesi::Modified));
        assert_eq!(h.coherence_totals().directory_lookups, lookups);
    }

    #[test]
    fn store_to_shared_line_upgrades_and_invalidates() {
        let mut h = coh(4);
        for c in 0..4 {
            h.load(c, 0x3000, 8, 0);
        }
        assert_eq!(h.l1_state(3, 0x3000), Some(Mesi::Shared));
        h.store(1, 0x3000, &[7], 1);
        assert_eq!(h.l1_state(1, 0x3000), Some(Mesi::Modified));
        for c in [0usize, 2, 3] {
            assert_eq!(h.l1_state(c, 0x3000), None, "core {c} invalidated");
        }
        assert_eq!(h.coherence_totals().upgrades_s_to_m, 1);
        assert_eq!(h.coherence_totals().invalidations, 3);
    }

    #[test]
    fn write_request_recalls_and_invalidates_remote_owner() {
        let mut h = coh(2);
        h.store(0, 0x4000, &[1; 8], 0);
        h.store(1, 0x4000, &[2; 8], 1);
        assert_eq!(h.l1_state(0, 0x4000), None);
        assert_eq!(h.l1_state(1, 0x4000), Some(Mesi::Modified));
        assert_eq!(h.load(1, 0x4000, 8, 2).data, vec![2; 8]);
        assert_eq!(h.coherence_totals().invalidations, 1);
    }

    #[test]
    fn califormed_line_transfer_runs_conversions_and_preserves_mask() {
        let mut h = coh(2);
        h.store(0, 0x5000, &[5; 16], 0);
        let insn = CformInstruction::set(0x5000, 0b1111 << 20);
        assert!(h.cform(0, &insn, 1).exception.is_none());
        let (spills0, fills0) = (h.spills(), h.fills());
        // Core 1 reads a normal part of the line: recall runs spill+fill.
        let r = h.load(1, 0x5000, 8, 2);
        assert!(r.exception.is_none());
        assert_eq!(r.data, vec![5; 8]);
        assert_eq!(h.spills(), spills0 + 1, "recall spilled in the source L1");
        assert_eq!(
            h.fills(),
            fills0 + 1,
            "fill converted in the destination L1"
        );
        assert_eq!(h.coherence_totals().califormed_transfers, 1);
        assert_eq!(h.peek_mask(0x5000), 0b1111 << 20, "mask survived transfer");
    }

    #[test]
    fn cross_core_probe_traps_at_exact_byte() {
        let mut h = coh(2);
        h.cform(0, &CformInstruction::set(0x6000, 1 << 21), 0);
        assert_eq!(h.l1_state(0, 0x6000), Some(Mesi::Modified));
        let r = h.load(1, 0x6000 + 21, 1, 7);
        let exc = r.exception.expect("probe must trap");
        assert_eq!(exc.fault_addr, 0x6015);
        assert_eq!(exc.access, AccessKind::Load);
        assert_eq!(r.data, vec![0], "security byte reads zero on the far core");
    }

    #[test]
    fn invalidation_preserves_zeroing_invariant() {
        let mut h = coh(2);
        h.store(0, 0x7000, &[0xAB; 32], 0);
        h.cform(0, &CformInstruction::set(0x7000, 0xFF << 8), 1);
        // Remote write forces recall+invalidate of the dirty califormed
        // line; the surviving copy must still zero bytes 8..16.
        h.store(1, 0x7000, &[0xCD; 4], 2);
        for off in 8..16 {
            assert!(h.peek_is_security_byte(0x7000 + off));
            assert_eq!(h.peek_byte(0x7000 + off), 0);
        }
        assert_eq!(h.peek_byte(0x7000), 0xCD);
        assert_eq!(h.peek_byte(0x7000 + 16), 0xAB);
    }

    #[test]
    fn try_local_ops_complete_only_with_permission() {
        let mut h = coh(2);
        h.load(0, 0x8000, 8, 0); // E in core 0
        let l1 = &mut h.l1s_mut()[0];
        assert!(l1.try_load(0x8000, 8, 1).is_some());
        assert!(l1.try_store(0x8000, &[1], 2).is_some(), "E is writable");
        assert!(l1.try_load(0x9000, 8, 3).is_none(), "miss defers");
        // Demote to Shared via a second reader; local store must defer.
        h.load(1, 0x8000, 8, 4);
        let l1 = &mut h.l1s_mut()[0];
        assert!(l1.try_load(0x8000, 8, 5).is_some());
        assert!(l1.try_store(0x8000, &[2], 6).is_none(), "S is not writable");
    }

    #[test]
    fn nt_cform_invalidates_every_copy_and_hits_below() {
        let mut h = coh(3);
        h.store(0, 0xA000, &[3; 8], 0);
        h.load(1, 0xA000, 8, 1);
        h.load(2, 0xA000, 8, 2);
        let r = h.cform_nt(0, &CformInstruction::set(0xA000, 1 << 40), 3);
        assert!(r.exception.is_none());
        for c in 0..3 {
            assert_eq!(h.l1_state(c, 0xA000), None, "core {c} dropped its copy");
        }
        assert!(h.peek_is_security_byte(0xA000 + 40));
        assert_eq!(h.peek_byte(0xA000), 3, "data survived");
    }

    #[test]
    fn capacity_eviction_updates_directory() {
        let mut h = coh(2);
        let target = 0xB000u64;
        h.store(0, target, &[9; 8], 0);
        // Thrash core 0's set (64 sets × 64 B × 64 sets-stride = 4096).
        for i in 1..=16u64 {
            h.load(0, target + i * 4096, 8, 0);
        }
        assert_eq!(h.l1_state(0, target), None, "victim evicted");
        // A fresh read by core 1 must come from the shared levels (no
        // stale directory entry pointing at core 0).
        let r = h.load(1, target, 8, 1);
        assert_eq!(r.data, vec![9; 8]);
        assert_eq!(h.l1_state(1, target), Some(Mesi::Exclusive));
    }

    #[test]
    fn single_core_behaves_like_flat_hierarchy() {
        let mut h = coh(1);
        let r = h.load(0, 0x4000, 1, 0);
        assert_eq!(r.latency, 4 + 2 + 7 + 27 + 300, "directory adds 2 cycles");
        let r = h.load(0, 0x4000, 1, 0);
        assert_eq!(r.latency, 4);
    }
}
