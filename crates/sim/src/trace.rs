//! Memory-access traces: the interface between workload generators and the
//! simulation engine.
//!
//! A trace is any iterator of [`TraceOp`]s. Workloads in
//! `califorms-workloads` generate them lazily (streams of hundreds of
//! millions of ops never materialise in memory); tests build small `Vec`s.

/// One operation of a program trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (ALU/branch work between memory ops).
    Exec(u32),
    /// A data load of `size` bytes.
    Load {
        /// Byte address.
        addr: u64,
        /// Access size in bytes (1–64; line-crossing allowed).
        size: u8,
    },
    /// A data store of `size` bytes. The simulator synthesises the value
    /// (traces don't carry payloads; the engine writes a deterministic
    /// pattern so califormed data paths stay exercised).
    Store {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// A `CFORM` instruction over one line.
    Cform {
        /// Cache-line-aligned target.
        line_addr: u64,
        /// Attribute bits (1 = set security byte).
        attrs: u64,
        /// Mask bits (1 = allow change).
        mask: u64,
    },
    /// The non-temporal `CFORM` variant (paper footnote 3): updates the
    /// line below the L1 without allocating it there — used on
    /// deallocation so dead lines don't pollute the L1.
    CformNt {
        /// Cache-line-aligned target.
        line_addr: u64,
        /// Attribute bits (1 = set security byte).
        attrs: u64,
        /// Mask bits (1 = allow change).
        mask: u64,
    },
    /// Arms the whole-address-space exception mask (entering a whitelisted
    /// routine such as `memcpy`).
    MaskPush,
    /// Disarms the innermost mask window (leaving the routine).
    MaskPop,
}

impl TraceOp {
    /// Number of retired instructions this op represents.
    pub fn instruction_count(&self) -> u64 {
        match self {
            TraceOp::Exec(n) => u64::from(*n),
            // Mask pushes/pops are privileged stores to the mask register.
            _ => 1,
        }
    }

    /// Whether this op touches the data memory hierarchy.
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            TraceOp::Load { .. }
                | TraceOp::Store { .. }
                | TraceOp::Cform { .. }
                | TraceOp::CformNt { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        assert_eq!(TraceOp::Exec(17).instruction_count(), 17);
        assert_eq!(TraceOp::Load { addr: 0, size: 8 }.instruction_count(), 1);
        assert_eq!(TraceOp::MaskPush.instruction_count(), 1);
    }

    #[test]
    fn memory_op_classification() {
        assert!(TraceOp::Load { addr: 0, size: 1 }.is_memory_op());
        assert!(TraceOp::Store { addr: 0, size: 1 }.is_memory_op());
        assert!(TraceOp::Cform {
            line_addr: 0,
            attrs: 0,
            mask: 0
        }
        .is_memory_op());
        assert!(TraceOp::CformNt {
            line_addr: 0,
            attrs: 0,
            mask: 0
        }
        .is_memory_op());
        assert!(!TraceOp::Exec(1).is_memory_op());
        assert!(!TraceOp::MaskPush.is_memory_op());
    }
}
