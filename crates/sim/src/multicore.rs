//! The multi-core engine: parallel sharded trace replay over the
//! MESI-coherent hierarchy.
//!
//! Each core replays its own trace shard. Simulated time advances in
//! fixed **cycle quanta** with a barrier between them, and every quantum
//! runs in two phases (the bound/weave idea of ZSim, adapted — see
//! DESIGN.md §7):
//!
//! 1. **Parallel phase** — one `std::thread` worker per core replays ops
//!    that its private L1 can complete without a directory transaction
//!    (hits with sufficient MESI permission, plain `Exec`, mask ops).
//!    Workers touch disjoint state — their own [`CoreReplay`] and their
//!    own [`CoreL1`] slice — so this phase is data-race-free by
//!    construction and its outcome is independent of thread scheduling.
//!    A core stops at its first op needing coherence, or at quantum end.
//! 2. **Serial phase** — cores are resumed on the calling thread in a
//!    deterministic round-robin (0, 1, …, 0, 1, …), each turn executing
//!    at most one transaction through the full [`CoherentHierarchy`]
//!    (miss, recall, upgrade, invalidation) plus any local-completable
//!    ops around it, until every core reaches the quantum boundary. The
//!    transaction-granular interleave keeps line ping-pong (false
//!    sharing, lock bouncing) visible inside a quantum.
//!
//! Because phase 1 only ever uses permissions granted by earlier serial
//! phases and phase 2 is totally ordered, a run's result — every counter,
//! every cycle count, every delivered exception — is **bit-identical**
//! across runs and across host thread schedules for the same shards
//! (tested in `crates/sim/tests/multicore.rs`). The trade-off is
//! quantum-granular interleaving: a store by core A becomes visible to
//! core B's parallel phase only at the next barrier, exactly the
//! approximation bound-weave simulators make.

use crate::coherence::{CoherenceConfig, CoherentHierarchy, CoreL1};
use crate::cpu::CoreConfig;
use crate::engine::with_store_data;
use crate::hierarchy::{HierarchyConfig, MemResult};
use crate::stats::{MulticoreStats, SimStats};
use crate::trace::TraceOp;
use crate::tracepack::TracePack;
use califorms_core::{CaliformsException, CformInstruction, ExceptionMask};

/// Configuration of a [`MulticoreEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulticoreConfig {
    /// Number of cores (= trace shards).
    pub cores: usize,
    /// Quantum length in cycles. Coherence actions of one core become
    /// visible to the others' local fast paths at quantum boundaries;
    /// shorter quanta interleave finer but synchronise (and spawn) more.
    pub quantum: f64,
    /// Geometry/latency of the shared hierarchy (per-core L1s use the
    /// L1D parameters; L2/L3/DRAM are shared). The `stream_prefetcher`
    /// and `prefetch_residual` fields are **ignored** — the multi-core
    /// L1s have no prefetcher (DESIGN.md §7), so single-core
    /// `MulticoreEngine` runs of streaming traces report higher memory
    /// latency than [`crate::engine::Engine`] on the same trace.
    pub hierarchy: HierarchyConfig,
    /// Coherence-fabric latencies.
    pub coherence: CoherenceConfig,
    /// Core timing model, applied to every core.
    pub core: CoreConfig,
}

impl MulticoreConfig {
    /// The paper's Table 3 machine replicated `cores` times around a
    /// shared L2/L3, with a 10k-cycle quantum.
    pub fn westmere(cores: usize) -> Self {
        Self {
            cores,
            quantum: 10_000.0,
            hierarchy: HierarchyConfig::westmere(),
            coherence: CoherenceConfig::westmere(),
            core: CoreConfig::westmere(),
        }
    }

    /// Same machine with a workload-specific memory-level parallelism.
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        self.core = self.core.with_overlap(overlap);
        self
    }
}

/// Outcome of a multi-core run.
#[derive(Debug, Clone)]
pub struct MulticoreOutcome {
    /// Per-core and combined statistics.
    pub stats: MulticoreStats,
    /// Delivered exceptions per core, in program order, capped at
    /// [`crate::engine::Engine::MAX_RECORDED_EXCEPTIONS`] per core.
    pub exceptions: Vec<Vec<CaliformsException>>,
}

/// Per-core replay state: the shard cursor, the core's clock and its
/// architectural counters. Owned by exactly one worker thread during the
/// parallel phase.
#[derive(Debug)]
struct CoreReplay {
    shard: Vec<TraceOp>,
    pos: usize,
    core: CoreConfig,
    l1d_latency: u32,
    mask: ExceptionMask,
    cycles: f64,
    instructions: u64,
    loads: u64,
    stores: u64,
    cforms: u64,
    stores_suppressed: u64,
    exceptions: Vec<CaliformsException>,
    pc: u64,
}

impl CoreReplay {
    fn new(shard: Vec<TraceOp>, core: CoreConfig, l1d_latency: u32) -> Self {
        Self {
            shard,
            pos: 0,
            core,
            l1d_latency,
            mask: ExceptionMask::new(),
            cycles: 0.0,
            instructions: 0,
            loads: 0,
            stores: 0,
            cforms: 0,
            stores_suppressed: 0,
            exceptions: Vec::new(),
            pc: 0,
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.shard.len()
    }

    fn account_memory(&mut self, latency: u32) {
        self.cycles += self.core.exec_cycles(1) + self.core.memory_stall(latency, self.l1d_latency);
    }

    fn deliver(&mut self, exception: Option<CaliformsException>) {
        if let Some(exc) = exception {
            if let Some(delivered) = self.mask.filter(exc) {
                if self.exceptions.len() < crate::engine::Engine::MAX_RECORDED_EXCEPTIONS {
                    self.exceptions.push(delivered);
                }
            }
        }
    }

    fn commit(&mut self, op: &TraceOp, r: MemResult) {
        match op {
            TraceOp::Load { .. } => self.loads += 1,
            TraceOp::Store { .. } => {
                self.stores += 1;
                if r.exception.is_some() {
                    self.stores_suppressed += 1;
                }
            }
            TraceOp::Cform { .. } | TraceOp::CformNt { .. } => self.cforms += 1,
            _ => {}
        }
        self.pc += 1;
        self.instructions += op.instruction_count();
        self.account_memory(r.latency);
        self.deliver(r.exception);
        self.pos += 1;
    }

    fn commit_exec(&mut self, op: &TraceOp, cycles: f64) {
        self.pc += 1;
        self.instructions += op.instruction_count();
        self.cycles += cycles;
        self.pos += 1;
    }

    /// Parallel ("bound") phase: replay ops the private L1 can complete
    /// until the first one needing coherence, or until `quantum_end`.
    fn run_quantum_local(&mut self, l1: &mut CoreL1, quantum_end: f64) {
        while self.cycles < quantum_end && !self.done() {
            let op = self.shard[self.pos];
            // `pc + 1` mirrors the serial path, which increments before use.
            let pc = self.pc + 1;
            match op {
                TraceOp::Exec(n) => {
                    let c = self.core.exec_cycles(u64::from(n));
                    self.commit_exec(&op, c);
                }
                TraceOp::MaskPush => {
                    let c = self.core.exec_cycles(1);
                    self.commit_exec(&op, c);
                    self.mask.push_allow_all();
                }
                TraceOp::MaskPop => {
                    let c = self.core.exec_cycles(1);
                    self.commit_exec(&op, c);
                    self.mask.pop_window();
                }
                TraceOp::Load { addr, size } => match l1.try_load(addr, size as usize, pc) {
                    Some(r) => self.commit(&op, r),
                    None => return,
                },
                TraceOp::Store { addr, size } => {
                    let r =
                        with_store_data(addr, size as usize, |data| l1.try_store(addr, data, pc));
                    match r {
                        Some(r) => self.commit(&op, r),
                        None => return,
                    }
                }
                TraceOp::Cform {
                    line_addr,
                    attrs,
                    mask,
                } => {
                    let insn = CformInstruction::new(line_addr, attrs, mask);
                    match l1.try_cform(&insn, pc) {
                        Some(r) => self.commit(&op, r),
                        None => return,
                    }
                }
                // Non-temporal CFORMs operate below the L1: always serial.
                TraceOp::CformNt { .. } => return,
            }
        }
    }
}

/// Deterministically shards one op stream across `cores` shards:
/// round-robin at op granularity (op `i` goes to core `i % cores`), so
/// the same stream always produces the same shards regardless of how it
/// was stored. This is the sharding [`MulticoreEngine::run_pack`] applies
/// to a single [`TracePack`]; callers replaying a `Vec<TraceOp>` can use
/// it directly to get bit-identical multi-core results for packed and
/// unpacked forms of the same trace.
///
/// Note that `MaskPush`/`MaskPop` windows land on whichever core receives
/// them — shard-aware workloads that need a window on a specific core
/// should build per-core shards explicitly instead.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn shard_ops<I: IntoIterator<Item = TraceOp>>(ops: I, cores: usize) -> Vec<Vec<TraceOp>> {
    assert!(cores >= 1, "need at least one core");
    let mut shards: Vec<Vec<TraceOp>> = vec![Vec::new(); cores];
    for (i, op) in ops.into_iter().enumerate() {
        shards[i % cores].push(op);
    }
    shards
}

/// Replays per-core trace shards over a [`CoherentHierarchy`] with a
/// cycle-quantum barrier.
#[derive(Debug)]
pub struct MulticoreEngine {
    /// The coherent hierarchy (public: attack simulations inspect it).
    pub hierarchy: CoherentHierarchy,
    cfg: MulticoreConfig,
    cores: Vec<CoreReplay>,
}

impl MulticoreEngine {
    /// Builds an engine; shards are supplied to [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0` or `cfg.quantum` is not a positive,
    /// finite cycle count.
    pub fn new(cfg: MulticoreConfig) -> Self {
        assert!(cfg.cores >= 1, "need at least one core");
        assert!(
            cfg.quantum.is_finite() && cfg.quantum > 0.0,
            "quantum must be a positive cycle count"
        );
        Self {
            hierarchy: CoherentHierarchy::new(cfg.hierarchy, cfg.coherence, cfg.cores),
            cfg,
            cores: Vec::new(),
        }
    }

    /// Serial ("weave") phase slice for core `c`: replay local-completable
    /// ops through the same fast path the parallel phase uses, then
    /// execute **at most one** coherence transaction through the full
    /// MESI machinery and yield the turn. Returns whether any op ran.
    ///
    /// Yielding after each transaction makes the serial phase a
    /// round-robin at coherence-transaction granularity, so
    /// intra-quantum line ping-pong (false sharing, lock bouncing) is
    /// simulated instead of being collapsed to one transfer per quantum.
    fn run_serial_slice(&mut self, c: usize, quantum_end: f64) -> bool {
        let (cores, hier) = (&mut self.cores, &mut self.hierarchy);
        let core = &mut cores[c];
        if core.cycles >= quantum_end || core.done() {
            return false;
        }
        let before = core.pos;
        core.run_quantum_local(&mut hier.l1s_mut()[c], quantum_end);
        let progressed = core.pos != before;
        if core.cycles >= quantum_end || core.done() {
            return progressed;
        }
        // The op at the cursor needs the coherence machinery.
        let op = core.shard[core.pos];
        let pc = core.pc + 1;
        let r = match op {
            TraceOp::Load { addr, size } => hier.load(c, addr, size as usize, pc),
            TraceOp::Store { addr, size } => {
                with_store_data(addr, size as usize, |data| hier.store(c, addr, data, pc))
            }
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            } => {
                let insn = CformInstruction::new(line_addr, attrs, mask);
                hier.cform(c, &insn, pc)
            }
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => {
                let insn = CformInstruction::new(line_addr, attrs, mask);
                hier.cform_nt(c, &insn, pc)
            }
            TraceOp::Exec(..) | TraceOp::MaskPush | TraceOp::MaskPop => {
                unreachable!("local ops are consumed by the fast path")
            }
        };
        core.commit(&op, r);
        true
    }

    /// Runs one trace shard per core to completion.
    ///
    /// # Panics
    ///
    /// Panics unless `shards.len()` equals the configured core count.
    pub fn run(mut self, shards: Vec<Vec<TraceOp>>) -> MulticoreOutcome {
        assert_eq!(
            shards.len(),
            self.cfg.cores,
            "one shard per configured core"
        );
        let l1d_latency = self.cfg.hierarchy.l1d_latency;
        self.cores = shards
            .into_iter()
            .map(|s| CoreReplay::new(s, self.cfg.core, l1d_latency))
            .collect();

        let quantum = self.cfg.quantum;
        let mut quantum_end = quantum;
        while self.cores.iter().any(|c| !c.done()) {
            // Parallel phase: one worker per core, disjoint &mut slices.
            std::thread::scope(|scope| {
                for (core, l1) in self.cores.iter_mut().zip(self.hierarchy.l1s_mut()) {
                    scope.spawn(move || core.run_quantum_local(l1, quantum_end));
                }
            });
            // Serial phase: deterministic round-robin, one coherence
            // transaction per core per turn.
            loop {
                let mut progressed = false;
                for c in 0..self.cfg.cores {
                    progressed |= self.run_serial_slice(c, quantum_end);
                }
                if !progressed {
                    break;
                }
            }
            quantum_end += quantum;
            // Fast-forward over empty quanta: if every unfinished core is
            // already past the boundary (e.g. one committed a huge `Exec`),
            // jump to the first quantum in which some core can run instead
            // of spawning idle workers 10k cycles at a time. Pure f64 math
            // on deterministic inputs, so determinism is unaffected.
            let min_cycles = self
                .cores
                .iter()
                .filter(|c| !c.done())
                .map(|c| c.cycles)
                .fold(f64::INFINITY, f64::min);
            if min_cycles.is_finite() && min_cycles >= quantum_end {
                let skipped = ((min_cycles - quantum_end) / quantum).floor() + 1.0;
                quantum_end += skipped * quantum;
            }
        }
        self.finish()
    }

    /// Replays a single packed trace, sharding it across the configured
    /// cores with the deterministic round-robin of [`shard_ops`].
    /// Bit-identical in stats and exceptions to
    /// `self.run(shard_ops(pack.iter(), cores))`.
    ///
    /// The shards are materialised (`run` replays them with per-core
    /// cursors across quanta), so peak memory matches unpacked
    /// multi-core replay — the pack's compactness pays off in storage
    /// and transport, and in the constant-memory single-core
    /// [`crate::engine::Engine::run_reader`] path.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt pack (packs built by [`TracePack::from_ops`]
    /// or validated by [`TracePack::from_bytes`] are always well-formed).
    pub fn run_pack(self, pack: &TracePack) -> MulticoreOutcome {
        let cores = self.cfg.cores;
        self.run(shard_ops(pack.iter(), cores))
    }

    fn finish(self) -> MulticoreOutcome {
        let mut per_core = Vec::with_capacity(self.cores.len());
        let mut exceptions = Vec::with_capacity(self.cores.len());
        let mut combined = SimStats::default();
        for (c, core) in self.cores.iter().enumerate() {
            let stats = SimStats {
                cycles: core.cycles,
                instructions: core.instructions,
                loads: core.loads,
                stores: core.stores,
                cforms: core.cforms,
                stores_suppressed: core.stores_suppressed,
                exceptions_delivered: core.mask.delivered_count(),
                exceptions_suppressed: core.mask.suppressed_count(),
                l1d: self.hierarchy.l1s()[c].stats(),
                ..SimStats::default()
            };
            combined.cycles = combined.cycles.max(stats.cycles);
            combined.instructions += stats.instructions;
            combined.loads += stats.loads;
            combined.stores += stats.stores;
            combined.cforms += stats.cforms;
            combined.stores_suppressed += stats.stores_suppressed;
            combined.exceptions_delivered += stats.exceptions_delivered;
            combined.exceptions_suppressed += stats.exceptions_suppressed;
            per_core.push(stats);
            exceptions.push(core.exceptions.clone());
        }
        self.hierarchy.export_stats(&mut combined);
        MulticoreOutcome {
            stats: MulticoreStats { per_core, combined },
            exceptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cores: usize) -> MulticoreEngine {
        MulticoreEngine::new(MulticoreConfig::westmere(cores))
    }

    #[test]
    fn single_core_runs_a_plain_trace() {
        let out = engine(1).run(vec![vec![
            TraceOp::Exec(400),
            TraceOp::Store {
                addr: 0x100,
                size: 8,
            },
            TraceOp::Load {
                addr: 0x100,
                size: 8,
            },
        ]]);
        let s = &out.stats.per_core[0];
        assert_eq!(s.instructions, 402);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(out.stats.combined.instructions, 402);
    }

    #[test]
    fn per_core_counters_split_by_shard() {
        let out = engine(2).run(vec![
            vec![
                TraceOp::Load {
                    addr: 0x1000,
                    size: 8
                };
                10
            ],
            vec![
                TraceOp::Store {
                    addr: 0x8000,
                    size: 8
                };
                4
            ],
        ]);
        assert_eq!(out.stats.per_core[0].loads, 10);
        assert_eq!(out.stats.per_core[0].stores, 0);
        assert_eq!(out.stats.per_core[1].stores, 4);
        assert_eq!(out.stats.combined.loads, 10);
        assert_eq!(out.stats.combined.stores, 4);
    }

    #[test]
    fn makespan_is_the_slowest_core() {
        let out = engine(2).run(vec![
            vec![TraceOp::Exec(4_000)],
            vec![TraceOp::Exec(400_000)],
        ]);
        assert!(out.stats.per_core[1].cycles > out.stats.per_core[0].cycles);
        assert_eq!(out.stats.combined.cycles, out.stats.per_core[1].cycles);
        assert!(out.stats.aggregate_ipc() > 0.0);
    }

    #[test]
    fn cross_core_sharing_is_counted() {
        // Both cores hammer the same line with stores: the line must
        // ping-pong with recalls + invalidations.
        let shard = |n: u64| -> Vec<TraceOp> {
            (0..n)
                .flat_map(|_| {
                    [TraceOp::Store {
                        addr: 0x4000,
                        size: 8,
                    }]
                })
                .collect()
        };
        let out = engine(2).run(vec![shard(50), shard(50)]);
        assert!(
            out.stats.combined.coherence.invalidations > 0,
            "write sharing must invalidate"
        );
        assert!(out.stats.combined.coherence.cache_to_cache_transfers > 0);
    }

    #[test]
    fn mask_windows_are_per_core() {
        // Core 0 arms a mask and sweeps a security byte (suppressed);
        // core 1 does the same sweep unmasked (delivered).
        let cform = TraceOp::Cform {
            line_addr: 0x2000,
            attrs: 1 << 5,
            mask: 1 << 5,
        };
        let probe = TraceOp::Load {
            addr: 0x2005,
            size: 1,
        };
        let out = engine(2).run(vec![
            vec![cform, TraceOp::MaskPush, probe, TraceOp::MaskPop],
            vec![TraceOp::Exec(100_000), probe],
        ]);
        assert_eq!(out.stats.per_core[0].exceptions_suppressed, 1);
        assert_eq!(out.stats.per_core[0].exceptions_delivered, 0);
        assert_eq!(out.stats.per_core[1].exceptions_delivered, 1);
        assert_eq!(out.exceptions[1][0].fault_addr, 0x2005);
    }

    #[test]
    #[should_panic(expected = "one shard per configured core")]
    fn shard_count_mismatch_panics() {
        engine(2).run(vec![vec![]]);
    }
}
